//! Parallel-execution invariants: the answer of every similarity query is
//! independent of the partition count and of the physical join strategy
//! (nested-loop vs index-nested-loop vs three-stage vs surrogate), and
//! shared-subplan reuse does not change results. These are the properties
//! that make the paper's Fig 24/25/27 comparisons meaningful.

use asterix_adm::{IndexKind, Value};
use asterix_algebricks::OptimizerConfig;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;

fn build(n: usize, partitions: usize, with_indexes: bool) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(partitions));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 99)).unwrap();
    if with_indexes {
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
    }
    db
}

fn options(f: impl FnOnce(&mut OptimizerConfig)) -> QueryOptions {
    let mut cfg = OptimizerConfig::default();
    f(&mut cfg);
    QueryOptions {
        optimizer: Some(cfg),
        ..QueryOptions::default()
    }
}

const JACCARD_JOIN: &str = r#"
    for $t1 in dataset ARevs
    for $t2 in dataset ARevs
    where similarity-jaccard(word-tokens($t1.summary),
                             word-tokens($t2.summary)) >= 0.8
      and $t1.id < $t2.id
    return [ $t1.id, $t2.id ]
"#;

fn pairs(rows: &[Value]) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = rows
        .iter()
        .map(|v| {
            let l = v.as_list().unwrap();
            (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
        })
        .collect();
    out.sort();
    out
}

/// The brute-force reference answer, computed without the engine.
fn reference_pairs(n: usize, delta: f64) -> Vec<(i64, i64)> {
    let rows = amazon_reviews(n, 99);
    let toks: Vec<(i64, Vec<String>)> = rows
        .iter()
        .map(|r| {
            (
                r.field("id").as_i64().unwrap(),
                asterix_simfn::word_tokens(r.field("summary").as_str().unwrap()),
            )
        })
        .collect();
    let mut out = Vec::new();
    for (i, (ida, ta)) in toks.iter().enumerate() {
        for (idb, tb) in toks.iter().skip(i + 1) {
            // Pairs with no tokens at all are excluded: a prefix join
            // requires at least one shared token, and both the paper's
            // three-stage plan and ours inherit that semantics.
            if ta.is_empty() && tb.is_empty() {
                continue;
            }
            if asterix_simfn::jaccard(ta, tb) >= delta {
                let (x, y) = if ida < idb { (*ida, *idb) } else { (*idb, *ida) };
                out.push((x.min(y), x.max(y)));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn three_stage_join_matches_reference() {
    let n = 400;
    let db = build(n, 4, false);
    let r = db.query(JACCARD_JOIN).unwrap();
    assert!(r.plan.used_rule("three-stage-similarity-join"));
    assert_eq!(pairs(&r.rows), reference_pairs(n, 0.8));
}

#[test]
fn index_join_matches_reference() {
    let n = 400;
    let db = build(n, 4, true);
    let r = db.query(JACCARD_JOIN).unwrap();
    assert!(r.plan.used_rule("introduce-index-nested-loop-join"));
    assert_eq!(pairs(&r.rows), reference_pairs(n, 0.8));
}

#[test]
fn surrogate_join_matches_reference() {
    let n = 400;
    let db = build(n, 4, true);
    let r = db
        .query_with(JACCARD_JOIN, &options(|c| c.enable_surrogate = true))
        .unwrap();
    assert!(r.plan.used_rule("introduce-index-nested-loop-join"));
    assert_eq!(pairs(&r.rows), reference_pairs(n, 0.8));
}

#[test]
fn nested_loop_join_matches_reference() {
    let n = 200; // quadratic: keep small
    let db = build(n, 4, false);
    let r = db
        .query_with(
            JACCARD_JOIN,
            &options(|c| {
                c.enable_index_join = false;
                c.enable_three_stage = false;
            }),
        )
        .unwrap();
    assert!(r.plan.rewrites.iter().all(|(n, _)| *n != "three-stage-similarity-join"));
    assert_eq!(pairs(&r.rows), reference_pairs(n, 0.8));
}

#[test]
fn answers_stable_across_partition_counts() {
    let n = 300;
    let reference = reference_pairs(n, 0.8);
    for partitions in [1, 2, 4, 8] {
        let db = build(n, partitions, false);
        let r = db.query(JACCARD_JOIN).unwrap();
        assert_eq!(pairs(&r.rows), reference, "partitions={partitions}");
    }
}

#[test]
fn subplan_reuse_does_not_change_answers() {
    let n = 300;
    let db = build(n, 2, false);
    let with = db
        .query_with(JACCARD_JOIN, &options(|c| c.enable_subplan_reuse = true))
        .unwrap();
    let without = db
        .query_with(JACCARD_JOIN, &options(|c| c.enable_subplan_reuse = false))
        .unwrap();
    assert_eq!(pairs(&with.rows), pairs(&without.rows));
    // Reuse shrinks the physical job: fewer dataset scans.
    let scans = |r: &asterix_core::QueryResult| {
        r.plan
            .physical_ops
            .iter()
            .find(|(n, _)| *n == "dataset-scan")
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert!(scans(&with) < scans(&without), "{} vs {}", scans(&with), scans(&without));
}

#[test]
fn pk_sorting_toggle_does_not_change_answers() {
    let db = build(300, 4, true);
    let q = r#"
        for $t in dataset ARevs
        where similarity-jaccard(word-tokens($t.summary),
                                 word-tokens('great product value')) >= 0.5
        return $t.id
    "#;
    let sorted = db.query_with(q, &options(|c| c.sort_pks = true)).unwrap();
    let unsorted = db.query_with(q, &options(|c| c.sort_pks = false)).unwrap();
    assert_eq!(sorted.ids(), unsorted.ids());
}

#[test]
fn edit_distance_join_strategies_agree() {
    let n = 250;
    let db = build(n, 4, true);
    let q = r#"
        for $t1 in dataset ARevs
        for $t2 in dataset ARevs
        where edit-distance($t1.reviewerName, $t2.reviewerName) <= 1
          and $t1.id < $t2.id
        return [ $t1.id, $t2.id ]
    "#;
    let indexed = db.query(q).unwrap();
    assert!(indexed.plan.used_rule("introduce-index-nested-loop-join"));
    let nl = db
        .query_with(q, &options(|c| c.enable_index_join = false))
        .unwrap();
    assert_eq!(pairs(&indexed.rows), pairs(&nl.rows));
    assert!(!pairs(&indexed.rows).is_empty(), "datagen must produce near names");
}
