//! The index-search hot path: postings cache, batched sorted primary
//! lookups, and token memoization must never change query results — only
//! how much work the storage layer does — and their counters must show up
//! in the per-query profile.

use asterix_adm::{record, IndexKind};
use asterix_algebricks::OptimizerConfig;
use asterix_core::{Instance, InstanceConfig, QueryOptions, QueryProfile};
use asterix_datagen::amazon_reviews;

fn profiled() -> QueryOptions {
    QueryOptions {
        profile: true,
        ..QueryOptions::default()
    }
}

/// The full baseline: postings cache still on (it is a storage-layer
/// setting), but per-tuple operators and no compile-time tokenization.
fn profiled_baseline() -> QueryOptions {
    let cfg = OptimizerConfig {
        pre_tokenize: false,
        ..OptimizerConfig::default()
    };
    QueryOptions {
        optimizer: Some(cfg),
        profile: true,
        disable_hotpath: true,
        ..QueryOptions::default()
    }
}

fn scan_only() -> QueryOptions {
    let cfg = OptimizerConfig {
        enable_index_select: false,
        enable_index_join: false,
        ..OptimizerConfig::default()
    };
    QueryOptions {
        optimizer: Some(cfg),
        ..QueryOptions::default()
    }
}

/// Reviews with both similarity indexes, flushed so queries read disk
/// components (the interesting case for the postings cache).
fn setup(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 42)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
        .unwrap();
    db.flush("ARevs").unwrap();
    db
}

fn jaccard_query() -> String {
    "for $t in dataset ARevs \
     where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.4 \
     return $t.id"
        .to_string()
}

fn ed_query() -> String {
    "for $t in dataset ARevs \
     where edit-distance($t.reviewerName, 'gubimo') <= 1 \
     return $t.id"
        .to_string()
}

fn join_query() -> String {
    "for $o in dataset ARevs \
     for $i in dataset ARevs \
     where $o.id < 30 \
       and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
       and $o.id < $i.id \
     return {\"o\": $o.id, \"i\": $i.id}"
        .to_string()
}

/// Index plans with the cache and hot path on must agree with plain scan
/// plans — cold cache and warm cache alike.
#[test]
fn index_with_cache_matches_scan() {
    let db = setup(300);
    for q in [jaccard_query(), ed_query(), join_query()] {
        let scanned = db.query_with(&q, &scan_only()).unwrap();
        // Twice: the first run fills the postings cache, the second is
        // served from it.
        for round in 0..2 {
            let indexed = db.query_with(&q, &profiled()).unwrap();
            assert!(
                indexed
                    .profile
                    .as_ref()
                    .unwrap()
                    .rule_trace
                    .iter()
                    .any(|(rule, _)| rule.starts_with("introduce-index")),
                "query must actually take an index plan: {q}"
            );
            let mut a = scanned.rows.clone();
            let mut b = indexed.rows;
            a.sort();
            b.sort();
            assert_eq!(a, b, "round {round}: index plan diverged from scan on {q}");
        }
    }
}

/// The hot path (batched lookups + token memoization + pre-tokenization)
/// must return exactly what the per-tuple baseline returns.
#[test]
fn hotpath_matches_per_tuple_baseline() {
    let db = setup(300);
    for q in [jaccard_query(), ed_query(), join_query()] {
        let base = db.query_with(&q, &profiled_baseline()).unwrap();
        let fast = db.query_with(&q, &profiled()).unwrap();
        let mut a = base.rows;
        let mut b = fast.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "hot path changed results of {q}");
        // Both took index plans, so both did primary lookups; the batched
        // path dedups repeated keys inside a frame, so it may issue
        // fewer lookups than the per-tuple path — never more.
        let bp = base.profile.unwrap();
        let fp = fast.profile.unwrap();
        assert!(fp.index_search.primary_lookups > 0);
        assert!(fp.index_search.primary_lookups <= bp.index_search.primary_lookups);
        assert_eq!(
            bp.index_search.toccurrence_candidates,
            fp.index_search.toccurrence_candidates
        );
    }
}

/// A warmed postings cache serves repeat queries without re-reading any
/// inverted-list elements.
#[test]
fn warm_postings_cache_serves_repeat_queries() {
    let db = setup(300);
    let q = jaccard_query();
    let cold = db.query_with(&q, &profiled()).unwrap().profile.unwrap();
    assert!(cold.index_search.postings_cache_misses > 0);
    assert!(cold.index_search.inverted_elements_read > 0);
    let warm = db.query_with(&q, &profiled()).unwrap().profile.unwrap();
    assert!(warm.index_search.postings_cache_hits > 0);
    assert_eq!(warm.index_search.postings_cache_misses, 0);
    assert_eq!(
        warm.index_search.inverted_elements_read, 0,
        "a fully-cached probe must not re-read list elements"
    );
    // Same candidates either way.
    assert_eq!(
        warm.index_search.toccurrence_candidates,
        cold.index_search.toccurrence_candidates
    );
}

/// Mutations invalidate the cache through the whole stack: a query, an
/// insert of a new matching record, and the same query again must see the
/// new record (and a delete must hide it again).
#[test]
fn postings_cache_invalidated_by_dml() {
    let db = setup(200);
    let q = "for $t in dataset ARevs \
             where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.99 \
             return $t.id";
    let before = db.query_with(q, &profiled()).unwrap().ids();
    db.insert(
        "ARevs",
        record! {"id" => 999_999i64, "summary" => "caho gonaha", "reviewerName" => "zz"},
    )
    .unwrap();
    let after = db.query_with(q, &profiled()).unwrap().ids();
    assert!(
        after.contains(&999_999) && after.len() == before.len() + 1,
        "inserted record missing from warm-cache query: {after:?}"
    );
    db.delete("ARevs", &asterix_adm::Value::Int64(999_999))
        .unwrap();
    assert_eq!(db.query_with(q, &profiled()).unwrap().ids(), before);
}

/// Concurrent queries share one partition's postings cache safely: after
/// a warm-up, both see pure hits, both get correct (identical) answers,
/// and each profile reports its own counters.
#[test]
fn concurrent_queries_share_postings_cache() {
    let db = setup(300);
    let q = jaccard_query();
    let warm = db.query_with(&q, &profiled()).unwrap();
    let mut expected = warm.rows;
    expected.sort();

    let run = |q: &str| -> (Vec<asterix_adm::Value>, QueryProfile) {
        let r = db.query_with(q, &profiled()).unwrap();
        let mut rows = r.rows;
        rows.sort();
        (rows, r.profile.unwrap())
    };
    let ((rows1, p1), (rows2, p2)) = std::thread::scope(|s| {
        let h1 = s.spawn(|| run(&q));
        let h2 = s.spawn(|| run(&q));
        (h1.join().unwrap(), h2.join().unwrap())
    });
    assert_eq!(rows1, expected);
    assert_eq!(rows2, expected);
    for p in [&p1, &p2] {
        assert!(p.index_search.postings_cache_hits > 0);
        assert_eq!(p.index_search.postings_cache_misses, 0);
        assert_eq!(p.index_search.inverted_elements_read, 0);
    }
    assert_eq!(p1.index_search, p2.index_search);
}

/// The new counters are part of the profile JSON and the EXPLAIN
/// PROFILE text rendering.
#[test]
fn postings_cache_counters_in_profile_output() {
    let db = setup(150);
    let r = db.query_with(&jaccard_query(), &profiled()).unwrap();
    let p = r.profile.as_ref().unwrap();

    let json = p.to_json_string();
    let parsed = asterix_adm::json::parse(&json).expect("profile JSON must parse");
    let ix = parsed.field("index_search");
    assert!(
        !ix.field("postings_cache_hits").is_unknown(),
        "missing postings_cache_hits in {json}"
    );
    assert!(
        !ix.field("postings_cache_misses").is_unknown(),
        "missing postings_cache_misses in {json}"
    );

    let text = p.render_text();
    assert!(text.contains("postings cache:"), "{text}");
}
