//! Multi-way similarity joins (§5.2 Fig 18, §6.4.3 Fig 26): queries with
//! more than one similarity condition, and chains of similarity joins
//! over several datasets — the capability the paper claims first for a
//! parallel data management system.

use asterix_adm::{IndexKind, Value};
use asterix_core::{Instance, InstanceConfig};
use asterix_datagen::amazon_reviews;

fn setup(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 55)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
        .unwrap();
    // A small "seed" dataset for Fig 26's outer equality restriction.
    db.create_dataset("Seeds", "sid").unwrap();
    let seeds: Vec<Value> = amazon_reviews(n, 55)
        .into_iter()
        .take(20)
        .enumerate()
        .map(|(i, r)| {
            Value::record(vec![
                ("sid".into(), Value::Int64(i as i64)),
                ("score".into(), r.field("score").clone()),
            ])
        })
        .collect();
    db.load("Seeds", seeds).unwrap();
    db
}

fn pairs(rows: &[Value]) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = rows
        .iter()
        .map(|v| {
            let l = v.as_list().unwrap();
            (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Fig 26: equi join to limit the outer branch + two similarity
/// conditions (one Jaccard, one edit distance) on the inner pair.
fn fig26_query(jaccard_first: bool) -> String {
    let (first, second) = if jaccard_first {
        (
            "similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8",
            "edit-distance($o.reviewerName, $i.reviewerName) <= 1",
        )
    } else {
        (
            "edit-distance($o.reviewerName, $i.reviewerName) <= 1",
            "similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8",
        )
    };
    format!(
        r#"
        for $p in dataset Seeds
        for $o in dataset ARevs
        for $i in dataset ARevs
        where $p.score = $o.score and $p.sid = 3
          and {first}
          and {second}
          and $o.id < $i.id
        return [ $o.id, $i.id ]
    "#
    )
}

#[test]
fn fig26_condition_orders_agree() {
    let db = setup(300);
    let jac_first = db.query(&fig26_query(true)).unwrap();
    let ed_first = db.query(&fig26_query(false)).unwrap();
    assert_eq!(pairs(&jac_first.rows), pairs(&ed_first.rows));
    // Whichever order, an index-based join must have been chosen for the
    // first similarity predicate.
    assert!(jac_first.plan.used_rule("introduce-index-nested-loop-join"));
    assert!(ed_first.plan.used_rule("introduce-index-nested-loop-join"));
    // Both plans carry runtime corner-case machinery (a union splitting
    // the outer stream by index usability): edit distance for keys with
    // T <= 0 (§5.1.1, the expensive case §6.4.3 blames for the
    // edit-distance-first slowdown) and Jaccard for empty-token keys
    // (J(∅, ∅) = 1 matches rows the index cannot surface). The usable
    // predicate in each plan names the measure of the *first* condition.
    let has_union = |r: &asterix_core::QueryResult| {
        r.plan.physical_ops.iter().any(|(n, _)| *n == "union")
    };
    assert!(has_union(&jac_first), "{:?}", jac_first.plan.physical_ops);
    assert!(has_union(&ed_first), "{:?}", ed_first.plan.physical_ops);
    assert!(
        jac_first.plan.explain.contains("jaccard-can-use-index"),
        "{}",
        jac_first.plan.explain
    );
    assert!(
        ed_first.plan.explain.contains("edit-distance-can-use-index"),
        "{}",
        ed_first.plan.explain
    );
}

#[test]
fn fig26_matches_brute_force() {
    let db = setup(200);
    let engine = db.query(&fig26_query(true)).unwrap();
    // Brute force over the generated data.
    let rows = amazon_reviews(200, 55);
    let seed_score = rows[3].field("score").clone();
    let mut expected = Vec::new();
    for a in &rows {
        if a.field("score") != &seed_score {
            continue;
        }
        for b in &rows {
            let (ida, idb) = (
                a.field("id").as_i64().unwrap(),
                b.field("id").as_i64().unwrap(),
            );
            if ida >= idb {
                continue;
            }
            let ta = asterix_simfn::word_tokens(a.field("summary").as_str().unwrap());
            let tb = asterix_simfn::word_tokens(b.field("summary").as_str().unwrap());
            let ed = asterix_simfn::edit_distance(
                a.field("reviewerName").as_str().unwrap(),
                b.field("reviewerName").as_str().unwrap(),
            );
            if asterix_simfn::jaccard(&ta, &tb) >= 0.8 && ed <= 1 {
                expected.push((ida, idb));
            }
        }
    }
    expected.sort();
    expected.dedup();
    assert_eq!(pairs(&engine.rows), expected);
}

/// Fig 18: a chain of similarity joins across three datasets, all
/// rewritten (iteratively) to three-stage plans.
#[test]
fn fig18_chained_similarity_joins() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    for name in ["R", "S", "T"] {
        db.create_dataset(name, "id").unwrap();
        db.load(name, amazon_reviews(150, 71)).unwrap();
    }
    let r = db
        .query(
            r#"
        for $r in dataset R
        for $s in dataset S
        for $t in dataset T
        where similarity-jaccard(word-tokens($r.summary),
                                 word-tokens($s.summary)) >= 0.9
          and similarity-jaccard(word-tokens($s.summary),
                                 word-tokens($t.summary)) >= 0.9
        return [ $r.id, $s.id, $t.id ]
    "#,
        )
        .unwrap();
    let fired = r
        .plan
        .rewrites
        .iter()
        .filter(|(n, _)| *n == "three-stage-similarity-join")
        .map(|(_, c)| *c)
        .sum::<usize>();
    assert_eq!(fired, 2, "{:?}", r.plan.rewrites);

    // Every triple satisfies both predicates (spot-verified).
    let rows = amazon_reviews(150, 71);
    for v in r.rows.iter().take(50) {
        let l = v.as_list().unwrap();
        let (a, b, c) = (
            l[0].as_i64().unwrap() as usize,
            l[1].as_i64().unwrap() as usize,
            l[2].as_i64().unwrap() as usize,
        );
        let tok = |i: usize| {
            asterix_simfn::word_tokens(rows[i].field("summary").as_str().unwrap())
        };
        assert!(asterix_simfn::jaccard(&tok(a), &tok(b)) >= 0.9);
        assert!(asterix_simfn::jaccard(&tok(b), &tok(c)) >= 0.9);
    }
    assert!(!r.rows.is_empty(), "identical summaries exist, triples expected");
}

/// Self-join triples: every record pairs with itself, so (x, x, x) must
/// always be present — a completeness smoke test for chained joins.
#[test]
fn chained_self_joins_include_reflexive_triples() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    for name in ["R", "S", "T"] {
        db.create_dataset(name, "id").unwrap();
        db.load(name, amazon_reviews(60, 13)).unwrap();
    }
    let r = db
        .query(
            r#"
        for $r in dataset R
        for $s in dataset S
        for $t in dataset T
        where similarity-jaccard(word-tokens($r.summary),
                                 word-tokens($s.summary)) >= 1.0
          and similarity-jaccard(word-tokens($s.summary),
                                 word-tokens($t.summary)) >= 1.0
          and $r.id = 5 and $s.id = 5 and $t.id = 5
        return [ $r.id, $s.id, $t.id ]
    "#,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
}
