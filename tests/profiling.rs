//! The per-query profiling subsystem: `QueryOptions { profile: true }`
//! must attach a [`QueryProfile`] with per-operator runtime stats,
//! storage counters attributed to *that query alone* (even when queries
//! run concurrently), the index-search candidate funnel, and the
//! optimizer's rule trace — rendered as JSON and as a text tree.

use asterix_adm::IndexKind;
use asterix_core::{Instance, InstanceConfig, QueryOptions, QueryProfile};
use asterix_datagen::amazon_reviews;

fn profiled() -> QueryOptions {
    QueryOptions {
        profile: true,
        disable_hotpath: false,
        ..QueryOptions::default()
    }
}

/// Reviews with both similarity indexes, flushed so queries actually
/// touch disk components through the buffer cache.
fn setup(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 42)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
        .unwrap();
    db.flush("ARevs").unwrap();
    db
}

fn jaccard_query() -> String {
    // "caho" is the most common word the generator emits, so this
    // matches one-word summaries exactly at jaccard 0.5.
    "for $t in dataset ARevs \
     where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.5 \
     return $t.id"
        .to_string()
}

#[test]
fn profile_absent_by_default() {
    let db = setup(50);
    let r = db.query(&jaccard_query()).unwrap();
    assert!(r.profile.is_none());
}

#[test]
fn profile_reports_operator_and_storage_stats() {
    let db = setup(200);
    let r = db.query_with(&jaccard_query(), &profiled()).unwrap();
    let p = r.profile.as_ref().expect("profile requested");

    // Per-operator stats: every physical op is present, the sink saw the
    // result rows, and something emitted frames/bytes downstream.
    assert!(!p.operators.is_empty());
    let sink = p.operator("result-sink").expect("sink profiled");
    assert_eq!(sink.output_tuples, r.rows.len() as u64);
    assert!(p.operators.iter().any(|o| o.frames_emitted > 0));
    assert!(p.operators.iter().any(|o| o.bytes_emitted > 0));
    assert!(p
        .operators
        .iter()
        .all(|o| o.output_tuples == 0 || !o.partition_times.is_empty()));

    // Index-search funnel: list scan → candidates → lookups → verified.
    assert!(p.index_search.inverted_elements_read > 0);
    assert!(p.index_search.toccurrence_candidates > 0);
    assert!(p.index_search.primary_lookups >= p.index_search.toccurrence_candidates);
    assert_eq!(
        p.index_search.post_verification_survivors,
        r.rows.len() as u64,
        "verify-select output must equal the final result"
    );
    // Candidates may include false positives, never fewer than results.
    assert!(p.index_search.toccurrence_candidates >= r.rows.len() as u64);

    // The flushed components force cache traffic for this query.
    assert!(p.cache.hits + p.cache.misses > 0);
    assert!(p.lsm.components_searched > 0);
    assert!(p.lsm.total_flushes > 0, "explicit flush must be counted");

    // The optimizer trace shows the index selection fired.
    assert!(p
        .rule_trace
        .iter()
        .any(|(rule, n)| *rule == "introduce-index-for-selection" && *n > 0));
}

#[test]
fn profile_renders_json_and_text() {
    let db = setup(100);
    let r = db.query_with(&jaccard_query(), &profiled()).unwrap();
    let p = r.profile.as_ref().unwrap();

    // JSON: parseable back into an ADM value with the expected fields.
    let json = p.to_json_string();
    let parsed = asterix_adm::json::parse(&json).expect("profile JSON must parse");
    for field in ["operators", "cache", "index_search", "lsm", "rule_trace"] {
        assert!(
            !parsed.field(field).is_unknown(),
            "missing field {field} in {json}"
        );
    }

    // Text: the EXPLAIN PROFILE tree is rooted at the sink and carries
    // the storage sections.
    let text = p.render_text();
    assert!(text.starts_with("QUERY PROFILE"), "{text}");
    assert!(text.contains("result-sink"), "{text}");
    assert!(text.contains("secondary-index-search"), "{text}");
    assert!(text.contains("cache:"), "{text}");
    assert!(text.contains("index search:"), "{text}");
    assert!(text.contains("rules:"), "{text}");
}

#[test]
fn scan_query_has_no_index_counters() {
    let db = setup(60);
    let q = "for $t in dataset ARevs where $t.id < 10 return $t.id";
    let r = db.query_with(q, &profiled()).unwrap();
    let p = r.profile.as_ref().unwrap();
    assert_eq!(p.index_search.toccurrence_candidates, 0);
    assert_eq!(p.index_search.inverted_elements_read, 0);
}

/// The reason the subsystem exists: two queries running at the same time
/// must each see exactly their own storage counters, not a blend (the
/// old global `reset_stats()` pattern could not provide this).
#[test]
fn concurrent_queries_report_independent_cache_stats() {
    let db = setup(200);
    let q1 = jaccard_query();
    let q2 = "for $t in dataset ARevs \
              where edit-distance($t.reviewerName, 'gubimo') <= 1 \
              return $t.id"
        .to_string();

    // Warm the cache so subsequent runs are deterministic (the default
    // cache holds the whole working set: no evictions, pure hits).
    db.query(&q1).unwrap();
    db.query(&q2).unwrap();

    let solo = |q: &str| -> QueryProfile {
        db.query_with(q, &profiled()).unwrap().profile.unwrap()
    };
    let solo1 = solo(&q1);
    let solo2 = solo(&q2);
    assert!(solo1.cache.hits > 0);
    assert!(solo2.cache.hits > 0);
    assert_ne!(
        solo1.cache, solo2.cache,
        "distinct queries should do distinct amounts of cache work"
    );

    let (conc1, conc2) = std::thread::scope(|s| {
        let h1 = s.spawn(|| solo(&q1));
        let h2 = s.spawn(|| solo(&q2));
        (h1.join().unwrap(), h2.join().unwrap())
    });

    assert_eq!(
        conc1.cache, solo1.cache,
        "query 1's cache stats changed under concurrency"
    );
    assert_eq!(
        conc2.cache, solo2.cache,
        "query 2's cache stats changed under concurrency"
    );
    assert_eq!(conc1.index_search, solo1.index_search);
    assert_eq!(conc2.index_search, solo2.index_search);
}
