//! Fault-injection matrix: inject failures (panics, typed operator
//! errors, and seeded disk faults) into every operator shape and every
//! partition, and assert the engine's failure contract:
//!
//! 1. failures surface as *typed* errors ([`ExecError`] / [`CoreError`]),
//!    never as process panics,
//! 2. jobs never hang — every cell runs under a watchdog,
//! 3. a failed job does not poison the cluster: the next job succeeds,
//! 4. transient storage faults are absorbed by the bounded retry in
//!    [`Instance::flush`], permanent ones surface as [`CoreError::Io`].

use asterix_adm::IndexKind;
use asterix_core::{CoreError, Instance, InstanceConfig};
use asterix_datagen::amazon_reviews;
use asterix_hyracks::{
    run_job, AggSpec, CmpOp, ConnectorKind, ExecError, Expr, FaultMode, JobSpec, OpId,
    PhysicalOp, SortKey,
};
use asterix_storage::{FaultInjector, FaultRule, IoOp};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(60);
const PARTITIONS: usize = 2;

/// Run a closure on its own thread and panic if it does not finish within
/// the watchdog budget — converts "the job hung" into a test failure
/// instead of a stuck CI run.
fn with_watchdog<T: Send + 'static>(
    label: String,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => v,
        Err(_) => panic!("watchdog fired: {label} did not finish in {WATCHDOG:?}"),
    }
}

fn instance_with_reviews(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(PARTITIONS));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 77)).unwrap();
    db
}

/// The operator shapes the fault is injected downstream of.
const SHAPES: &[&str] = &["scan", "select", "sort", "join", "group"];

/// Build `<shape> -> FaultInject -> ResultSink` against dataset ARevs.
fn job_with_fault(shape: &str, partition: usize, mode: FaultMode) -> JobSpec {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let mid: OpId = match shape {
        "scan" => scan,
        "select" => {
            // id >= 0: keeps everything, exercises the operator body.
            let sel = job.add(PhysicalOp::Select {
                predicate: Expr::cmp(
                    CmpOp::Ge,
                    Expr::col(1).field("id"),
                    Expr::lit(0i64),
                ),
            });
            job.pipe(scan, sel);
            sel
        }
        "sort" => {
            let sort = job.add(PhysicalOp::Sort {
                keys: vec![SortKey::asc(0)],
            });
            job.pipe(scan, sort);
            sort
        }
        "join" => {
            // Self equi-join on pk; both sides co-partitioned.
            let scan2 = job.add(PhysicalOp::DatasetScan {
                dataset: "ARevs".into(),
            });
            let join = job.add(PhysicalOp::HashJoin {
                left_keys: vec![0],
                right_keys: vec![0],
            });
            job.connect(scan, join, 0, ConnectorKind::OneToOne);
            job.connect(scan2, join, 1, ConnectorKind::OneToOne);
            join
        }
        "group" => {
            let group = job.add(PhysicalOp::HashGroupBy {
                keys: vec![0],
                aggs: vec![AggSpec::Count],
            });
            job.pipe(scan, group);
            group
        }
        other => panic!("unknown shape {other}"),
    };
    let fault = job.add(PhysicalOp::FaultInject {
        partition,
        after_tuples: 2,
        mode,
    });
    job.pipe(mid, fault);
    let sink = job.add(PhysicalOp::ResultSink);
    job.connect(fault, sink, 0, ConnectorKind::ToOne);
    job
}

/// A healthy job over the same cluster, proving the failure did not
/// poison shared state.
fn healthy_job() -> JobSpec {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.connect(scan, sink, 0, ConnectorKind::ToOne);
    job
}

/// The full matrix: operator shape × failing partition × fault mode.
/// Each cell must produce a typed error naming the failing partition and
/// leave the cluster usable.
#[test]
fn operator_fault_matrix_is_typed_and_recoverable() {
    for shape in SHAPES {
        for partition in 0..PARTITIONS {
            for mode in [FaultMode::Panic, FaultMode::Error] {
                let label = format!("{shape}/p{partition}/{mode:?}");
                let cell = label.clone();
                with_watchdog(label, move || {
                    let db = instance_with_reviews(60);
                    let job = job_with_fault(shape, partition, mode);
                    let err = run_job(&job, db.cluster())
                        .expect_err(&format!("{cell}: injected fault must fail the job"));
                    match mode {
                        FaultMode::Panic => assert!(
                            matches!(&err, ExecError::Panic { partition: p, .. } if *p == partition),
                            "{cell}: expected typed panic, got {err:?}"
                        ),
                        FaultMode::Error => assert!(
                            matches!(&err, ExecError::Operator { partition: p, .. } if *p == partition),
                            "{cell}: expected typed operator error, got {err:?}"
                        ),
                    }
                    // Supervision must not poison the cluster.
                    let (rows, _) = run_job(&healthy_job(), db.cluster())
                        .expect("healthy job after failure");
                    assert_eq!(rows.len(), 60, "{cell}: cluster degraded after failure");
                });
            }
        }
    }
}

/// A permanent disk-read fault on one partition surfaces as a typed
/// `CoreError::Io` from a full AQL query — not a panic, not a hang, and
/// not a silently truncated result.
#[test]
fn permanent_read_fault_fails_query_with_typed_io_error() {
    for failing in 0..PARTITIONS {
        let label = format!("read-fault/p{failing}");
        with_watchdog(label, move || {
            let db = instance_with_reviews(200);
            db.flush("ARevs").unwrap();
            db.partition_cache(failing).disk().set_fault_injector(Arc::new(
                FaultInjector::new(42).with_rule(FaultRule {
                    op: IoOp::Read,
                    file: None,
                    nth: 1,
                    transient: false,
                }),
            ));
            let err = db
                .query("for $t in dataset ARevs return $t.id")
                .expect_err("query over faulted disk must fail");
            assert!(
                matches!(err, CoreError::Io(_)),
                "expected CoreError::Io, got {err:?}"
            );
            // Clearing the injector restores the partition.
            db.partition_cache(failing).disk().clear_fault_injector();
            let ok = db.query("for $t in dataset ARevs return $t.id").unwrap();
            assert_eq!(ok.rows.len(), 200);
        });
    }
}

/// A transient flush fault is absorbed by the bounded retry-with-backoff
/// in `Instance::flush`: the caller sees success and no data is lost.
#[test]
fn transient_flush_fault_is_absorbed_by_retry() {
    with_watchdog("transient-flush".into(), || {
        let db = instance_with_reviews(120);
        let injector = Arc::new(FaultInjector::new(9).with_rule(FaultRule {
            op: IoOp::Flush,
            file: None,
            nth: 1,
            transient: true,
        }));
        db.partition_cache(0).disk().set_fault_injector(injector.clone());
        db.flush("ARevs").unwrap();
        assert_eq!(injector.faults_injected(), 1, "the fault must actually fire");
        assert_eq!(db.count_records("ARevs").unwrap(), 120);
    });
}

/// A *permanent* flush fault exhausts the retry budget and surfaces as
/// `CoreError::Io`; the unflushed data stays queryable in memory.
#[test]
fn permanent_flush_fault_exhausts_retries() {
    with_watchdog("permanent-flush".into(), || {
        let db = instance_with_reviews(120);
        db.partition_cache(0).disk().set_fault_injector(Arc::new(
            FaultInjector::new(5).with_rule(FaultRule {
                op: IoOp::Flush,
                file: None,
                nth: 1,
                transient: false,
            }),
        ));
        let err = db.flush("ARevs").expect_err("permanent flush fault must fail");
        assert!(matches!(err, CoreError::Io(_)), "got {err:?}");
        // Failure-atomic: nothing was lost; memory components still serve.
        db.partition_cache(0).disk().clear_fault_injector();
        assert_eq!(db.count_records("ARevs").unwrap(), 120);
    });
}

/// Chaos mode: a seeded random fault probability produces a
/// deterministic outcome. Each partition's disk gets its own injector
/// (seed derived from the partition) and is then read sequentially via
/// `count_records`, so the exact fault counts — and the exact error, if
/// any — must be identical run to run.
#[test]
fn seeded_chaos_is_deterministic_and_typed() {
    let outcome = |seed: u64| -> (Vec<u64>, Result<u64, String>) {
        let db = instance_with_reviews(150);
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.flush("ARevs").unwrap();
        let injectors: Vec<Arc<FaultInjector>> = (0..PARTITIONS)
            .map(|p| Arc::new(FaultInjector::random(seed + p as u64, 0.2)))
            .collect();
        for (p, inj) in injectors.iter().enumerate() {
            db.partition_cache(p).disk().set_fault_injector(inj.clone());
        }
        let res = db.count_records("ARevs").map_err(|e| e.to_string());
        (
            injectors.iter().map(|i| i.faults_injected()).collect(),
            res,
        )
    };
    let (faults_a, res_a) = with_watchdog("chaos-run-a".into(), move || outcome(1234));
    let (faults_b, res_b) = with_watchdog("chaos-run-b".into(), move || outcome(1234));
    assert_eq!(faults_a, faults_b, "same seed must inject the same faults");
    assert_eq!(res_a, res_b, "same seed must produce the same outcome");
    // Whatever the seed did, the API contract held: typed result, no panic.
}
