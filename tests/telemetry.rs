//! Instance-wide telemetry: per-class histograms account for every query
//! under concurrency, tracing spans form well-nested trees per query,
//! the LSM lifecycle event ring never loses the newest K events, the
//! slow-query log captures the full plan + profile, and the disable
//! switch turns everything off without affecting query results.

use asterix_adm::{record, IndexKind, Value};
use asterix_core::{
    Instance, InstanceConfig, QueryClass, QueryOptions, TelemetryConfig,
};
use asterix_datagen::amazon_reviews;
use asterix_storage::{FaultInjector, FaultRule, IoOp, SpanRecord};
use std::sync::Arc;
use std::time::Duration;

fn reviews_instance(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 42)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.flush("ARevs").unwrap();
    db
}

const SCAN_Q: &str = "for $t in dataset ARevs return $t.id";
const SELECT_Q: &str = "for $t in dataset ARevs \
     where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.4 \
     return $t.id";
const JOIN_Q: &str = "for $o in dataset ARevs \
     for $i in dataset ARevs \
     where $o.id < 20 \
       and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
       and $o.id < $i.id \
     return {\"o\": $o.id, \"i\": $i.id}";

fn class_snapshot(db: &Instance, class: QueryClass) -> asterix_core::telemetry::ClassSnapshot {
    db.metrics()
        .classes
        .into_iter()
        .find(|c| c.class == class)
        .expect("class present in snapshot")
}

/// Every query lands in exactly one class, and the latency histogram's
/// total equals the number of queries issued in that class.
#[test]
fn classes_and_histogram_totals_match_issued_queries() {
    let db = reviews_instance(200);
    for _ in 0..3 {
        db.query(SCAN_Q).unwrap();
    }
    for _ in 0..2 {
        let r = db.query(SELECT_Q).unwrap();
        assert!(r.plan.used_rule("introduce-index-for-selection"));
    }
    let r = db.query(JOIN_Q).unwrap();
    assert!(r.plan.used_rule("introduce-index-nested-loop-join"));

    let scan = class_snapshot(&db, QueryClass::Scan);
    let select = class_snapshot(&db, QueryClass::IndexSelect);
    let join = class_snapshot(&db, QueryClass::IndexJoin);
    assert_eq!(scan.completed, 3);
    assert_eq!(select.completed, 2);
    assert_eq!(join.completed, 1);
    for c in [&scan, &select, &join] {
        assert_eq!(c.latency.count, c.completed, "histogram total == query count");
        assert_eq!(c.compile.count, c.completed);
        assert_eq!(c.failed, 0);
        assert_eq!(c.timeouts, 0);
        let (p50, p95, p99) = (
            c.latency.percentile_us(0.50),
            c.latency.percentile_us(0.95),
            c.latency.percentile_us(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }
    assert!(scan.rows_returned >= 200);
}

/// N query threads racing insert + flush threads: after the dust settles
/// the class counters and histogram totals account for every single
/// query, and the event ring holds the newest K events with contiguous
/// sequence numbers.
#[test]
fn concurrent_queries_and_flushes_account_exactly() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;
    let mut config = InstanceConfig::tiny(2);
    config.telemetry.event_log_capacity = 16;
    let db = Instance::new(config);
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(120, 42)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.flush("ARevs").unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    if (t + i) % 2 == 0 {
                        db.query(SCAN_Q).unwrap();
                    } else {
                        db.query(SELECT_Q).unwrap();
                    }
                }
            });
        }
        // DML + flush churn concurrent with the queries: inserts keep
        // refilling memory components so every flush emits events.
        let db = &db;
        s.spawn(move || {
            for i in 0..8 {
                db.insert(
                    "ARevs",
                    record! {"id" => 1_000_000 + i as i64, "summary" => "churn churn churn",
                             "reviewerName" => "tel"},
                )
                .unwrap();
                db.flush("ARevs").unwrap();
            }
        });
    });

    // DDL, load, and flush are not queries — the class counters account
    // for exactly the queries the threads issued, nothing more.
    let m = db.metrics();
    let total: u64 = m.classes.iter().map(|c| c.total()).sum();
    assert_eq!(total, (THREADS * PER_THREAD) as u64);
    let hist_total: u64 = m.classes.iter().map(|c| c.latency.count).sum();
    assert_eq!(hist_total, total, "histogram totals == query count");
    assert!(m.classes.iter().all(|c| c.failed == 0 && c.timeouts == 0));

    // The flush churn left lifecycle events in the bounded ring; the ring
    // never exceeds its capacity and never loses the newest events.
    let log = db.telemetry().unwrap().event_log().clone();
    let events = log.snapshot();
    assert!(log.total_recorded() > 0);
    assert!(events.len() <= 16);
    let last = events.last().unwrap().seq;
    assert_eq!(last, log.total_recorded() - 1, "newest event is retained");
}

/// The event ring under concurrent flushes: `snapshot` is always the
/// newest K events, oldest first, with contiguous sequence numbers ending
/// at `total_recorded - 1`.
#[test]
fn event_ring_retains_newest_k_under_concurrency() {
    let mut config = InstanceConfig::tiny(2);
    config.telemetry.event_log_capacity = 8;
    let db = Instance::new(config);
    db.create_dataset("ARevs", "id").unwrap();
    std::thread::scope(|s| {
        for t in 0..3 {
            let db = &db;
            s.spawn(move || {
                for i in 0..10 {
                    db.insert(
                        "ARevs",
                        record! {"id" => (t * 100 + i) as i64, "summary" => "x y z",
                                 "reviewerName" => "r"},
                    )
                    .unwrap();
                    db.flush("ARevs").unwrap();
                }
            });
        }
    });
    let log = db.telemetry().expect("telemetry on").event_log().clone();
    let events = log.snapshot();
    let recorded = log.total_recorded();
    assert!(recorded >= 8, "flush churn must have recorded events");
    assert_eq!(events.len(), 8);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expect: Vec<u64> = (recorded - 8..recorded).collect();
    assert_eq!(seqs, expect, "ring must hold exactly the newest K events");
    assert_eq!(log.dropped(), recorded - 8);
    // Flush events carry tree tags and byte counts.
    assert!(events
        .iter()
        .any(|e| e.tree.starts_with("ARevs/") && e.bytes > 0));
}

fn assert_well_nested(spans: &[SpanRecord]) {
    assert!(!spans.is_empty());
    let root: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(root.len(), 1, "exactly one root span: {spans:?}");
    let root = root[0];
    assert_eq!(root.name, "query");
    // Unique ids.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len(), "span ids must be unique");
    // The compile + execute stages hang off the root. A plan-cache hit
    // replaces the four compile-stage spans with one "plan-cache" span.
    let cache_hit = spans.iter().any(|s| s.name == "plan-cache");
    let stages: &[&str] = if cache_hit {
        &["plan-cache", "execute"]
    } else {
        &["parse", "translate", "optimize", "jobgen", "execute"]
    };
    for &stage in stages {
        let s = spans
            .iter()
            .find(|s| s.name == stage)
            .unwrap_or_else(|| panic!("missing {stage} span in {spans:?}"));
        assert_eq!(s.parent, Some(root.id), "{stage} must parent under root");
    }
    let execute = spans.iter().find(|s| s.name == "execute").unwrap();
    // Operator spans parent under execute and carry their partition.
    let op_spans: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent == Some(execute.id))
        .collect();
    assert!(!op_spans.is_empty(), "execute must have operator child spans");
    assert!(op_spans.iter().all(|s| s.partition.is_some()));
    assert!(op_spans.iter().any(|s| s.name == "result-sink"));
    // Intervals nest within their parent (2us slack for µs truncation).
    for s in spans {
        if let Some(pid) = s.parent {
            let p = spans.iter().find(|x| x.id == pid).expect("parent exists");
            assert!(
                s.start_us + 2 >= p.start_us,
                "child {s:?} starts before parent {p:?}"
            );
            assert!(
                s.start_us + s.duration_us <= p.start_us + p.duration_us + 2,
                "child {s:?} ends after parent {p:?}"
            );
        }
    }
}

/// Span trees are complete and well-nested, independently for concurrent
/// queries (no cross-query parenting through the thread-local).
#[test]
fn span_trees_well_nested_per_query_under_concurrency() {
    let db = reviews_instance(150);
    let force_capture = QueryOptions {
        slow_query_threshold: Some(Duration::ZERO),
        ..QueryOptions::default()
    };
    std::thread::scope(|s| {
        for _ in 0..3 {
            let db = &db;
            let opts = &force_capture;
            s.spawn(move || db.query_with(SELECT_Q, opts).unwrap());
        }
    });
    let slow = db.telemetry().unwrap().slow_queries();
    assert_eq!(slow.len(), 3, "every forced-threshold query is captured");
    for entry in &slow {
        assert_well_nested(&entry.spans);
    }
}

/// The slow-query log captures the query text, full plan, and full
/// profile; fast queries under the default threshold are not captured.
#[test]
fn slow_query_log_captures_plan_and_profile() {
    let db = reviews_instance(150);
    db.query(SCAN_Q).unwrap(); // default 250ms threshold: not captured
    assert!(db.telemetry().unwrap().slow_queries().is_empty());

    let r = db
        .query_with(
            SELECT_Q,
            &QueryOptions {
                slow_query_threshold: Some(Duration::ZERO),
                ..QueryOptions::default()
            },
        )
        .unwrap();
    let slow = db.telemetry().unwrap().slow_queries();
    assert_eq!(slow.len(), 1);
    let entry = &slow[0];
    assert_eq!(entry.query, SELECT_Q);
    assert_eq!(entry.class, QueryClass::IndexSelect);
    assert_eq!(entry.rows, r.rows.len() as u64);
    assert!(
        entry.plan.contains("secondary-index-search") || entry.plan.contains("select"),
        "captured plan must be the real explain output: {}",
        entry.plan
    );
    assert!(!entry.profile.operators.is_empty(), "full profile captured");
    assert!(entry.profile.index_search.primary_lookups > 0);
    // The capture flows into the JSON snapshot, plan and profile included.
    let json = asterix_adm::json::to_string(&db.metrics_snapshot());
    assert!(json.contains("secondary-index-search"));
    assert!(json.contains("post_verification_survivors"));
}

/// `TelemetryConfig::off()`: queries behave identically, no registry, no
/// spans, no event ring, and the snapshot says so.
#[test]
fn disable_switch_turns_everything_off() {
    let config = InstanceConfig {
        telemetry: TelemetryConfig::off(),
        ..InstanceConfig::with_partitions(2)
    };
    let db = Instance::new(config);
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(80, 42)).unwrap();
    let r = db.query(SCAN_Q).unwrap();
    assert_eq!(r.rows.len(), 80);
    assert!(db.telemetry().is_none());
    assert!(!db.metrics().enabled);
    let json = asterix_adm::json::to_string(&db.metrics_snapshot());
    assert!(json.contains("\"telemetry_enabled\":false"), "{json}");
    assert_eq!(db.metrics_prometheus().trim().lines().last().unwrap(), "asterix_telemetry_enabled 0");
    // A profile is still available on demand — profiling does not depend
    // on telemetry.
    let r = db
        .query_with(
            SCAN_Q,
            &QueryOptions {
                profile: true,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    assert!(r.profile.is_some());
}

/// Failed and timed-out queries are counted under their outcome, and
/// compile errors under `compile_errors`.
#[test]
fn outcomes_and_compile_errors_are_counted() {
    let db = reviews_instance(400);
    db.query("for $t in").unwrap_err(); // parse error
    db.query("for $t in dataset Nope return $t").unwrap_err(); // exec error
    db.query_with(
        JOIN_Q,
        &QueryOptions {
            timeout: Some(Duration::ZERO),
            ..QueryOptions::default()
        },
    )
    .unwrap_err();
    let m = db.metrics();
    assert_eq!(m.compile_errors, 1);
    let scan = class_snapshot(&db, QueryClass::Scan);
    assert_eq!(scan.failed, 1, "unknown-dataset failure counted");
    let join = class_snapshot(&db, QueryClass::IndexJoin);
    assert_eq!(join.timeouts, 1, "deadline exceeded counted as timeout");
    assert_eq!(join.latency.count, 1, "failed queries still land in the histogram");
}

/// Transient flush faults absorbed by the retry loop leave `fault_retry`
/// events in the ring, tagged with the dataset and carrying the error.
#[test]
fn fault_retries_land_in_event_ring() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(60, 7)).unwrap();
    let injector = Arc::new(FaultInjector::new(9).with_rule(FaultRule {
        op: IoOp::Flush,
        file: None,
        nth: 1,
        transient: true,
    }));
    db.partition_cache(0).disk().set_fault_injector(injector.clone());
    db.flush("ARevs").unwrap();
    assert_eq!(injector.faults_injected(), 1);
    let events = db.telemetry().unwrap().event_log().snapshot();
    let retry = events
        .iter()
        .find(|e| e.kind.name() == "fault_retry")
        .expect("fault retry event recorded");
    assert!(retry.tree.starts_with("ARevs/"));
    assert!(retry.detail.as_deref().unwrap_or("").contains("flush attempt 1"));
}

/// Buffer-cache and postings-cache ratios and the per-index LSM gauges
/// show up in the snapshot after a flushed, indexed workload.
#[test]
fn snapshot_gauges_reflect_workload() {
    let db = reviews_instance(200);
    db.query(SELECT_Q).unwrap();
    db.query(SELECT_Q).unwrap(); // second run hits the postings cache
    let m = db.metrics();
    assert!(m.gauges.buffer_cache.hits + m.gauges.buffer_cache.misses > 0);
    assert!(m.storage.postings_cache_hits > 0, "warm probe must hit");
    assert!(m.gauges.lsm_flushes > 0);
    let ds = m
        .gauges
        .datasets
        .iter()
        .find(|d| d.dataset == "ARevs")
        .expect("dataset gauges present");
    let primary = ds.indexes.iter().find(|i| i.name == "<primary>").unwrap();
    let smix = ds.indexes.iter().find(|i| i.name == "smix").unwrap();
    assert!(primary.components > 0 && primary.size_bytes > 0);
    assert!(smix.components > 0 && smix.size_bytes > 0);
    // Per-operator histograms and partition busy counters filled in.
    assert!(m.operators.iter().any(|(name, h)| name == "result-sink" && h.count > 0));
    assert!(m.partitions.iter().any(|p| p.op_runs > 0));
    // JSON round-trips through the ADM parser.
    let parsed = asterix_adm::json::parse(&asterix_adm::json::to_string(&m.to_json()))
        .expect("snapshot JSON parses");
    assert_eq!(parsed.field("telemetry_enabled"), &Value::Boolean(true));
    // Prometheus text has the class series.
    let prom = db.metrics_prometheus();
    assert!(prom.contains("asterix_queries_total{class=\"index-select\",outcome=\"completed\"} 2"));
    assert!(prom.contains("asterix_lsm_components{dataset=\"ARevs\",index=\"smix\"}"));
}

/// The compiled-plan cache: a repeated query text is a hit with identical
/// results, the counters surface in the metrics snapshot and Prometheus
/// export, `disable_plan_cache` bypasses the cache entirely, and DDL
/// invalidates so a new index is picked up by the next compile.
#[test]
fn plan_cache_hits_misses_and_ddl_invalidation() {
    let db = reviews_instance(150);
    let first = db.query(SELECT_Q).unwrap();
    let m = db.metrics();
    assert_eq!(m.gauges.plan_cache_hits, 0);
    assert!(m.gauges.plan_cache_misses >= 1);
    let misses_after_first = m.gauges.plan_cache_misses;

    let second = db.query(SELECT_Q).unwrap();
    assert_eq!(first.ids(), second.ids(), "cache hit must not change results");
    assert!(second.plan.used_rule("introduce-index-for-selection"));
    let m = db.metrics();
    assert_eq!(m.gauges.plan_cache_hits, 1);
    assert_eq!(m.gauges.plan_cache_misses, misses_after_first);

    // The bypass switch: no hit, no miss, identical results.
    let opts = QueryOptions {
        disable_plan_cache: true,
        ..QueryOptions::default()
    };
    let third = db.query_with(SELECT_Q, &opts).unwrap();
    assert_eq!(first.ids(), third.ids());
    let m = db.metrics();
    assert_eq!(m.gauges.plan_cache_hits, 1);
    assert_eq!(m.gauges.plan_cache_misses, misses_after_first);

    // DDL invalidation: dropping the keyword index must evict the cached
    // plan; the recompiled plan falls back to a scan and still agrees.
    db.drop_index("ARevs", "smix").unwrap();
    let fourth = db.query(SELECT_Q).unwrap();
    assert_eq!(first.ids(), fourth.ids());
    assert!(
        !fourth.plan.used_rule("introduce-index-for-selection"),
        "stale cached plan survived DDL"
    );
    let m = db.metrics();
    assert_eq!(m.gauges.plan_cache_misses, misses_after_first + 1);

    let prom = db.metrics_prometheus();
    assert!(prom.contains("asterix_plan_cache_hits_total 1"));
    let json = asterix_adm::json::to_string(&db.metrics_snapshot());
    assert!(json.contains("\"plan_cache\""));
}

/// The similarity-kernel counters flow through the per-query profile,
/// the instance-lifetime metrics snapshot, and the Prometheus export.
#[test]
fn kernel_counters_in_profile_and_metrics() {
    let db = reviews_instance(150);
    let opts = QueryOptions {
        profile: true,
        ..QueryOptions::default()
    };
    let r = db.query_with(SELECT_Q, &opts).unwrap();
    let profile = r.profile.expect("profile requested");
    let json = profile.to_json_string();
    for key in ["\"kernels\"", "\"bitparallel_ed_calls\"", "\"gallop_probes\"", "\"scancount_fallbacks\""] {
        assert!(json.contains(key), "profile JSON missing {key}");
    }
    let m = db.metrics();
    // δ=0.4 keeps T below the list count, so the ScanCount kernel runs.
    assert!(m.storage.scancount_fallbacks > 0, "scan-count fallback counted");
    let prom = db.metrics_prometheus();
    for metric in [
        "asterix_bitparallel_ed_calls_total",
        "asterix_gallop_probes_total",
        "asterix_scancount_fallbacks_total",
    ] {
        assert!(prom.contains(metric), "prometheus missing {metric}");
    }
}
