//! Durable-storage integration tests: the instance-level crash-recovery
//! contract.
//!
//! 1. an acknowledged write (an `Ok` from `insert`/`delete`/`load`) is
//!    never lost across a restart, flushed or not,
//! 2. restart after a flush re-links the sealed components from the
//!    manifest and replays nothing,
//! 3. torn WAL tails (a crash mid-append) are truncated, never replayed
//!    as garbage, and a corpus of malformed WAL segments can at worst
//!    lose *unacknowledged* data — opening never panics,
//! 4. obsolete component files are reclaimed through the manifest: after
//!    flushes and merges the data directory holds exactly the files the
//!    manifest references (plus WAL + MANIFEST),
//! 5. injected WAL/manifest faults surface as typed errors before the
//!    write is acknowledged, and the instance stays consistent across a
//!    subsequent restart.

use asterix_adm::{record, IndexKind, Value};
use asterix_core::{CoreError, DurabilityConfig, Instance, InstanceConfig};
use asterix_datagen::amazon_reviews;
use asterix_storage::{FaultInjector, FaultRule, IoOp};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PARTITIONS: usize = 2;

/// Unique scratch directory, removed on drop (even on test failure).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "asterix_durability_{tag}_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(dir: &Path) -> InstanceConfig {
    let mut cfg = InstanceConfig::with_partitions(PARTITIONS);
    cfg.durability = DurabilityConfig::at(dir);
    // Keep acknowledged-write latency low in tests.
    cfg.durability.wal_commit_interval = Duration::from_micros(200);
    cfg
}

/// Tiny LSM budgets force flushes and merges through the durable path.
fn tiny_durable_config(dir: &Path) -> InstanceConfig {
    let mut cfg = InstanceConfig::tiny(PARTITIONS);
    cfg.durability = DurabilityConfig::at(dir);
    cfg.durability.wal_commit_interval = Duration::from_micros(200);
    cfg
}

const SIM_QUERY: &str = r#"
    for $t in dataset ARevs
    where similarity-jaccard(word-tokens($t.summary),
                             word-tokens('great product')) >= 0.3
    return $t.id
"#;

fn sorted_rows(db: &Instance, aql: &str) -> Vec<Value> {
    let mut rows = db.query(aql).unwrap().rows;
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Unflushed inserts reach a restarted instance purely through WAL
/// replay, and the durability gauges report the traffic.
#[test]
fn unflushed_inserts_survive_restart_via_wal_replay() {
    let tmp = TempDir::new("wal_replay");
    {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(80, 7)).unwrap();
        db.insert("ARevs", record! {"id" => 90_000i64, "summary" => "great product"})
            .unwrap();
        let gauges = &db.metrics().gauges.durability;
        assert!(gauges.enabled);
        assert!(gauges.wal_appends >= 81, "every insert must hit the WAL");
        assert!(gauges.wal_bytes > 0);
        // No flush: everything lives in memory components + WAL only.
    }
    let db = Instance::open(durable_config(tmp.path())).unwrap();
    let stats = db.recovery_stats().unwrap().clone();
    assert_eq!(stats.wal_records_replayed, 81, "all 81 acked writes replay");
    assert_eq!(db.count_records("ARevs").unwrap(), 81);
    let found = db
        .query("for $t in dataset ARevs where $t.id = 90000 return $t.summary")
        .unwrap();
    assert_eq!(found.rows.len(), 1);
    let gauges = &db.metrics().gauges.durability;
    assert_eq!(gauges.replayed_records, 81);
}

/// After a flush, restart restores the sealed components from the
/// manifest, replays nothing, and index query results are identical to
/// the pre-restart instance (scan ≡ index across the restart).
#[test]
fn flushed_components_restore_from_manifest_without_replay() {
    let tmp = TempDir::new("manifest_restore");
    let before = {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(120, 11)).unwrap();
        db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
            .unwrap();
        db.flush("ARevs").unwrap();
        sorted_rows(&db, SIM_QUERY)
    };
    let db = Instance::open(durable_config(tmp.path())).unwrap();
    let stats = db.recovery_stats().unwrap().clone();
    assert!(stats.components_opened > 0, "sealed components must re-link");
    assert_eq!(
        stats.wal_records_replayed, 0,
        "flushed WAL records must not replay (flushed_lsn advanced)"
    );
    assert_eq!(db.count_records("ARevs").unwrap(), 120);
    assert_eq!(sorted_rows(&db, SIM_QUERY), before);
    // The full scan agrees with the index-driven query's universe.
    assert_eq!(
        db.query("for $t in dataset ARevs return $t.id").unwrap().rows.len(),
        120
    );
}

/// Deletes (tombstones) are WAL-logged and survive a restart, whether
/// the deleted record was flushed or still in memory.
#[test]
fn deletes_survive_restart() {
    let tmp = TempDir::new("deletes");
    {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(50, 3)).unwrap();
        db.flush("ARevs").unwrap();
        // Flushed record deleted post-flush + unflushed record inserted
        // and deleted again — both paths live purely in the WAL.
        db.delete("ARevs", &Value::Int64(1)).unwrap();
        db.insert("ARevs", record! {"id" => 777i64, "summary" => "doomed"})
            .unwrap();
        db.delete("ARevs", &Value::Int64(777)).unwrap();
    }
    let db = Instance::open(durable_config(tmp.path())).unwrap();
    assert_eq!(db.count_records("ARevs").unwrap(), 49);
    assert_eq!(
        db.query("for $t in dataset ARevs where $t.id = 1 return $t").unwrap().rows.len(),
        0
    );
    assert_eq!(
        db.query("for $t in dataset ARevs where $t.id = 777 return $t").unwrap().rows.len(),
        0
    );
}

fn newest_wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = Vec::new();
    for p in 0..PARTITIONS {
        let wal_dir = dir.join(format!("p{p}")).join("wal");
        if let Ok(entries) = std::fs::read_dir(&wal_dir) {
            for e in entries.flatten() {
                if e.path().extension().is_some_and(|x| x == "log") {
                    segments.push(e.path());
                }
            }
        }
    }
    segments.sort();
    segments.pop().expect("at least one WAL segment")
}

/// A torn tail — a crash partway through appending a record — is
/// truncated at the first bad checksum; every acknowledged write
/// (all of which precede the torn frame) survives.
#[test]
fn torn_wal_tail_is_truncated_without_losing_acked_writes() {
    let tmp = TempDir::new("torn_tail");
    {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(40, 5)).unwrap();
    }
    // Simulate the torn write: garbage bytes after the last good record.
    let segment = newest_wal_segment(tmp.path());
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]);
    std::fs::write(&segment, &bytes).unwrap();

    let db = Instance::open(durable_config(tmp.path())).unwrap();
    let stats = db.recovery_stats().unwrap().clone();
    assert!(stats.wal_bytes_truncated > 0, "the torn tail must be dropped");
    assert_eq!(db.count_records("ARevs").unwrap(), 40, "acked writes survive");
}

/// Corpus of malformed WAL segments: truncations at many offsets,
/// bit-flips, and wholesale garbage. Opening must never panic; when it
/// succeeds the instance must be internally consistent (scan works,
/// point lookups work). Data loss is permitted only because the
/// mutations simulate *physical* corruption of unsynced suffixes.
#[test]
fn malformed_wal_corpus_never_panics() {
    let build = |tag: &str| -> TempDir {
        let tmp = TempDir::new(tag);
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(30, 9)).unwrap();
        drop(db);
        tmp
    };
    // Truncate the newest segment at a spread of lengths.
    for cut in [1usize, 3, 7, 9, 13, 50, 101] {
        let tmp = build("corpus_trunc");
        let segment = newest_wal_segment(tmp.path());
        let bytes = std::fs::read(&segment).unwrap();
        let keep = bytes.len().saturating_sub(cut);
        std::fs::write(&segment, &bytes[..keep]).unwrap();
        let db = Instance::open(durable_config(tmp.path()))
            .unwrap_or_else(|e| panic!("truncate-{cut}: open must not fail hard: {e}"));
        let n = db.count_records("ARevs").unwrap();
        assert!(n <= 30, "truncate-{cut}: more records than were written");
        db.query("for $t in dataset ARevs return $t.id").unwrap();
    }
    // Flip one byte at a spread of offsets.
    for at in [0usize, 5, 11, 40, 97] {
        let tmp = build("corpus_flip");
        let segment = newest_wal_segment(tmp.path());
        let mut bytes = std::fs::read(&segment).unwrap();
        if at < bytes.len() {
            bytes[at] ^= 0xff;
        }
        std::fs::write(&segment, &bytes).unwrap();
        let db = Instance::open(durable_config(tmp.path()))
            .unwrap_or_else(|e| panic!("flip-{at}: open must not fail hard: {e}"));
        db.query("for $t in dataset ARevs return $t.id").unwrap();
    }
    // Replace the whole newest segment with garbage.
    {
        let tmp = build("corpus_garbage");
        let segment = newest_wal_segment(tmp.path());
        std::fs::write(&segment, vec![0xa5u8; 256]).unwrap();
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.query("for $t in dataset ARevs return $t.id").unwrap();
    }
}

fn cmp_files_on_disk(dir: &Path) -> u64 {
    let mut n = 0;
    for p in 0..PARTITIONS {
        let pdir = dir.join(format!("p{p}"));
        for e in std::fs::read_dir(&pdir).unwrap().flatten() {
            if e.path().extension().is_some_and(|x| x == "cmp") {
                n += 1;
            }
        }
    }
    n
}

/// Satellite pin: obsolete component files are reclaimed through the
/// manifest. After heavy flush/merge traffic the data directory holds
/// exactly as many component files as the live LSM trees have
/// components — pre-merge inputs and dropped-index files are gone.
#[test]
fn merge_and_drop_reclaim_component_files_on_disk() {
    let tmp = TempDir::new("reclaim");
    let db = Instance::open(tiny_durable_config(tmp.path())).unwrap();
    db.create_dataset("ARevs", "id").unwrap();
    db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
        .unwrap();
    // Load in waves with explicit flushes: tiny budgets force merges.
    for wave in 0..6 {
        db.load("ARevs", amazon_reviews(40, 100 + wave)).unwrap();
        db.flush("ARevs").unwrap();
    }
    let (_, merges) = {
        let g = db.metrics().gauges;
        (g.lsm_flushes, g.lsm_merges)
    };
    assert!(merges > 0, "tiny budgets must have forced merges");
    let live_components: u64 = db
        .metrics()
        .gauges
        .datasets
        .iter()
        .flat_map(|d| d.indexes.iter())
        .map(|i| i.components)
        .sum();
    assert_eq!(
        cmp_files_on_disk(tmp.path()),
        live_components,
        "on-disk files must match live components exactly (no leaked pre-merge inputs)"
    );
    // Dropping the index reclaims its files too.
    db.drop_index("ARevs", "sum_kw").unwrap();
    let live_after: u64 = db
        .metrics()
        .gauges
        .datasets
        .iter()
        .flat_map(|d| d.indexes.iter())
        .map(|i| i.components)
        .sum();
    assert!(live_after < live_components);
    assert_eq!(cmp_files_on_disk(tmp.path()), live_after);
}

/// WAL/recovery fault matrix: injected failures on the WAL append path,
/// the group-commit flush, and the manifest commit surface as typed
/// errors *before* the write is acknowledged; after clearing the fault
/// the instance works, and a restart proves no acked write was lost.
#[test]
fn wal_and_manifest_fault_matrix() {
    for (op, transient) in [
        (IoOp::WalAppend, true),
        (IoOp::WalAppend, false),
        (IoOp::WalFlush, false),
        (IoOp::ManifestCommit, false),
    ] {
        let tmp = TempDir::new("fault_matrix");
        let mut acked: Vec<i64> = Vec::new();
        {
            let db = Instance::open(durable_config(tmp.path())).unwrap();
            db.create_dataset("ARevs", "id").unwrap();
            for rec in amazon_reviews(20, 21) {
                let id = match rec.field("id") {
                    Value::Int64(i) => *i,
                    other => panic!("unexpected id {other:?}"),
                };
                db.insert("ARevs", rec).unwrap();
                acked.push(id);
            }
            for p in 0..PARTITIONS {
                db.partition_cache(p).disk().set_fault_injector(Arc::new(
                    FaultInjector::new(17).with_rule(FaultRule {
                        op,
                        file: None,
                        nth: 1,
                        transient,
                    }),
                ));
            }
            let probe = record! {"id" => 500_000i64, "summary" => "probe"};
            let result = match op {
                IoOp::ManifestCommit => db.flush("ARevs"),
                _ => db.insert("ARevs", probe.clone()),
            };
            let err = result.expect_err(&format!("{op:?} fault must fail the operation"));
            assert!(
                matches!(err, CoreError::Io(_)),
                "{op:?}: expected CoreError::Io, got {err:?}"
            );
            // Clearing the injector restores the partition: the same
            // operation succeeds and is acknowledged.
            for p in 0..PARTITIONS {
                db.partition_cache(p).disk().clear_fault_injector();
            }
            match op {
                IoOp::ManifestCommit => db.flush("ARevs").unwrap(),
                _ => {
                    db.insert("ARevs", probe).unwrap();
                    acked.push(500_000);
                }
            }
        }
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        assert_eq!(
            db.count_records("ARevs").unwrap(),
            acked.len() as u64,
            "{op:?}: acked-write count must survive restart"
        );
        for id in &acked {
            let hit = db
                .query(&format!("for $t in dataset ARevs where $t.id = {id} return $t.id"))
                .unwrap();
            assert_eq!(hit.rows.len(), 1, "{op:?}: acked id {id} lost");
        }
    }
}

/// DDL is durable on its own (without any flush): datasets and index
/// definitions committed to the manifest come back after a restart, and
/// a dropped index stays dropped.
#[test]
fn ddl_survives_restart() {
    let tmp = TempDir::new("ddl");
    {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
            .unwrap();
        db.create_index("ARevs", "sum_ng", "summary", IndexKind::NGram(3))
            .unwrap();
        db.drop_index("ARevs", "sum_ng").unwrap();
    }
    let db = Instance::open(durable_config(tmp.path())).unwrap();
    // The dataset exists (insert works) and the surviving index serves
    // similarity queries after loading data.
    db.load("ARevs", amazon_reviews(60, 13)).unwrap();
    db.insert("ARevs", record! {"id" => 90_001i64, "summary" => "great product"})
        .unwrap();
    let names: Vec<String> = db
        .index_sizes("ARevs")
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert!(names.iter().any(|n| n == "sum_kw"), "index def lost: {names:?}");
    assert!(!names.iter().any(|n| n == "sum_ng"), "dropped index came back");
    assert!(!sorted_rows(&db, SIM_QUERY).is_empty());
}

/// In-memory instances (no data dir) are unaffected: no files, no WAL,
/// durability gauges disabled.
#[test]
fn in_memory_instance_reports_durability_disabled() {
    let db = Instance::new(InstanceConfig::with_partitions(PARTITIONS));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(10, 1)).unwrap();
    assert!(db.recovery_stats().is_none());
    assert!(!db.is_durable());
    let g = &db.metrics().gauges.durability;
    assert!(!g.enabled);
    assert_eq!(g.wal_appends, 0);
}

/// Regression: a manifest commit can truncate away every WAL segment, so
/// a restarted WAL would renumber from 1 — *below* the manifest's
/// `flushed_lsn` — and the next recovery would skip the fresh appends as
/// already flushed. The opener must keep LSNs monotonic across restarts:
/// flush → restart → append → crash → restart must keep the appends.
#[test]
fn appends_after_flush_survive_a_second_restart() {
    let tmp = TempDir::new("lsn_floor");
    {
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        db.load("ARevs", amazon_reviews(60, 3)).unwrap();
        db.flush("ARevs").unwrap();
    }
    {
        // Second incarnation: WAL segments were truncated by the flush's
        // manifest commit; these inserts must get LSNs above flushed_lsn.
        let db = Instance::open(durable_config(tmp.path())).unwrap();
        for i in 0..7i64 {
            db.insert("ARevs", record! {"id" => 80_000 + i, "summary" => "great product"})
                .unwrap();
        }
        // No flush: drop simulates a crash with the records WAL-only.
    }
    let db = Instance::open(durable_config(tmp.path())).unwrap();
    let stats = db.recovery_stats().unwrap();
    assert_eq!(
        stats.wal_records_replayed, 7,
        "appends from the second incarnation must replay"
    );
    assert_eq!(db.count_records("ARevs").unwrap(), 67);
}

/// Regression for the manifest-commit race: flushes and DDL statements
/// commit every partition's manifest concurrently, and without
/// per-partition commit serialization a staler committer could
/// overwrite a newer manifest whose advanced `flushed_lsn` had already
/// reclaimed WAL segments — after a restart the operations in between
/// would be in neither the manifest's components nor the WAL. Hammer
/// inserts, flushes, and index create/drop concurrently under tiny LSM
/// budgets, then reopen and demand every acknowledged write back.
#[test]
fn concurrent_flush_and_ddl_commits_lose_no_acked_writes() {
    let tmp = TempDir::new("commit_race");
    const WRITERS: i64 = 4;
    const PER_WRITER: i64 = 100;
    {
        let db = Instance::open(tiny_durable_config(tmp.path())).unwrap();
        db.create_dataset("ARevs", "id").unwrap();
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let db = &db;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        db.insert(
                            "ARevs",
                            record! {"id" => w * 10_000 + i, "summary" => "great product"},
                        )
                        .unwrap();
                    }
                });
            }
            // Flush committer: advances flushed_lsn and truncates WAL.
            {
                let db = &db;
                s.spawn(move || {
                    for _ in 0..15 {
                        db.flush("ARevs").unwrap();
                    }
                });
            }
            // DDL committer: every create/drop commits all manifests too.
            {
                let db = &db;
                s.spawn(move || {
                    for round in 0..5 {
                        let name = format!("kw{round}");
                        db.create_index("ARevs", &name, "summary", IndexKind::Keyword)
                            .unwrap();
                        db.drop_index("ARevs", &name).unwrap();
                    }
                });
            }
        });
        // Drop without a final flush: recovery must reassemble the state
        // from whatever mix of components and WAL the race left behind.
    }
    let db = Instance::open(tiny_durable_config(tmp.path())).unwrap();
    assert_eq!(
        db.count_records("ARevs").unwrap(),
        (WRITERS * PER_WRITER) as u64,
        "every acknowledged insert must survive the concurrent commits"
    );
}
