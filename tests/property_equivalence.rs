//! Property-based integration tests: for randomized datasets and query
//! parameters, every physical plan the optimizer can choose returns the
//! same answers (the soundness invariant behind every comparison in the
//! paper's evaluation), and selection answers match a model computed
//! directly with the similarity library.

use asterix_adm::{record, IndexKind};
use asterix_algebricks::OptimizerConfig;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use proptest::prelude::*;

fn no_index() -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        timeout: None,
    }
}

/// A tiny text corpus with heavy token overlap so similarity results are
/// non-trivial.
fn summary_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "great", "product", "value", "gift", "nice", "works", "fine", "bad",
        ]),
        1..6,
    )
    .prop_map(|words| words.join(" "))
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-d]{3,7}".prop_map(|s| s)
}

fn build_db(rows: &[(String, String)], partitions: usize) -> Instance {
    let db = Instance::new(InstanceConfig::tiny(partitions));
    db.create_dataset("D", "id").unwrap();
    for (i, (name, summary)) in rows.iter().enumerate() {
        db.insert(
            "D",
            record! {"id" => i as i64, "name" => name.as_str(), "summary" => summary.as_str()},
        )
        .unwrap();
    }
    db.create_index("D", "kw", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("D", "ng", "name", IndexKind::NGram(2))
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Indexed Jaccard selection ≡ scan ≡ the similarity library.
    #[test]
    fn jaccard_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..25),
        probe in summary_strategy(),
        delta in prop::sample::select(vec![0.2f64, 0.5, 0.8, 1.0]),
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D \
             where similarity-jaccard(word-tokens($t.summary), word-tokens('{probe}')) >= {delta} \
             return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        // Model: compute directly with the library.
        let probe_tokens = asterix_simfn::word_tokens(&probe);
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| {
                asterix_simfn::jaccard(&asterix_simfn::word_tokens(s), &probe_tokens) >= delta
            })
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }

    /// Indexed edit-distance selection ≡ scan ≡ the similarity library
    /// (including corner cases where the optimizer refuses the index).
    #[test]
    fn edit_distance_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..25),
        probe in name_strategy(),
        k in 0u32..4,
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D where edit-distance($t.name, '{probe}') <= {k} return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| asterix_simfn::edit_distance(n, &probe) <= k)
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }

    /// All three join strategies agree on random data.
    #[test]
    fn join_strategy_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 4..18),
        delta in prop::sample::select(vec![0.5f64, 0.8]),
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $a in dataset D for $b in dataset D \
             where similarity-jaccard(word-tokens($a.summary), word-tokens($b.summary)) >= {delta} \
             and $a.id < $b.id return [ $a.id, $b.id ]"
        );
        let pairs = |r: &asterix_core::QueryResult| {
            let mut v: Vec<(i64, i64)> = r
                .rows
                .iter()
                .map(|x| {
                    let l = x.as_list().unwrap();
                    (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
                })
                .collect();
            v.sort();
            v
        };
        let indexed = db.query(&q).unwrap();
        let three_stage = db
            .query_with(
                &q,
                &QueryOptions {
                    optimizer: Some(OptimizerConfig {
                        enable_index_join: false,
                        ..OptimizerConfig::default()
                    }),
                    timeout: None,
                },
            )
            .unwrap();
        let nl = db
            .query_with(
                &q,
                &QueryOptions {
                    optimizer: Some(OptimizerConfig {
                        enable_index_join: false,
                        enable_three_stage: false,
                        ..OptimizerConfig::default()
                    }),
                    timeout: None,
                },
            )
            .unwrap();
        prop_assert_eq!(pairs(&indexed), pairs(&nl));
        prop_assert_eq!(pairs(&three_stage), pairs(&nl));
    }

    /// Contains through the n-gram index ≡ scan ≡ `str::contains`.
    #[test]
    fn contains_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..20),
        pattern in "[a-d]{1,4}",
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D where contains($t.name, '{pattern}') return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| n.contains(&pattern))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }
}
