//! Property-based integration tests: for randomized datasets and query
//! parameters, every physical plan the optimizer can choose returns the
//! same answers (the soundness invariant behind every comparison in the
//! paper's evaluation), and selection answers match a model computed
//! directly with the similarity library.

use asterix_adm::{record, IndexKind};
use asterix_algebricks::OptimizerConfig;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use proptest::prelude::*;

fn no_index() -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        ..QueryOptions::default()
    }
}

/// A tiny text corpus with heavy token overlap so similarity results are
/// non-trivial. Zero-word summaries are generated on purpose: an
/// empty-token record is invisible to the inverted index yet
/// J(∅, ∅) = 1, the degenerate-key corner of §5.1.1.
fn summary_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "great", "product", "value", "gift", "nice", "works", "fine", "bad",
        ]),
        0..6,
    )
    .prop_map(|words| words.join(" "))
}

/// Names include the empty string and strings shorter than the gram
/// length (2), which tokenize to nothing / a single truncated gram.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-d]{0,7}".prop_map(|s| s)
}

fn build_db(rows: &[(String, String)], partitions: usize) -> Instance {
    let db = Instance::new(InstanceConfig::tiny(partitions));
    db.create_dataset("D", "id").unwrap();
    for (i, (name, summary)) in rows.iter().enumerate() {
        db.insert(
            "D",
            record! {"id" => i as i64, "name" => name.as_str(), "summary" => summary.as_str()},
        )
        .unwrap();
    }
    db.create_index("D", "kw", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("D", "ng", "name", IndexKind::NGram(2))
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Indexed Jaccard selection ≡ scan ≡ the similarity library.
    #[test]
    fn jaccard_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..25),
        probe in summary_strategy(),
        delta in prop::sample::select(vec![0.0f64, 0.2, 0.5, 0.8, 1.0]),
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D \
             where similarity-jaccard(word-tokens($t.summary), word-tokens('{probe}')) >= {delta} \
             return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        // Model: compute directly with the library.
        let probe_tokens = asterix_simfn::word_tokens(&probe);
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| {
                asterix_simfn::jaccard(&asterix_simfn::word_tokens(s), &probe_tokens) >= delta
            })
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }

    /// Indexed edit-distance selection ≡ scan ≡ the similarity library
    /// (including corner cases where the optimizer refuses the index).
    #[test]
    fn edit_distance_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..25),
        probe in name_strategy(),
        k in 0u32..4,
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D where edit-distance($t.name, '{probe}') <= {k} return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| asterix_simfn::edit_distance(n, &probe) <= k)
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }

    /// All three join strategies agree on random data.
    #[test]
    fn join_strategy_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 4..18),
        delta in prop::sample::select(vec![0.5f64, 0.8, 1.0]),
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $a in dataset D for $b in dataset D \
             where similarity-jaccard(word-tokens($a.summary), word-tokens($b.summary)) >= {delta} \
             and $a.id < $b.id return [ $a.id, $b.id ]"
        );
        let pairs = |r: &asterix_core::QueryResult| {
            let mut v: Vec<(i64, i64)> = r
                .rows
                .iter()
                .map(|x| {
                    let l = x.as_list().unwrap();
                    (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
                })
                .collect();
            v.sort();
            v
        };
        let indexed = db.query(&q).unwrap();
        let three_stage = db
            .query_with(
                &q,
                &QueryOptions {
                    optimizer: Some(OptimizerConfig {
                        enable_index_join: false,
                        ..OptimizerConfig::default()
                    }),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let nl = db
            .query_with(
                &q,
                &QueryOptions {
                    optimizer: Some(OptimizerConfig {
                        enable_index_join: false,
                        enable_three_stage: false,
                        ..OptimizerConfig::default()
                    }),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        prop_assert_eq!(pairs(&indexed), pairs(&nl));
        prop_assert_eq!(pairs(&three_stage), pairs(&nl));
    }

    /// Contains through the n-gram index ≡ scan ≡ `str::contains`.
    #[test]
    fn contains_selection_equivalence(
        rows in prop::collection::vec((name_strategy(), summary_strategy()), 3..20),
        pattern in "[a-d]{0,4}",
    ) {
        let db = build_db(&rows, 2);
        let q = format!(
            "for $t in dataset D where contains($t.name, '{pattern}') return $t.id"
        );
        let with = db.query(&q).unwrap();
        let without = db.query_with(&q, &no_index()).unwrap();
        prop_assert_eq!(with.ids(), without.ids());
        let expected: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| n.contains(&pattern))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(with.ids(), expected);
    }
}

/// Deterministic pins for the degenerate-key boundaries: empty strings,
/// strings shorter than the gram length, δ ∈ {0, 1}, and k = 0. Each
/// scenario compares the default (index-eligible) plan against the
/// forced scan plan, and against a model computed with the similarity
/// library — the cases where the inverted index alone would silently
/// drop rows.
mod degenerate_keys {
    use super::*;

    /// id 0: fully empty row; id 1: name shorter than the gram length,
    /// empty summary; ids 2/3: ordinary rows with identical summaries.
    fn db() -> Instance {
        build_db(
            &[
                (String::new(), String::new()),
                ("a".into(), String::new()),
                ("abc".into(), "great product".into()),
                ("abd".into(), "great product".into()),
            ],
            2,
        )
    }

    #[test]
    fn empty_probe_jaccard_selection() {
        let db = db();
        // J(∅, ∅) = 1: the empty-token rows 0 and 1 must match, and only
        // they — the index cannot surface them, so the optimizer must
        // keep the scan.
        let q = "for $t in dataset D \
                 where similarity-jaccard(word-tokens($t.summary), word-tokens('')) >= 0.5 \
                 return $t.id";
        let with = db.query(q).unwrap();
        let without = db.query_with(q, &no_index()).unwrap();
        assert_eq!(with.ids(), vec![0, 1]);
        assert_eq!(with.ids(), without.ids());
    }

    #[test]
    fn delta_zero_jaccard_matches_everything() {
        let db = db();
        let q = "for $t in dataset D \
                 where similarity-jaccard(word-tokens($t.summary), word-tokens('great')) >= 0.0 \
                 return $t.id";
        let with = db.query(q).unwrap();
        let without = db.query_with(q, &no_index()).unwrap();
        assert_eq!(with.ids(), vec![0, 1, 2, 3]);
        assert_eq!(with.ids(), without.ids());
    }

    #[test]
    fn delta_one_jaccard_exact_token_set() {
        let db = db();
        let q = "for $t in dataset D \
                 where similarity-jaccard(word-tokens($t.summary), word-tokens('product great')) >= 1.0 \
                 return $t.id";
        let with = db.query(q).unwrap();
        let without = db.query_with(q, &no_index()).unwrap();
        assert_eq!(with.ids(), vec![2, 3]);
        assert_eq!(with.ids(), without.ids());
    }

    #[test]
    fn empty_probe_edit_distance_selection() {
        let db = db();
        // edit-distance(name, "") = len(name): k = 1 matches rows 0, 1.
        let q = "for $t in dataset D where edit-distance($t.name, '') <= 1 return $t.id";
        let with = db.query(q).unwrap();
        let without = db.query_with(q, &no_index()).unwrap();
        assert_eq!(with.ids(), vec![0, 1]);
        assert_eq!(with.ids(), without.ids());
    }

    #[test]
    fn k_zero_edit_distance_is_exact_match() {
        let db = db();
        let q = "for $t in dataset D where edit-distance($t.name, 'abc') <= 0 return $t.id";
        let with = db.query(q).unwrap();
        let without = db.query_with(q, &no_index()).unwrap();
        assert_eq!(with.ids(), vec![2]);
        assert_eq!(with.ids(), without.ids());
    }

    #[test]
    fn short_and_empty_contains_patterns() {
        let db = db();
        for (pattern, expected) in [("", vec![0i64, 1, 2, 3]), ("a", vec![1, 2, 3])] {
            let q =
                format!("for $t in dataset D where contains($t.name, '{pattern}') return $t.id");
            let with = db.query(&q).unwrap();
            let without = db.query_with(&q, &no_index()).unwrap();
            assert_eq!(with.ids(), expected, "pattern {pattern:?}");
            assert_eq!(with.ids(), without.ids(), "pattern {pattern:?}");
        }
    }

    /// Empty-token rows must survive every join strategy: the indexed
    /// plan's corner union, the three-stage plan's corner branch, and
    /// the plain nested-loop join all have to emit the (0, 1) pair that
    /// only exists because J(∅, ∅) = 1.
    #[test]
    fn empty_token_rows_survive_all_join_strategies() {
        let db = db();
        let q = "for $a in dataset D for $b in dataset D \
                 where similarity-jaccard(word-tokens($a.summary), word-tokens($b.summary)) >= 0.8 \
                 and $a.id < $b.id return [ $a.id, $b.id ]";
        let pairs = |r: &asterix_core::QueryResult| {
            let mut v: Vec<(i64, i64)> = r
                .rows
                .iter()
                .map(|x| {
                    let l = x.as_list().unwrap();
                    (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
                })
                .collect();
            v.sort();
            v
        };
        let indexed = db.query(q).unwrap();
        let three_stage = db
            .query_with(
                q,
                &QueryOptions {
                    optimizer: Some(OptimizerConfig {
                        enable_index_join: false,
                        ..OptimizerConfig::default()
                    }),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let nl = db.query_with(q, &no_index()).unwrap();
        assert_eq!(pairs(&nl), vec![(0, 1), (2, 3)]);
        assert_eq!(pairs(&indexed), pairs(&nl));
        assert_eq!(pairs(&three_stage), pairs(&nl));
    }
}
