//! Plan-level integration tests: the rewrites of §5 produce the plan
//! shapes of Figs 7, 10, 14, 15, 19, 20, and the textual AQL+ template
//! (§5.2) instantiates to an executable plan equivalent to the typed
//! rewrite.

use asterix_adm::IndexKind;
use asterix_algebricks::plan::build;
use asterix_algebricks::{generate_job, OptimizerConfig, VarGen};
use asterix_aql::aqlplus::{instantiate_three_stage_text, ThreeStageTextBindings};
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;

fn db_with_indexes(n: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 123)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
        .unwrap();
    db
}

#[test]
fn fig7_selection_plan_shape() {
    let db = db_with_indexes(50);
    let info = db
        .explain(
            r#"
        for $t in dataset ARevs
        where similarity-jaccard(word-tokens($t.summary),
                                 word-tokens('great product')) >= 0.5
        return $t.id
    "#,
        )
        .unwrap();
    // Index-based plan: secondary search → local pk sort → primary lookup
    // → verification select.
    let e = &info.explain;
    assert!(e.contains("index-search ARevs.smix"), "{e}");
    assert!(e.contains("order (local)"), "{e}");
    assert!(e.contains("primary-lookup ARevs"), "{e}");
    let search_pos = e.find("index-search").unwrap();
    let lookup_pos = e.find("primary-lookup").unwrap();
    let select_pos = e.find("select").unwrap();
    assert!(select_pos < lookup_pos && lookup_pos < search_pos,
        "verification above lookup above search (printed root-first): {e}");
}

#[test]
fn fig14_edit_distance_join_has_split_and_union() {
    let db = db_with_indexes(50);
    let info = db
        .explain(
            r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where edit-distance($a.reviewerName, $b.reviewerName) <= 1
        return [ $a.id, $b.id ]
    "#,
        )
        .unwrap();
    let e = &info.explain;
    assert!(e.contains("union-all"), "{e}");
    assert!(e.contains("edit-distance-can-use-index"), "{e}");
    assert!(e.contains("join[BroadcastLeftNl]"), "{e}");
    // The keyed outer stream is shared between the two paths (replicate).
    assert!(e.contains("(reused)"), "{e}");
}

#[test]
fn fig15_operator_counts_nested_loop_vs_three_stage() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(20, 1)).unwrap();
    let q = r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.5
        return [ $a.id, $b.id ]
    "#;
    // Nested-loop plan (three-stage disabled).
    let nl = db
        .query_with(
            q,
            &QueryOptions {
                optimizer: Some(OptimizerConfig {
                    enable_three_stage: false,
                    enable_index_join: false,
                    ..OptimizerConfig::default()
                }),
                ..QueryOptions::default()
            },
        )
        .unwrap();
    let three = db.query(q).unwrap();
    let nl_total = nl.plan.total_logical_ops_after();
    let ts_total = three.plan.total_logical_ops_after();
    // Fig 15: 6 operators for the NL plan vs 77 for the three-stage plan.
    // Our shapes: a handful vs dozens.
    assert!(nl_total <= 8, "nested-loop plan small, got {nl_total}");
    assert!(ts_total >= 25, "three-stage plan large, got {ts_total}");
    assert!(ts_total >= 3 * nl_total);
    // And the answers agree.
    assert_eq!(nl.rows.len(), three.rows.len());
}

#[test]
fn fig19_surrogate_plan_keeps_top_level_hash_join() {
    let db = db_with_indexes(50);
    let q = r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.8
        return [ $a.id, $b.id ]
    "#;
    let r = db
        .query_with(
            q,
            &QueryOptions {
                optimizer: Some(OptimizerConfig {
                    enable_surrogate: true,
                    ..OptimizerConfig::default()
                }),
                ..QueryOptions::default()
            },
        )
        .unwrap();
    // Surrogate resolution join on top (hash join present beyond the
    // prefix joins).
    assert!(r.plan.used_rule("introduce-index-nested-loop-join"));
    assert!(
        r.plan.physical_ops.iter().any(|(n, c)| *n == "hash-join" && *c >= 1),
        "{:?}",
        r.plan.physical_ops
    );
    assert!(r.plan.explain.contains("@shared-"), "{}", r.plan.explain);
}

#[test]
fn fig20_reuse_merges_identical_scans() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(30, 9)).unwrap();
    let q = r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.5
        return [ $a.id, $b.id ]
    "#;
    let r = db.query(q).unwrap();
    // A three-stage self join touches the dataset in stages 1, 2, and 3 —
    // but reuse means a single physical scan (Fig 20).
    let scans = r
        .plan
        .physical_ops
        .iter()
        .find(|(n, _)| *n == "dataset-scan")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert_eq!(scans, 1, "{:?}", r.plan.physical_ops);
}

#[test]
fn aqlplus_textual_template_executes_like_typed_rule() {
    // The paper's two-step rewrite (Fig 16): textual AQL+ template →
    // parse → translate → plan. Run it and compare answers with the typed
    // rule's plan on the same instance.
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(200, 31)).unwrap();

    // Typed path (the engine's rule).
    let typed = db
        .query(
            r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.8
          and $a.id < $b.id
        return [ $a.id, $b.id ]
    "#,
        )
        .unwrap();
    assert!(typed.plan.used_rule("three-stage-similarity-join"));
    let mut typed_pairs: Vec<(i64, i64)> = typed
        .rows
        .iter()
        .map(|v| {
            let l = v.as_list().unwrap();
            (l[0].as_i64().unwrap(), l[1].as_i64().unwrap())
        })
        .collect();
    typed_pairs.sort();

    // Textual path: instantiate the AQL+ template against two fresh scan
    // branches and execute the resulting job directly.
    let vg = VarGen::new();
    let (left, lpk, lrec) = build::scan("ARevs", &vg);
    let (right, rpk, rrec) = build::scan("ARevs", &vg);
    let plan = instantiate_three_stage_text(
        &ThreeStageTextBindings {
            left,
            right,
            left_pk: lpk,
            left_rec: lrec,
            right_pk: rpk,
            right_rec: rrec,
            field: "summary".into(),
            threshold: 0.8,
        },
        &vg,
    )
    .expect("textual instantiation");
    // Normalize (select-into-join etc.) and generate the job.
    let catalog = db.catalog();
    let registry = asterix_simfn::FunctionRegistry::with_builtins();
    let cfg = OptimizerConfig {
        // The template IS the three-stage plan; only normalization needed.
        enable_three_stage: false,
        enable_index_join: false,
        enable_index_select: false,
        ..OptimizerConfig::default()
    };
    let (optimized, _) = asterix_algebricks::optimize(&plan, &catalog, &registry, &cfg, &vg);
    let job = generate_job(&optimized, true).expect("jobgen");
    let (rows, _) = asterix_hyracks::run_job(&job, db.cluster()).expect("run");
    let mut text_pairs: Vec<(i64, i64)> = rows
        .iter()
        .map(|t| {
            let rec = &t[0];
            (
                rec.field("left").field("id").as_i64().unwrap(),
                rec.field("right").field("id").as_i64().unwrap(),
            )
        })
        .collect();
    text_pairs.sort();
    text_pairs.dedup();
    assert_eq!(text_pairs, typed_pairs, "textual AQL+ ≡ typed template");
    assert!(!text_pairs.is_empty(), "expect some similar pairs at n=200");
}

#[test]
fn fig12_two_phase_aggregation_in_three_stage_job() {
    // Fig 12's stage 1: "Hash Group (Token) Local" → "Hash repartition" →
    // "Hash Group (Token)". The job generator lowers decomposable
    // group-bys into exactly that local+global pair.
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(50, 3)).unwrap();
    let r = db
        .query(
            r#"
        for $a in dataset ARevs
        for $b in dataset ARevs
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.5
          and $a.id < $b.id
        return [ $a.id, $b.id ]
    "#,
        )
        .unwrap();
    assert!(r.plan.used_rule("three-stage-similarity-join"));
    let group_ops = r
        .plan
        .physical_ops
        .iter()
        .find(|(n, _)| *n == "hash-group-by")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    // Token counting lowers to local+global; the collect/dedup group-bys
    // stay single-phase. At least one extra op proves the split happened.
    assert!(group_ops >= 4, "{:?}", r.plan.physical_ops);

    // And the two-phase lowering changes no answers for an aggregation
    // query.
    let counted = db
        .query(
            r#"
        count( for $t in dataset ARevs
               for $tok in word-tokens($t.summary)
               group by $g := $tok with $t
               return $g );
    "#,
        )
        .unwrap();
    // Distinct tokens across all summaries:
    let direct = db
        .query("for $t in dataset ARevs return $t.summary")
        .unwrap();
    let mut tokens: Vec<String> = direct
        .rows
        .iter()
        .filter_map(|v| v.as_str())
        .flat_map(asterix_simfn::word_tokens)
        .collect();
    tokens.sort();
    tokens.dedup();
    assert_eq!(counted.count(), Some(tokens.len() as i64));
}

#[test]
fn sim_operator_follows_set_statements_for_both_measures() {
    let db = db_with_indexes(60);
    let jac = db
        .explain(
            r#"
        set simfunction 'jaccard';
        set simthreshold '0.8';
        for $t in dataset ARevs
        where word-tokens($t.summary) ~= word-tokens('great product')
        return $t.id
    "#,
        )
        .unwrap();
    assert!(jac.explain.contains("Jaccard { delta: 0.8 }"), "{}", jac.explain);
    let ed = db
        .explain(
            r#"
        set simfunction 'edit-distance';
        set simthreshold '1';
        for $t in dataset ARevs
        where $t.reviewerName ~= 'marla'
        return $t.id
    "#,
        )
        .unwrap();
    assert!(
        ed.explain.contains("EditDistance { k: 1 }") || ed.explain.contains("edit-distance"),
        "{}",
        ed.explain
    );
}
