//! Integration tests of the `asterix-server` HTTP service: streamed
//! results must match library execution exactly, engine errors must map
//! to their documented statuses, ingestion must backpressure instead of
//! buffering without bound, and the admin surface must ride along under
//! `/admin/*`.

use asterix_adm::{json, record, IndexKind, Value};
use asterix_core::{Instance, InstanceConfig, QueryClass, SchedulerConfig};
use asterix_hyracks::CancelToken;
use asterix_server::{AsterixServer, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const ADJECTIVES: [&str; 8] = [
    "great", "awful", "decent", "fantastic", "cheap", "sturdy", "fragile", "reliable",
];
const NOUNS: [&str; 8] = [
    "product", "charger", "cable", "speaker", "keyboard", "monitor", "backpack", "bottle",
];

fn seeded_instance(n: i64, with_index: bool) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("Reviews", "id").unwrap();
    for i in 0..n {
        let a = ADJECTIVES[(i % 8) as usize];
        let b = ADJECTIVES[((i / 8) % 8) as usize];
        let noun = NOUNS[((i / 64) % 8) as usize];
        db.insert(
            "Reviews",
            record! {
                "id" => i,
                "reviewerName" => format!("reviewer{}", i % 37),
                "summary" => format!("{a} {b} {noun} number {i}")
            },
        )
        .unwrap();
    }
    if with_index {
        db.create_index("Reviews", "smix", "summary", IndexKind::Keyword)
            .unwrap();
    }
    db
}

fn serve(db: Instance) -> AsterixServer {
    AsterixServer::start(Arc::new(db), ServerConfig::ephemeral()).unwrap()
}

/// One full HTTP exchange; the response body is chunked-decoded when the
/// server streamed it.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, String, String) {
    let text = String::from_utf8_lossy(raw).to_string();
    let head_end = text.find("\r\n\r\n").expect("response head");
    let head = &text[..head_end];
    let body_raw = &text[head_end + 4..];
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        decode_chunked(body_raw)
    } else {
        body_raw.to_string()
    };
    (status, head.to_string(), body)
}

fn decode_chunked(mut raw: &str) -> String {
    let mut out = String::new();
    while let Some(line_end) = raw.find("\r\n") {
        let size = usize::from_str_radix(raw[..line_end].trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        let start = line_end + 2;
        out.push_str(&raw[start..start + size]);
        raw = &raw[start + size + 2..];
    }
    out
}

/// Run a statement over HTTP; returns (status, rows-as-json-strings,
/// final protocol line).
fn http_query(addr: SocketAddr, statement: &str, options: &str) -> (u16, Vec<String>, Value) {
    let body = format!("{{\"statement\": {}, \"options\": {options}}}", json_string(statement));
    let (status, _head, text) = http(addr, "POST", "/query", &body);
    if status != 200 {
        return (status, Vec::new(), json::parse(&text).unwrap());
    }
    let mut rows = Vec::new();
    let mut last = Value::Missing;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
        if !matches!(v.field("row"), Value::Missing) {
            rows.push(json::to_string(v.field("row")));
        } else {
            last = v;
        }
    }
    (status, rows, last)
}

fn json_string(s: &str) -> String {
    json::to_string(&Value::from(s))
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[test]
fn streamed_results_match_library_execution() {
    let db = seeded_instance(256, true);
    let cases = [
        // Scan class: no similarity predicate.
        "for $r in dataset Reviews return $r.id",
        // Index-accelerated selection.
        "for $r in dataset Reviews \
         where similarity-jaccard(word-tokens($r.summary), \
                                  word-tokens('great fantastic product')) >= 0.5 \
         return $r.id",
        // Similarity self-join.
        "for $a in dataset Reviews for $b in dataset Reviews \
         where similarity-jaccard(word-tokens($a.summary), \
                                  word-tokens($b.summary)) >= 0.8 \
         return $b.id",
    ];
    let expected: Vec<Vec<String>> = cases
        .iter()
        .map(|aql| {
            let result = db.query(aql).unwrap();
            sorted(result.rows.iter().map(json::to_string).collect())
        })
        .collect();

    let server = serve(db);
    for (aql, want) in cases.iter().zip(&expected) {
        let (status, rows, last) = http_query(server.local_addr(), aql, "{}");
        assert_eq!(status, 200, "{aql}");
        assert_eq!(&sorted(rows.clone()), want, "{aql}");
        let done = last.field("done");
        assert_eq!(done.field("rows").as_i64(), Some(rows.len() as i64), "{aql}");
        assert!(done.field("query_id").as_i64().is_some(), "{aql}");
    }
}

#[test]
fn query_options_class_profile_and_empty_results() {
    let db = seeded_instance(64, true);
    let server = serve(db);
    let addr = server.local_addr();

    // Pinned admission class is echoed back through the done line.
    let (status, rows, last) = http_query(
        addr,
        "for $r in dataset Reviews return $r.id",
        "{\"class\": \"index-join\", \"profile\": true}",
    );
    assert_eq!(status, 200);
    assert_eq!(rows.len(), 64);
    assert!(!matches!(last.field("done").field("profile"), Value::Missing));

    // Zero rows still produce a well-formed stream: just the done line.
    let (status, rows, last) = http_query(
        addr,
        "for $r in dataset Reviews where $r.id = 123456 return $r.id",
        "{}",
    );
    assert_eq!(status, 200);
    assert!(rows.is_empty());
    assert_eq!(last.field("done").field("rows").as_i64(), Some(0));

    // Unknown class is a 400 before anything runs.
    let (status, _, err) = http_query(
        addr,
        "for $r in dataset Reviews return $r.id",
        "{\"class\": \"warp-speed\"}",
    );
    assert_eq!(status, 400);
    assert!(err.field("error").as_str().unwrap().contains("warp-speed"));
}

#[test]
fn typed_errors_map_to_documented_statuses() {
    let db = seeded_instance(200, false);
    let server = serve(db);
    let addr = server.local_addr();

    // Parse failure → 400 parse_error.
    let (status, _, err) = http_query(addr, "for $$ nonsense", "{}");
    assert_eq!(status, 400);
    assert_eq!(
        err.field("error").field("code").as_str(),
        Some("parse_error")
    );

    // Unknown dataset: this engine resolves datasets at run time, so it
    // surfaces as an operator failure → 500 execution_error.
    let (status, _, err) = http_query(addr, "for $r in dataset Nope return $r.id", "{}");
    assert_eq!(status, 500);
    assert_eq!(
        err.field("error").field("code").as_str(),
        Some("execution_error")
    );

    // Timeout on an expensive unindexed self-join → 504 timeout.
    let join = "for $a in dataset Reviews for $b in dataset Reviews \
                where similarity-jaccard(word-tokens($a.summary), \
                                         word-tokens($b.summary)) >= 0.9 \
                return $b.id";
    let (status, _, err) = http_query(addr, join, "{\"timeout_ms\": 1}");
    assert_eq!(status, 504, "{err:?}");
    assert_eq!(err.field("error").field("code").as_str(), Some("timeout"));
    assert_eq!(err.field("error").field("status").as_i64(), Some(504));

    // Malformed request envelopes.
    let (status, _head, _) = http(addr, "POST", "/query", "this is not json");
    assert_eq!(status, 400);
    let (status, _head, _) = http(addr, "POST", "/query", "{\"no_statement\": 1}");
    assert_eq!(status, 400);

    // Unknown route and wrong method.
    let (status, _head, _) = http(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    let (status, head, _) = http(addr, "GET", "/query", "");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");
}

#[test]
fn admission_rejection_maps_to_429_with_retry_after() {
    let config = InstanceConfig {
        scheduler: SchedulerConfig {
            workers: 2,
            max_concurrent_queries: 1,
            queue_depth: 1,
            ..SchedulerConfig::default()
        },
        ..InstanceConfig::with_partitions(2)
    };
    let db = Instance::new(config);
    db.create_dataset("Reviews", "id").unwrap();
    db.insert("Reviews", record! {"id" => 1i64, "summary" => "one record"})
        .unwrap();
    let server = serve(db);
    let addr = server.local_addr();

    // Hold the single execution slot through the scheduler directly...
    let hold_token = CancelToken::new();
    let permit = server
        .instance()
        .scheduler()
        .unwrap()
        .admit(QueryClass::Scan, &hold_token, 9001)
        .unwrap();
    // ...and park a waiter in the single queue slot behind it.
    let queued_instance = Arc::clone(server.instance());
    let queued_token = Arc::new(CancelToken::new());
    let waiter_token = Arc::clone(&queued_token);
    let waiter = thread::spawn(move || {
        let _ = queued_instance
            .scheduler()
            .unwrap()
            .admit(QueryClass::Scan, &waiter_token, 9002);
    });
    thread::sleep(Duration::from_millis(200));

    // A third arrival in the same class must be rejected immediately.
    let body = format!(
        "{{\"statement\": {}, \"options\": {{\"class\": \"scan\"}}}}",
        json_string("for $r in dataset Reviews return $r.id")
    );
    let (status, head, text) = http(addr, "POST", "/query", &body);
    assert_eq!(status, 429, "{text}");
    assert!(head.contains("Retry-After:"), "{head}");
    let err = json::parse(&text).unwrap();
    assert_eq!(
        err.field("error").field("code").as_str(),
        Some("queue_full")
    );
    assert_eq!(err.field("error").field("retryable").as_bool(), Some(true));

    queued_token.cancel();
    waiter.join().unwrap();
    drop(permit);

    // With the slot free again the same request succeeds.
    let (status, _head, _text) = http(addr, "POST", "/query", &body);
    assert_eq!(status, 200);
}

#[test]
fn ingest_feeds_apply_backpressure_and_bounds() {
    let db = seeded_instance(0, false);
    let config = ServerConfig {
        max_inflight_ingest_bytes: Some(256),
        ..ServerConfig::ephemeral()
    };
    let server = AsterixServer::start(Arc::new(db), config).unwrap();
    let addr = server.local_addr();

    // A batch that fits is ingested.
    let batch = "{\"id\": 1000, \"summary\": \"fresh record one\"}\n\
                 {\"id\": 1001, \"summary\": \"fresh record two\"}\n";
    let (status, _head, body) = http(addr, "POST", "/ingest/Reviews", batch);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.field("ingested").as_i64(), Some(2));

    // A batch that can never fit the in-flight cap → 413, not a retry loop.
    let huge: String = (0..40)
        .map(|i| format!("{{\"id\": {}, \"summary\": \"padding padding padding\"}}\n", 2000 + i))
        .collect();
    assert!(huge.len() > 256);
    let (status, _head, _body) = http(addr, "POST", "/ingest/Reviews", &huge);
    assert_eq!(status, 413);

    // Malformed NDJSON is rejected with the offending line, nothing applied.
    let before = server.instance().count_records("Reviews").unwrap();
    let (status, _head, body) = http(
        addr,
        "POST",
        "/ingest/Reviews",
        "{\"id\": 3000}\nnot json at all\n",
    );
    assert_eq!(status, 400);
    assert!(body.contains("line 2"), "{body}");
    assert_eq!(server.instance().count_records("Reviews").unwrap(), before);

    // Unknown dataset → schema error with a zero ingested count.
    let (status, _head, body) = http(addr, "POST", "/ingest/Nope", "{\"id\": 1}\n");
    assert_eq!(status, 400);
    let v = json::parse(&body).unwrap();
    assert_eq!(v.field("error").field("code").as_str(), Some("schema_error"));
    assert_eq!(v.field("ingested").as_i64(), Some(0));

    // Feed counters are visible and drain back to zero in-flight.
    let (status, _head, body) = http(addr, "GET", "/feed", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    assert_eq!(v.field("inflight_bytes").as_i64(), Some(0));
    assert_eq!(v.field("ingested_records").as_i64(), Some(2));
    assert!(v.field("rejected_batches").as_i64().unwrap() >= 1);
}

#[test]
fn concurrent_queries_and_ingest_agree_with_library() {
    let db = seeded_instance(128, true);
    let server = serve(db);
    let addr = server.local_addr();

    let query = "for $r in dataset Reviews \
                 where similarity-jaccard(word-tokens($r.summary), \
                                          word-tokens('great fantastic product')) >= 0.5 \
                 return $r.id";
    let expected = {
        let result = server.instance().query(query).unwrap();
        sorted(result.rows.iter().map(json::to_string).collect())
    };

    let mut workers = Vec::new();
    for w in 0..4 {
        let query = query.to_string();
        workers.push(thread::spawn(move || {
            for _ in 0..5 {
                let (status, rows, _) = http_query(addr, &query, "{}");
                assert_eq!(status, 200);
                // Ingested records never match the predicate, so results
                // stay stable while the feed runs.
                assert!(!rows.is_empty());
            }
            w
        }));
    }
    // Feed batches concurrently with the queries.
    let mut next_id = 10_000i64;
    for _ in 0..10 {
        let batch: String = (0..8)
            .map(|i| format!("{{\"id\": {}, \"summary\": \"zzz qqq xyzzy\"}}\n", next_id + i))
            .collect();
        next_id += 8;
        let (status, _head, _body) = http(addr, "POST", "/ingest/Reviews", &batch);
        assert_eq!(status, 200);
    }
    for w in workers {
        w.join().unwrap();
    }

    let (status, rows, _) = http_query(addr, query, "{}");
    assert_eq!(status, 200);
    assert_eq!(sorted(rows), expected);
    assert_eq!(
        server.instance().count_records("Reviews").unwrap(),
        128 + 80
    );
}

#[test]
fn ddl_routes_create_list_and_conflict() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    let server = serve(db);
    let addr = server.local_addr();

    let (status, _head, body) = http(
        addr,
        "POST",
        "/datasets",
        "{\"name\": \"Products\", \"primary_key\": \"id\"}",
    );
    assert_eq!(status, 201, "{body}");

    // Duplicate dataset → 409.
    let (status, _head, _body) = http(
        addr,
        "POST",
        "/datasets",
        "{\"name\": \"Products\", \"primary_key\": \"id\"}",
    );
    assert_eq!(status, 409);

    let (status, _head, _body) = http(addr, "POST", "/ingest/Products",
        "{\"id\": 1, \"name\": \"wireless charger\"}\n{\"id\": 2, \"name\": \"wireless charges\"}\n");
    assert_eq!(status, 200);

    let (status, _head, body) = http(
        addr,
        "POST",
        "/datasets/Products/indexes",
        "{\"name\": \"ngx\", \"field\": \"name\", \"kind\": \"ngram\", \"gram\": 2}",
    );
    assert_eq!(status, 201, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.field("records_indexed").as_i64(), Some(2));

    // Duplicate index → 409; bad kind → 400.
    let (status, _head, _body) = http(
        addr,
        "POST",
        "/datasets/Products/indexes",
        "{\"name\": \"ngx\", \"field\": \"name\", \"kind\": \"ngram\"}",
    );
    assert_eq!(status, 409);
    let (status, _head, _body) = http(
        addr,
        "POST",
        "/datasets/Products/indexes",
        "{\"name\": \"bad\", \"field\": \"name\", \"kind\": \"quantum\"}",
    );
    assert_eq!(status, 400);

    let (status, _head, body) = http(addr, "GET", "/datasets", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let Value::OrderedList(datasets) = v.field("datasets") else {
        panic!("datasets not a list: {body}")
    };
    assert_eq!(datasets.len(), 1);
    assert_eq!(datasets[0].field("name").as_str(), Some("Products"));
    assert_eq!(datasets[0].field("records").as_i64(), Some(2));

    // An index created over HTTP is used by the optimizer.
    let (status, rows, _) = http_query(
        addr,
        "for $p in dataset Products \
         where edit-distance($p.name, 'wireless charger') <= 1 \
         return $p.id",
        "{}",
    );
    assert_eq!(status, 200);
    assert_eq!(rows.len(), 2);
}

#[test]
fn admin_surface_mounts_under_prefix() {
    let db = seeded_instance(32, true);
    let server = serve(db);
    let addr = server.local_addr();

    let (status, _head, body) = http(addr, "GET", "/admin/health", "");
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.field("status").as_str(), Some("ok"));

    let (status, _head, body) = http(addr, "GET", "/admin", "");
    assert_eq!(status, 200, "{body}");

    let (status, _head, body) = http(addr, "GET", "/admin/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("asterix_"), "{body}");

    let (status, _head, _body) = http(addr, "GET", "/admin/no-such", "");
    assert_eq!(status, 404);

    // The service index lists every route.
    let (status, _head, body) = http(addr, "GET", "/", "");
    assert_eq!(status, 200);
    for (_method, path, _summary) in asterix_server::ROUTES {
        assert!(body.contains(path), "index missing {path}: {body}");
    }
}

#[test]
fn oversized_requests_are_bounded() {
    let db = Instance::new(InstanceConfig::with_partitions(1));
    let config = ServerConfig {
        http: asterix_core::HttpLimits {
            max_head_bytes: 1024,
            max_body_bytes: 2048,
            ..Default::default()
        },
        ..ServerConfig::ephemeral()
    };
    let server = AsterixServer::start(Arc::new(db), config).unwrap();
    let addr = server.local_addr();

    // Declared body over the cap → 413 before reading it.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let (status, _head, _body) = parse_response(&raw);
    assert_eq!(status, 413);

    // Oversized request head → 431.
    let mut stream = TcpStream::connect(addr).unwrap();
    let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4096));
    let _ = stream.write_all(huge.as_bytes());
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let (status, _head, _body) = parse_response(&raw);
    assert_eq!(status, 431);
}

#[test]
fn cancel_over_http_ends_the_stream_with_a_typed_error() {
    let db = seeded_instance(400, false);
    let server = serve(db);
    let addr = server.local_addr();

    // Every pair matches at threshold 0.1, so 160k rows stream while
    // the executor is still producing — plenty of time to cancel with
    // rows already on the wire.
    let join = "for $a in dataset Reviews for $b in dataset Reviews \
                where similarity-jaccard(word-tokens($a.summary), \
                                         word-tokens($b.summary)) >= 0.1 \
                return $b.id";
    let body = format!("{{\"statement\": {}}}", json_string(join));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();

    // Read until at least one result row is on the wire — the 200 and
    // the stream are then committed.
    let mut received = Vec::new();
    let mut chunk = [0u8; 4096];
    while !String::from_utf8_lossy(&received).contains("{\"row\"") {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "stream ended before any row");
        received.extend_from_slice(&chunk[..n]);
    }

    // Cancel through the admin surface (the PR 9 route, mounted under
    // /admin) while the stream is live.
    let query_id = server
        .instance()
        .running_queries()
        .first()
        .expect("query still running")
        .query_id;
    let (status, _head, _body) =
        http(addr, "POST", &format!("/admin/queries/{query_id}/cancel"), "");
    assert_eq!(status, 200);

    // The stream must terminate with the in-band cancelled error line.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    received.extend_from_slice(&rest);
    let (status, _head, text) = parse_response(&received);
    assert_eq!(status, 200, "status line was already committed");
    let last = text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .expect("stream has a final line");
    let v = json::parse(last).unwrap();
    assert_eq!(
        v.field("error").field("code").as_str(),
        Some("cancelled"),
        "{text}"
    );
}
