//! The query scheduler end-to-end: pooled execution correctness, bounded
//! thread usage, admission control (queueing, fairness, typed rejects),
//! per-query memory budgets, and cancellation of queued queries.
//!
//! Contracts pinned here:
//!
//! 1. The pooled executor returns byte-identical results to the seed
//!    per-query-thread executor for the whole query-class matrix (scan,
//!    index select, index-nested-loop join, three-stage join).
//! 2. Thread usage under saturation is bounded by `workers` + the client
//!    threads + a small constant — not client × operators × partitions.
//! 3. Admission failures are *typed*: `AdmissionTimeout` for a deadline
//!    expiring in the queue, `QueueFull` for arrivals past `queue_depth`,
//!    `MemoryBudgetExceeded` for budget trips — never panics or hangs.
//! 4. A query cancelled while still queued releases its queue slot and is
//!    recorded as `cancelled` (not `failed`) in the telemetry registry.

use asterix_core::{
    CoreError, Instance, InstanceConfig, QueryOptions, SchedulerConfig,
};
use asterix_datagen::amazon_reviews;
use asterix_hyracks::ExecError;
use std::time::{Duration, Instant};

const RECORDS: usize = 600;

fn instance_with(sched: SchedulerConfig) -> Instance {
    let mut cfg = InstanceConfig::with_partitions(2);
    cfg.scheduler = sched;
    let db = Instance::new(cfg);
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(RECORDS, 7)).unwrap();
    db.create_index("ARevs", "smix", "summary", asterix_adm::IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", asterix_adm::IndexKind::NGram(2))
        .unwrap();
    db.flush("ARevs").unwrap();
    db
}

/// The query-class matrix: scan, index select (jaccard + edit distance),
/// index-nested-loop join, and the three-stage (no-index) join fallback.
fn matrix() -> Vec<(&'static str, String)> {
    vec![
        (
            "scan",
            "for $t in dataset ARevs where $t.id < 50 return $t.id".to_string(),
        ),
        (
            "count",
            "count( for $t in dataset ARevs where $t.id < 100 return $t.id );".to_string(),
        ),
        (
            "jaccard-select",
            "for $t in dataset ARevs \
             where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.3 \
             return $t.id"
                .to_string(),
        ),
        (
            "ed-select",
            "for $t in dataset ARevs \
             where edit-distance($t.reviewerName, 'gubimo') <= 2 \
             return $t.id"
                .to_string(),
        ),
        (
            "jaccard-join",
            "for $o in dataset ARevs for $i in dataset ARevs \
             where $o.id < 30 \
               and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
               and $o.id < $i.id \
             return {\"o\": $o.id, \"i\": $i.id}"
                .to_string(),
        ),
    ]
}

#[test]
fn pooled_results_match_unbounded_for_query_class_matrix() {
    let pooled = instance_with(SchedulerConfig::default());
    let seed = instance_with(SchedulerConfig::disabled());
    assert!(pooled.scheduler().is_some());
    assert!(seed.scheduler().is_none());
    // Neither query carries an order-by, so row order is not part of the
    // contract — the pooled executor may interleave partition outputs
    // differently run to run. Compare as multisets.
    let sorted = |rows: &[asterix_adm::Value]| {
        let mut keyed: Vec<String> = rows.iter().map(asterix_adm::json::to_string).collect();
        keyed.sort();
        keyed
    };
    for (name, q) in matrix() {
        let a = pooled.query(&q).unwrap_or_else(|e| panic!("{name} pooled: {e}"));
        let b = seed.query(&q).unwrap_or_else(|e| panic!("{name} seed: {e}"));
        assert_eq!(
            sorted(&a.rows),
            sorted(&b.rows),
            "{name}: pooled and seed rows must agree"
        );
        assert_eq!(
            a.plan.rewrites, b.plan.rewrites,
            "{name}: both executors must run the same plan"
        );
    }
}

/// Current OS thread count (`/proc/self/status`, linux-only; 0 elsewhere).
fn current_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn saturated_pooled_instance_keeps_thread_count_bounded() {
    if current_threads() == 0 {
        return; // /proc/self/status unavailable on this platform
    }
    const CLIENTS: usize = 12;
    let db = instance_with(SchedulerConfig {
        queue_depth: 64,
        ..SchedulerConfig::default()
    });
    let queries = matrix();
    let base = current_threads();
    let peak = std::sync::atomic::AtomicU64::new(base);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            use std::sync::atomic::Ordering;
            while !done.load(Ordering::Relaxed) {
                peak.fetch_max(current_threads(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::scope(|inner| {
            for _ in 0..CLIENTS {
                inner.spawn(|| {
                    for (name, q) in &queries {
                        db.query(q).unwrap_or_else(|e| panic!("{name}: {e}"));
                    }
                });
            }
        });
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let peak = peak.load(std::sync::atomic::Ordering::Relaxed);
    // Budget: the client threads themselves + the sampler + slack. The
    // seed executor would add ~operators × partitions threads *per
    // concurrent query* on top; the pool must not.
    let budget = base + CLIENTS as u64 + 6;
    assert!(
        peak <= budget,
        "peak {peak} threads > bound {budget} (base {base}, {CLIENTS} clients)"
    );
    let snap = db.metrics().gauges.scheduler;
    assert!(snap.enabled);
    assert_eq!(snap.rejected_queue_full + snap.rejected_timeout, 0);
    assert!(snap.admitted >= (CLIENTS * queries.len()) as u64);
}

/// A UDF that sleeps per evaluated row — the occupier for admission tests.
fn slow_instance(sched: SchedulerConfig) -> Instance {
    let mut cfg = InstanceConfig::with_partitions(2);
    cfg.scheduler = sched;
    let mut db = Instance::new(cfg);
    db.register_udf("snail-sim", |_args| {
        std::thread::sleep(Duration::from_millis(10));
        Ok(asterix_adm::Value::double(0.0))
    });
    db.create_dataset("D", "id").unwrap();
    for i in 0..40i64 {
        db.insert("D", asterix_adm::record! {"id" => i, "name" => "row"})
            .unwrap();
    }
    db
}

const OCCUPIER_Q: &str =
    "for $t in dataset D where snail-sim($t.name, 'x') >= 1.0 return $t.id";

/// Run `f` while a slow occupier query holds the single execution slot.
fn with_occupier<R>(db: &Instance, f: impl FnOnce() -> R) -> R {
    std::thread::scope(|s| {
        let occupier = s.spawn(|| db.query(OCCUPIER_Q).unwrap());
        let sched = db.scheduler().expect("scheduler on");
        let started = Instant::now();
        while sched.inflight() == 0 {
            assert!(started.elapsed() < Duration::from_secs(10), "occupier never started");
            std::thread::yield_now();
        }
        let out = f();
        occupier.join().expect("occupier thread");
        out
    })
}

#[test]
fn deadline_expiring_in_queue_is_typed_admission_timeout() {
    let db = slow_instance(SchedulerConfig {
        max_concurrent_queries: 1,
        ..SchedulerConfig::default()
    });
    let err = with_occupier(&db, || {
        db.query_with(
            "for $t in dataset D where $t.id < 5 return $t.id",
            &QueryOptions {
                timeout: Some(Duration::from_millis(40)),
                ..QueryOptions::default()
            },
        )
        .expect_err("the slot is occupied for far longer than 40 ms")
    });
    match err {
        CoreError::Execution(ExecError::AdmissionTimeout(waited)) => {
            assert!(waited >= Duration::from_millis(40), "{waited:?}");
        }
        other => panic!("expected AdmissionTimeout, got {other:?}"),
    }
    let snap = db.metrics().gauges.scheduler;
    assert_eq!(snap.rejected_timeout, 1);
    assert_eq!(snap.queued, 0, "the rejected query must leave the queue");
    // Recorded as a timeout, not a failure.
    let m = db.metrics();
    assert_eq!(m.classes.iter().map(|c| c.timeouts).sum::<u64>(), 1);
    assert_eq!(m.classes.iter().map(|c| c.failed).sum::<u64>(), 0);
}

#[test]
fn arrival_past_queue_depth_is_typed_queue_full() {
    let db = slow_instance(SchedulerConfig {
        max_concurrent_queries: 1,
        queue_depth: 0,
        ..SchedulerConfig::default()
    });
    let err = with_occupier(&db, || {
        db.query("for $t in dataset D where $t.id < 5 return $t.id")
            .expect_err("zero queue depth must reject immediately")
    });
    match err {
        CoreError::Execution(ExecError::QueueFull {
            queued: 0,
            queue_depth: 0,
        }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(db.metrics().gauges.scheduler.rejected_queue_full, 1);
    // The instance keeps serving queries once the slot frees.
    let ok = db.query("for $t in dataset D where $t.id < 5 return $t.id").unwrap();
    assert_eq!(ok.rows.len(), 5);
}

#[test]
fn cancel_while_queued_releases_slot_and_records_cancelled() {
    let db = slow_instance(SchedulerConfig {
        max_concurrent_queries: 1,
        ..SchedulerConfig::default()
    });
    let err = with_occupier(&db, || {
        std::thread::scope(|s| {
            let waiter =
                s.spawn(|| db.query("for $t in dataset D where $t.id < 5 return $t.id"));
            let sched = db.scheduler().expect("scheduler on");
            let started = Instant::now();
            while sched.queued() == 0 {
                assert!(started.elapsed() < Duration::from_secs(10), "waiter never queued");
                std::thread::yield_now();
            }
            // The queued query installed its token last, so it is the
            // context's active cancel target.
            assert!(db.cluster().cancel_active());
            waiter.join().expect("waiter thread").expect_err("cancelled in queue")
        })
    });
    assert!(matches!(err, CoreError::Cancelled), "{err:?}");
    let snap = db.metrics().gauges.scheduler;
    assert_eq!(snap.cancelled_while_queued, 1);
    assert_eq!(snap.queued, 0, "cancelled ticket must leave the queue");
    // Telemetry records the outcome as cancelled, not failed.
    let m = db.metrics();
    assert_eq!(m.classes.iter().map(|c| c.cancelled).sum::<u64>(), 1);
    assert_eq!(m.classes.iter().map(|c| c.failed).sum::<u64>(), 0);
    // The released slot is reusable.
    let ok = db.query("for $t in dataset D where $t.id < 5 return $t.id").unwrap();
    assert_eq!(ok.rows.len(), 5);
}

#[test]
fn class_fairness_under_single_slot_contention() {
    // One execution slot, heavy scan pressure plus index-select arrivals:
    // round-robin admission must let both classes through — every query
    // completes and both classes show completions in telemetry.
    let db = instance_with(SchedulerConfig {
        max_concurrent_queries: 1,
        queue_depth: 64,
        ..SchedulerConfig::default()
    });
    let scan_q = "for $t in dataset ARevs where $t.id < 50 return $t.id";
    let sel_q = "for $t in dataset ARevs \
         where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.3 \
         return $t.id";
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..4 {
                    db.query(scan_q).unwrap();
                }
            });
        }
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..4 {
                    db.query(sel_q).unwrap();
                }
            });
        }
    });
    let m = db.metrics();
    let by_name = |n: &str| {
        m.classes
            .iter()
            .find(|c| c.class.name() == n)
            .map(|c| c.completed)
            .unwrap_or(0)
    };
    assert_eq!(by_name("scan"), 16);
    assert_eq!(by_name("index-select"), 8);
    let snap = m.gauges.scheduler;
    assert_eq!(snap.rejected_queue_full + snap.rejected_timeout, 0);
    assert!(snap.queued_total > 0, "contention must actually queue queries");
    assert_eq!(snap.inflight, 0);
    assert!(snap.queue_wait.count >= snap.admitted);
}

#[test]
fn memory_budget_exceeded_is_typed_not_a_panic() {
    let db = instance_with(SchedulerConfig {
        memory_budget_bytes: 1,
        ..SchedulerConfig::default()
    });
    let err = db
        .query("for $t in dataset ARevs return $t.id")
        .expect_err("a 1-byte budget cannot fit any frame");
    match err {
        CoreError::Execution(ExecError::MemoryBudgetExceeded { used, limit: 1 }) => {
            assert!(used > 1);
        }
        // A sibling partition may observe the cancellation first; both
        // are typed stops, never panics.
        CoreError::Cancelled => {}
        other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
    }
    // The instance survives; a fresh default-budget instance runs the
    // same query fine (checked by the parity test above).
    let again = db
        .query("for $t in dataset ARevs return $t.id")
        .expect_err("budget is per-query but configured per-instance");
    assert!(!matches!(again, CoreError::Timeout(_)), "{again:?}");
}

#[test]
fn queue_wait_histogram_lands_in_snapshot_json() {
    let db = slow_instance(SchedulerConfig {
        max_concurrent_queries: 1,
        ..SchedulerConfig::default()
    });
    with_occupier(&db, || {
        // One genuinely queued query so queue_wait has a nonzero sample.
        db.query("for $t in dataset D where $t.id < 5 return $t.id").unwrap()
    });
    let json = asterix_adm::json::to_string(&db.metrics_snapshot());
    for key in [
        "\"scheduler\"",
        "\"queue_wait_us\"",
        "\"admitted\"",
        "\"queued_total\"",
        "\"rejected_queue_full\"",
        "\"cancelled_while_queued\"",
        "\"utilization\"",
    ] {
        assert!(json.contains(key), "metrics JSON missing {key}");
    }
    let prom = db.metrics_prometheus();
    assert!(prom.contains("asterix_scheduler_enabled 1"));
    assert!(prom.contains("asterix_scheduler_admitted_total"));
    assert!(prom.contains("asterix_scheduler_queue_wait_us_count"));
    let snap = db.metrics().gauges.scheduler;
    assert!(snap.queued_total >= 1);
    assert!(snap.queue_wait.sum > 0, "queued query must record a nonzero wait");
}
