//! End-to-end integration: load synthetic paper-shaped datasets, run the
//! paper's query templates, and check that index-based and scan-based
//! plans agree on every answer (the fundamental soundness requirement
//! behind all of §6's comparisons).

use asterix_adm::IndexKind;
use asterix_algebricks::OptimizerConfig;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;

fn instance_with_reviews(n: usize, partitions: usize) -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(partitions));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(n, 77)).unwrap();
    db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
        .unwrap();
    db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
        .unwrap();
    db
}

fn no_index() -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        ..QueryOptions::default()
    }
}

#[test]
fn jaccard_selection_index_equals_scan() {
    let db = instance_with_reviews(600, 4);
    // Probe with actual summaries so results are non-trivial.
    let probes = [
        "great product value",
        "works as expected",
        "nice gift idea for the family",
    ];
    for probe in probes {
        for delta in [0.2, 0.5, 0.8] {
            let q = format!(
                r#"
                for $t in dataset ARevs
                where similarity-jaccard(word-tokens($t.summary),
                                         word-tokens('{probe}')) >= {delta}
                return $t.id
            "#
            );
            let with = db.query(&q).unwrap();
            let without = db.query_with(&q, &no_index()).unwrap();
            assert!(with.plan.used_rule("introduce-index-for-selection"));
            assert!(!without.plan.used_rule("introduce-index-for-selection"));
            assert_eq!(with.ids(), without.ids(), "delta={delta} probe={probe}");
        }
    }
}

#[test]
fn edit_distance_selection_index_equals_scan() {
    let db = instance_with_reviews(600, 4);
    // Take some real names as probes.
    let names = db
        .query("for $t in dataset ARevs where $t.id <= 5 return $t.reviewerName")
        .unwrap();
    for name in names.rows.iter().filter_map(|v| v.as_str()) {
        for k in [1, 2] {
            let q = format!(
                r#"
                for $t in dataset ARevs
                where edit-distance($t.reviewerName, '{name}') <= {k}
                return $t.id
            "#
            );
            let with = db.query(&q).unwrap();
            let without = db.query_with(&q, &no_index()).unwrap();
            assert_eq!(with.ids(), without.ids(), "k={k} name={name}");
            // Candidates are a superset of answers when the index ran.
            if with.plan.used_rule("introduce-index-for-selection") {
                assert!(with.index_candidates() >= with.rows.len() as u64);
            }
        }
    }
}

#[test]
fn candidate_ratio_shrinks_with_threshold_table6() {
    let db = instance_with_reviews(800, 4);
    let probe = "great product value works well";
    let mut candidate_counts = Vec::new();
    for delta in [0.2, 0.5, 0.8] {
        let q = format!(
            r#"
            for $t in dataset ARevs
            where similarity-jaccard(word-tokens($t.summary),
                                     word-tokens('{probe}')) >= {delta}
            return $t.id
        "#
        );
        let r = db.query(&q).unwrap();
        candidate_counts.push((delta, r.index_candidates(), r.rows.len() as u64));
    }
    // Table 6's trend: candidate set size decreases as δ increases.
    assert!(
        candidate_counts[0].1 >= candidate_counts[1].1
            && candidate_counts[1].1 >= candidate_counts[2].1,
        "{candidate_counts:?}"
    );
    // And candidates always cover the answers.
    for (d, c, b) in candidate_counts {
        assert!(c >= b, "delta={d}: candidates {c} < answers {b}");
    }
}

#[test]
fn count_template_fig21() {
    let db = instance_with_reviews(300, 2);
    let r = db
        .query(
            r#"
        count( for $o in dataset ARevs
               where similarity-jaccard(word-tokens($o.summary),
                                        word-tokens('great product')) >= 0.2
               return {"oid": $o.id, "v": $o.summary} );
    "#,
        )
        .unwrap();
    let direct = db
        .query(
            r#"
        for $o in dataset ARevs
        where similarity-jaccard(word-tokens($o.summary),
                                 word-tokens('great product')) >= 0.2
        return $o.id
    "#,
        )
        .unwrap();
    assert_eq!(r.count(), Some(direct.rows.len() as i64));
}

#[test]
fn exact_match_baseline_via_btree() {
    let db = instance_with_reviews(300, 2);
    db.create_index("ARevs", "bt_name", "reviewerName", IndexKind::BTree)
        .unwrap();
    let name = db
        .query("for $t in dataset ARevs where $t.id = 7 return $t.reviewerName")
        .unwrap()
        .rows[0]
        .clone();
    let name = name.as_str().unwrap().to_string();
    let q =
        format!("for $t in dataset ARevs where $t.reviewerName = '{name}' return $t.id");
    let with = db.query(&q).unwrap();
    let without = db.query_with(&q, &no_index()).unwrap();
    assert!(with.plan.used_rule("introduce-index-for-selection"));
    assert_eq!(with.ids(), without.ids());
    assert!(!with.ids().is_empty());
}

#[test]
fn updates_are_visible_to_similarity_queries() {
    let db = instance_with_reviews(100, 2);
    // Overwrite record 3's summary and re-query through the index.
    db.insert(
        "ARevs",
        asterix_adm::record! {"id" => 3i64, "reviewerName" => "zz",
                              "summary" => "entirely unique xylophone zebra"},
    )
    .unwrap();
    let r = db
        .query(
            r#"
        for $t in dataset ARevs
        where similarity-jaccard(word-tokens($t.summary),
                                 word-tokens('unique xylophone zebra entirely')) >= 0.9
        return $t.id
    "#,
        )
        .unwrap();
    assert_eq!(r.ids(), vec![3]);
}

#[test]
fn nested_field_similarity_twitter_shape() {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("Tweets", "id").unwrap();
    db.load("Tweets", asterix_datagen::tweets(300, 5)).unwrap();
    db.create_index("Tweets", "name_ngram", "user.name", IndexKind::NGram(2))
        .unwrap();
    let name = db
        .query("for $t in dataset Tweets where $t.id = 1 return $t.user.name")
        .unwrap()
        .rows[0]
        .as_str()
        .unwrap()
        .to_string();
    let q = format!(
        "for $t in dataset Tweets where edit-distance($t.user.name, '{name}') <= 1 return $t.id"
    );
    let with = db.query(&q).unwrap();
    assert!(with.plan.used_rule("introduce-index-for-selection"), "{:?}", with.plan.rewrites);
    let without = db.query_with(&q, &no_index()).unwrap();
    assert_eq!(with.ids(), without.ids());
    assert!(with.ids().contains(&1));
}
