//! Documentation gates: `docs/API.md` must cover every route the server
//! actually dispatches (and every mounted admin route), and no markdown
//! file in the repo may carry a broken relative link. CI runs these as
//! part of the server test target, so the reference cannot drift from
//! the router.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // tests/ targets run with the crate's manifest dir as cwd
    // (crates/server), two levels below the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// The admin routes mounted under `/admin/*`
/// (`asterix_core::admin_response`'s dispatch table), spelled as they
/// must appear in the API reference.
const ADMIN_ROUTES: &[&str] = &[
    "/admin/health",
    "/admin/metrics",
    "/admin/metrics.json",
    "/admin/queries",
    "/admin/queries/<id>/cancel",
    "/admin/lsm",
    "/admin/slow",
    "/admin/trace/recovery",
    "/admin/trace/<id>",
];

#[test]
fn api_reference_covers_every_route() {
    let api = fs::read_to_string(repo_root().join("docs/API.md")).expect("docs/API.md exists");
    for (method, path, _summary) in asterix_server::ROUTES {
        let line = api
            .lines()
            .find(|l| l.contains(path) && (l.contains(method) || *method == "*"));
        assert!(
            line.is_some(),
            "docs/API.md does not document `{method} {path}`"
        );
    }
    for path in ADMIN_ROUTES {
        assert!(
            api.contains(path),
            "docs/API.md does not document admin route `{path}`"
        );
    }
    // The error-mapping table must cover every machine-readable code.
    for code in [
        "parse_error",
        "translate_error",
        "schema_error",
        "queue_full",
        "admission_timeout",
        "memory_budget_exceeded",
        "execution_error",
        "timeout",
        "cancelled",
        "io_error",
        "feed_saturated",
    ] {
        assert!(
            api.contains(code),
            "docs/API.md error table is missing `{code}`"
        );
    }
}

#[test]
fn markdown_relative_links_resolve() {
    let root = repo_root();
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in [root.clone(), root.join("docs")] {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            // SNIPPETS/PAPERS/PAPER/ISSUE are imported reference
            // material whose links point into their source repos, not
            // part of this repo's docs.
            let name = entry.file_name();
            if matches!(
                name.to_str(),
                Some("SNIPPETS.md" | "PAPERS.md" | "PAPER.md" | "ISSUE.md")
            ) {
                continue;
            }
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    assert!(
        files.iter().any(|f| f.ends_with("docs/API.md")),
        "docs/API.md missing"
    );

    let mut broken = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).unwrap();
        let base = file.parent().unwrap();
        for target in extract_links(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            if !base.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken markdown links:\n{}", broken.join("\n"));
}

/// Every `](target)` markdown link target in `text`.
fn extract_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                let target = &text[i + 2..i + 2 + end];
                // Ignore images with titles: take the part before a space.
                links.push(target.split_whitespace().next().unwrap_or("").to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    links
}
