//! Query deadlines and external cancellation at the engine level.
//!
//! A genuinely expensive query (a scan-based similarity self-join) is run
//! with a small [`QueryOptions::timeout`]; the contract is:
//!
//! 1. the query fails with exactly [`CoreError::Timeout`] (not a panic,
//!    not a hang, not a partial Ok),
//! 2. the failure arrives within a bounded wall-clock window — the
//!    cooperative cancellation poll keeps unwind latency small,
//! 3. the instance stays fully usable afterwards: counters are
//!    consistent and the next query succeeds.

use asterix_algebricks::OptimizerConfig;
use asterix_core::{CoreError, Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RECORDS: usize = 500;

fn instance() -> Instance {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id").unwrap();
    db.load("ARevs", amazon_reviews(RECORDS, 77)).unwrap();
    db
}

/// A similarity self-join with no index available: the optimizer is
/// forced onto the scan-based nested-loop path, quadratic in the dataset
/// — far slower than the timeouts used below.
fn slow_query() -> &'static str {
    r#"
    for $a in dataset ARevs
    for $b in dataset ARevs
    where edit-distance($a.reviewerName, $b.reviewerName) <= 2
      and $a.id < $b.id
    return { "a": $a.id, "b": $b.id }
    "#
}

fn scan_only(timeout: Option<Duration>) -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        timeout,
        ..QueryOptions::default()
    }
}

#[test]
fn deadline_produces_typed_timeout_within_bounded_wallclock() {
    let db = instance();
    let budget = Duration::from_millis(100);
    let started = Instant::now();
    let err = db
        .query_with(slow_query(), &scan_only(Some(budget)))
        .expect_err("the self-join cannot finish inside 100 ms");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, CoreError::Timeout(d) if d == budget),
        "expected CoreError::Timeout({budget:?}), got {err:?}"
    );
    // Bounded unwind: generous CI margin, but far below the minutes the
    // full join would take — proving cancellation actually interrupted it.
    assert!(
        elapsed < Duration::from_secs(30),
        "timeout took {elapsed:?} to surface"
    );

    // The instance is not poisoned: counters agree and queries still run.
    assert_eq!(db.count_records("ARevs").unwrap(), RECORDS as u64);
    let ok = db
        .query("for $t in dataset ARevs where $t.id < 5 return $t.id")
        .unwrap();
    assert_eq!(ok.rows.len(), 5);
}

#[test]
fn generous_deadline_does_not_fire() {
    let db = instance();
    let res = db
        .query_with(
            "for $t in dataset ARevs where $t.id < 10 return $t.id",
            &scan_only(Some(Duration::from_secs(120))),
        )
        .unwrap();
    assert_eq!(res.rows.len(), 10);
}

#[test]
fn external_cancel_produces_typed_cancelled_error() {
    let db = Arc::new(instance());
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || db.query_with(slow_query(), &scan_only(None)))
    };
    // Wait for the job to install its cancel token, then trip it. The
    // retry loop covers the startup race (translate/optimize before the
    // job begins executing).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if db.cluster().cancel_active() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query never started within 30 s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let err = worker
        .join()
        .expect("query thread must not panic")
        .expect_err("cancelled query must fail");
    assert!(
        matches!(err, CoreError::Cancelled),
        "expected CoreError::Cancelled, got {err:?}"
    );
    // Cluster remains usable.
    let ok = db
        .query("for $t in dataset ARevs where $t.id < 3 return $t.id")
        .unwrap();
    assert_eq!(ok.rows.len(), 3);
}
