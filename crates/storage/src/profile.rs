//! Per-query storage counters (the profiling substrate of §8's metrics).
//!
//! The buffer cache, LSM trees, and indexes are shared between every
//! query running on an instance, so their global counters
//! ([`crate::cache::CacheStats`], [`crate::lsm::LsmTree::num_flushes`])
//! cannot attribute work to one query: two concurrent queries clobber
//! each other the moment one calls `reset_stats()`. This module provides
//! the per-query alternative: a [`QueryCounters`] handle of atomics that
//! the executor *scopes* onto every operator thread of one job
//! ([`QueryCounters::enter`]), so every storage-layer event that happens
//! on those threads — and only those — is attributed to that query.
//!
//! Hook sites (all behind the thread-local, so unprofiled queries pay one
//! TLS read per event):
//!
//! * [`crate::cache::BufferCache::get`] / `get_decoded` — hits, misses,
//!   evictions,
//! * [`crate::index::InvertedIndex::postings`] — inverted-list elements
//!   read (Fig 14's list-scan volume; *cache hits do not re-count* — only
//!   actual LSM scans add here) plus postings-cache hits/misses,
//! * [`crate::index::InvertedIndex::t_occurrence`] — candidates emitted
//!   by the T-occurrence filter (Table 6's column C),
//! * [`crate::index::PrimaryIndex::get`] — primary-index lookups (§4.1.1),
//! * [`crate::lsm::LsmTree::get`] — disk components searched per lookup.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live per-query counters. Create one per profiled query with
/// [`QueryCounters::handle`], scope it onto each worker thread with
/// [`QueryCounters::enter`], and read it afterwards with
/// [`QueryCounters::snapshot`].
#[derive(Debug, Default)]
pub struct QueryCounters {
    /// Buffer-cache page hits.
    pub cache_hits: AtomicU64,
    /// Buffer-cache page misses (disk reads).
    pub cache_misses: AtomicU64,
    /// Pages evicted from the buffer cache.
    pub cache_evictions: AtomicU64,
    /// Inverted-index postings elements scanned.
    pub inverted_elements_read: AtomicU64,
    /// Candidates produced by T-occurrence merging.
    pub toccurrence_candidates: AtomicU64,
    /// Primary-index point lookups performed.
    pub primary_lookups: AtomicU64,
    /// LSM components consulted across all searches.
    pub lsm_components_searched: AtomicU64,
    /// Postings served from the token postings cache.
    pub postings_cache_hits: AtomicU64,
    /// Postings recomputed on a postings-cache miss.
    pub postings_cache_misses: AtomicU64,
    /// Edit-distance checks answered by the Myers bit-parallel kernel.
    pub bitparallel_ed_calls: AtomicU64,
    /// Galloping searches issued by the T-occurrence set intersection.
    pub gallop_probes: AtomicU64,
    /// T-occurrence merges that fell back to the count-based ScanCount
    /// kernel (no full-intersection or skip-based shortcut applied).
    pub scancount_fallbacks: AtomicU64,
}

/// Immutable snapshot of a query's storage counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageProfile {
    /// Buffer-cache page hits attributed to this query.
    pub cache_hits: u64,
    /// Buffer-cache page misses (each one a simulated disk read).
    pub cache_misses: u64,
    /// Pages this query's misses evicted under capacity pressure.
    pub cache_evictions: u64,
    /// Total elements read from inverted lists (postings scanned).
    pub inverted_elements_read: u64,
    /// Candidates emitted by T-occurrence searches (Table 6's column C).
    pub toccurrence_candidates: u64,
    /// Primary-index point lookups (§4.1.1's sorted-pk search).
    pub primary_lookups: u64,
    /// LSM disk components consulted across all point lookups.
    pub lsm_components_searched: u64,
    /// Posting lists served from the per-index postings cache (no LSM
    /// scan, no fresh allocation — a shared `Arc<[Value]>` is handed out).
    pub postings_cache_hits: u64,
    /// Posting lists that had to be read out of the LSM tree and were then
    /// installed into the postings cache.
    pub postings_cache_misses: u64,
    /// Edit-distance checks answered by the Myers bit-parallel kernel
    /// instead of the scalar banded DP.
    pub bitparallel_ed_calls: u64,
    /// Galloping (exponential + binary) searches issued by the adaptive
    /// T-occurrence set intersection.
    pub gallop_probes: u64,
    /// T-occurrence merges that fell back to the count-based ScanCount
    /// kernel.
    pub scancount_fallbacks: u64,
}

impl StorageProfile {
    /// Hits / (hits + misses), 0.0 when no accesses occurred.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl QueryCounters {
    /// A fresh counter handle for one query.
    pub fn handle() -> Arc<QueryCounters> {
        Arc::new(QueryCounters::default())
    }

    /// Install these counters as the current thread's attribution target
    /// until the returned guard drops. Scopes nest: the previous target
    /// (if any) is restored on drop.
    pub fn enter(self: &Arc<Self>) -> CounterScope {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        CounterScope { prev }
    }

    /// Copy the live counters into an owned snapshot.
    pub fn snapshot(&self) -> StorageProfile {
        StorageProfile {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            inverted_elements_read: self.inverted_elements_read.load(Ordering::Relaxed),
            toccurrence_candidates: self.toccurrence_candidates.load(Ordering::Relaxed),
            primary_lookups: self.primary_lookups.load(Ordering::Relaxed),
            lsm_components_searched: self.lsm_components_searched.load(Ordering::Relaxed),
            postings_cache_hits: self.postings_cache_hits.load(Ordering::Relaxed),
            postings_cache_misses: self.postings_cache_misses.load(Ordering::Relaxed),
            bitparallel_ed_calls: self.bitparallel_ed_calls.load(Ordering::Relaxed),
            gallop_probes: self.gallop_probes.load(Ordering::Relaxed),
            scancount_fallbacks: self.scancount_fallbacks.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<QueryCounters>>> = const { RefCell::new(None) };
}

/// Guard returned by [`QueryCounters::enter`]; restores the previous
/// thread-local attribution target on drop.
pub struct CounterScope {
    prev: Option<Arc<QueryCounters>>,
}

impl Drop for CounterScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Record an event against the current thread's query, if any.
pub(crate) fn record(f: impl FnOnce(&QueryCounters)) {
    CURRENT.with(|c| {
        if let Some(q) = c.borrow().as_ref() {
            f(q);
        }
    });
}

/// Add `n` to a counter of the current query, if any.
pub(crate) fn add(field: fn(&QueryCounters) -> &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    record(|q| {
        field(q).fetch_add(n, Ordering::Relaxed);
    });
}

/// Attribute `n` bit-parallel edit-distance checks to the current query.
/// Public because the verify kernels live in the execution crate, outside
/// the storage layer's `pub(crate)` recording surface.
pub fn record_bitparallel_ed_calls(n: u64) {
    add(|q| &q.bitparallel_ed_calls, n);
}

/// Attribute `n` galloping intersection probes to the current query.
pub fn record_gallop_probes(n: u64) {
    add(|q| &q.gallop_probes, n);
}

/// Attribute `n` ScanCount fallbacks to the current query.
pub fn record_scancount_fallbacks(n: u64) {
    add(|q| &q.scancount_fallbacks, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_records_are_dropped() {
        // Must not panic or leak anywhere.
        add(|q| &q.cache_hits, 3);
    }

    #[test]
    fn scoped_records_attribute_to_the_entered_handle() {
        let a = QueryCounters::handle();
        {
            let _s = a.enter();
            add(|q| &q.cache_hits, 2);
            add(|q| &q.cache_misses, 1);
        }
        // Outside the scope nothing is attributed.
        add(|q| &q.cache_hits, 50);
        let s = a.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = QueryCounters::handle();
        let inner = QueryCounters::handle();
        let _o = outer.enter();
        add(|q| &q.primary_lookups, 1);
        {
            let _i = inner.enter();
            add(|q| &q.primary_lookups, 10);
        }
        add(|q| &q.primary_lookups, 1);
        assert_eq!(outer.snapshot().primary_lookups, 2);
        assert_eq!(inner.snapshot().primary_lookups, 10);
    }

    #[test]
    fn threads_attribute_independently() {
        let a = QueryCounters::handle();
        let b = QueryCounters::handle();
        std::thread::scope(|s| {
            for (h, n) in [(&a, 5u64), (&b, 7u64)] {
                s.spawn(move || {
                    let _g = h.enter();
                    for _ in 0..n {
                        add(|q| &q.cache_hits, 1);
                    }
                });
            }
        });
        assert_eq!(a.snapshot().cache_hits, 5);
        assert_eq!(b.snapshot().cache_hits, 7);
    }
}
