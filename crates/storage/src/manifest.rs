//! The per-partition manifest: the single source of truth for which
//! sealed component files are live after a restart.
//!
//! One `MANIFEST` file lives at the root of each partition's data
//! directory. It records, per dataset, the primary-key field, every
//! secondary-index definition, and — per index — the ordered list of
//! component files (newest first) with their expected page counts, plus
//! the partition's `flushed_lsn` (the WAL position already captured by
//! the listed components).
//!
//! ## Commit protocol
//!
//! A manifest commit is a whole-file rewrite with an atomic rename:
//!
//! 1. serialize to `MANIFEST.tmp` (checksummed header + ADM JSON body),
//! 2. fsync `MANIFEST.tmp`,
//! 3. `rename(MANIFEST.tmp, MANIFEST)` — atomic on POSIX,
//! 4. fsync the directory so the rename itself is durable.
//!
//! A crash before step 3 leaves the previous manifest intact; a crash
//! after it leaves the new one. There is no in-between, which is what
//! makes flush/merge commits and component reclamation safe: obsolete
//! files are deleted only *after* the manifest that stops referencing
//! them has been renamed into place.
//!
//! ## Format
//!
//! ```text
//! ASTERIX-MANIFEST v1 crc=<hex8> len=<bytes>\n
//! { ...ADM JSON... }
//! ```
//!
//! The header's CRC32 covers the JSON body. Human-readable on purpose —
//! `cat MANIFEST` is a debugging tool.

use crate::disk::{crc32, Disk, FileId};
use crate::fault::{IoError, IoOp};
use asterix_adm::{json, IndexDef, IndexKind, Value};
use std::path::Path;

/// Manifest file name within a partition's data directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const HEADER_MAGIC: &str = "ASTERIX-MANIFEST v1";

/// One sealed component file referenced by the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestComponent {
    /// The component's page file.
    pub file: FileId,
    /// Expected page count — recovery rejects a file that lost pages
    /// (e.g. to torn-tail truncation of an unsealed copy).
    pub pages: u32,
}

/// One secondary index: its definition plus live components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestIndex {
    /// The index definition (name, field path, kind).
    pub def: IndexDef,
    /// Live components, newest first (LSM search order).
    pub components: Vec<ManifestComponent>,
}

/// One dataset within a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestDataset {
    /// Dataset name.
    pub name: String,
    /// Primary-key field name.
    pub primary_key: String,
    /// Primary-index components, newest first.
    pub primary: Vec<ManifestComponent>,
    /// Secondary indexes (definition + components).
    pub indexes: Vec<ManifestIndex>,
}

/// The durable state of one partition: datasets, indexes, components,
/// and the WAL position they capture.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Highest WAL LSN whose effects are fully contained in the listed
    /// components — recovery replays only records past this.
    pub flushed_lsn: u64,
    /// Every dataset stored in this partition.
    pub datasets: Vec<ManifestDataset>,
}

fn kind_to_str(kind: IndexKind) -> String {
    kind.name()
}

fn kind_from_str(s: &str) -> Result<IndexKind, IoError> {
    if s == "btree" {
        return Ok(IndexKind::BTree);
    }
    if s == "keyword" {
        return Ok(IndexKind::Keyword);
    }
    if let Some(n) = s.strip_prefix("ngram(").and_then(|r| r.strip_suffix(')')) {
        if let Ok(n) = n.parse::<usize>() {
            return Ok(IndexKind::NGram(n));
        }
    }
    Err(IoError::corruption(format!("manifest: unknown index kind '{s}'")))
}

fn components_to_value(comps: &[ManifestComponent]) -> Value {
    Value::OrderedList(
        comps
            .iter()
            .map(|c| {
                Value::record(vec![
                    ("file".into(), Value::Int64(c.file.0 as i64)),
                    ("pages".into(), Value::Int64(c.pages as i64)),
                ])
            })
            .collect(),
    )
}

fn components_from_value(v: &Value) -> Result<Vec<ManifestComponent>, IoError> {
    let list = v
        .as_list()
        .ok_or_else(|| IoError::corruption("manifest: components is not a list"))?;
    list.iter()
        .map(|c| {
            let file = c
                .field("file")
                .as_i64()
                .ok_or_else(|| IoError::corruption("manifest: component lacks file id"))?;
            let pages = c
                .field("pages")
                .as_i64()
                .ok_or_else(|| IoError::corruption("manifest: component lacks page count"))?;
            Ok(ManifestComponent {
                file: FileId(file as u64),
                pages: pages as u32,
            })
        })
        .collect()
}

fn req_str(v: &Value, field: &str) -> Result<String, IoError> {
    v.field(field)
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| IoError::corruption(format!("manifest: missing string field '{field}'")))
}

impl Manifest {
    fn to_value(&self) -> Value {
        Value::record(vec![
            ("flushed_lsn".into(), Value::Int64(self.flushed_lsn as i64)),
            (
                "datasets".into(),
                Value::OrderedList(
                    self.datasets
                        .iter()
                        .map(|ds| {
                            Value::record(vec![
                                ("name".into(), Value::from(ds.name.as_str())),
                                (
                                    "primary_key".into(),
                                    Value::from(ds.primary_key.as_str()),
                                ),
                                ("primary".into(), components_to_value(&ds.primary)),
                                (
                                    "indexes".into(),
                                    Value::OrderedList(
                                        ds.indexes
                                            .iter()
                                            .map(|ix| {
                                                Value::record(vec![
                                                    (
                                                        "name".into(),
                                                        Value::from(ix.def.name.as_str()),
                                                    ),
                                                    (
                                                        "field".into(),
                                                        Value::from(ix.def.field.as_str()),
                                                    ),
                                                    (
                                                        "kind".into(),
                                                        Value::from(
                                                            kind_to_str(ix.def.kind).as_str(),
                                                        ),
                                                    ),
                                                    (
                                                        "components".into(),
                                                        components_to_value(&ix.components),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Manifest, IoError> {
        let flushed_lsn = v
            .field("flushed_lsn")
            .as_i64()
            .ok_or_else(|| IoError::corruption("manifest: missing flushed_lsn"))?
            as u64;
        let datasets = v
            .field("datasets")
            .as_list()
            .ok_or_else(|| IoError::corruption("manifest: missing datasets"))?
            .iter()
            .map(|ds| {
                let indexes = ds
                    .field("indexes")
                    .as_list()
                    .ok_or_else(|| IoError::corruption("manifest: missing indexes"))?
                    .iter()
                    .map(|ix| {
                        Ok(ManifestIndex {
                            def: IndexDef {
                                name: req_str(ix, "name")?,
                                field: req_str(ix, "field")?,
                                kind: kind_from_str(&req_str(ix, "kind")?)?,
                            },
                            components: components_from_value(ix.field("components"))?,
                        })
                    })
                    .collect::<Result<Vec<_>, IoError>>()?;
                Ok(ManifestDataset {
                    name: req_str(ds, "name")?,
                    primary_key: req_str(ds, "primary_key")?,
                    primary: components_from_value(ds.field("primary"))?,
                    indexes,
                })
            })
            .collect::<Result<Vec<_>, IoError>>()?;
        Ok(Manifest {
            flushed_lsn,
            datasets,
        })
    }

    /// Every component file the manifest references, across all datasets
    /// and indexes (recovery's orphan sweep deletes what is on disk but
    /// not in this set).
    pub fn referenced_files(&self) -> Vec<FileId> {
        let mut out = Vec::new();
        for ds in &self.datasets {
            out.extend(ds.primary.iter().map(|c| c.file));
            for ix in &ds.indexes {
                out.extend(ix.components.iter().map(|c| c.file));
            }
        }
        out
    }

    /// Atomically replace the partition's manifest (write tmp, fsync,
    /// rename, fsync dir). `disk` is consulted for
    /// [`IoOp::ManifestCommit`] fault injection before any byte is
    /// written.
    pub fn commit(&self, dir: &Path, disk: &Disk) -> Result<(), IoError> {
        disk.fault_check(IoOp::ManifestCommit, None)?;
        let body = json::to_string(&self.to_value());
        let header = format!(
            "{HEADER_MAGIC} crc={:08x} len={}\n",
            crc32(body.as_bytes()),
            body.len()
        );
        let tmp = dir.join(MANIFEST_TMP);
        let mut contents = header.into_bytes();
        contents.extend_from_slice(body.as_bytes());
        std::fs::write(&tmp, &contents)
            .map_err(|e| IoError::permanent(format!("write manifest tmp: {e}")))?;
        let f = std::fs::File::open(&tmp)
            .map_err(|e| IoError::permanent(format!("open manifest tmp: {e}")))?;
        f.sync_all()
            .map_err(|e| IoError::permanent(format!("fsync manifest tmp: {e}")))?;
        crate::fault::crash_point("manifest.rename");
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))
            .map_err(|e| IoError::permanent(format!("rename manifest: {e}")))?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all(); // best-effort directory fsync
        }
        Ok(())
    }

    /// Load the partition's manifest. `Ok(None)` when none exists (fresh
    /// directory); a typed corruption error when the file is damaged —
    /// the commit protocol never leaves a torn manifest, so damage means
    /// real corruption, not a crash artifact. A leftover `MANIFEST.tmp`
    /// (crash between steps 2 and 3) is removed.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, IoError> {
        let _ = std::fs::remove_file(dir.join(MANIFEST_TMP));
        let path = dir.join(MANIFEST_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(IoError::permanent(format!("read manifest: {e}"))),
        };
        let raw = String::from_utf8(bytes)
            .map_err(|_| IoError::corruption("manifest: not valid UTF-8"))?;
        let Some((header, body)) = raw.split_once('\n') else {
            return Err(IoError::corruption("manifest: missing header line"));
        };
        let rest = header
            .strip_prefix(HEADER_MAGIC)
            .ok_or_else(|| IoError::corruption("manifest: bad magic"))?;
        let mut crc = None;
        let mut len = None;
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("crc=") {
                crc = u32::from_str_radix(v, 16).ok();
            } else if let Some(v) = tok.strip_prefix("len=") {
                len = v.parse::<usize>().ok();
            }
        }
        let (Some(crc), Some(len)) = (crc, len) else {
            return Err(IoError::corruption("manifest: malformed header"));
        };
        if body.len() != len {
            return Err(IoError::corruption(format!(
                "manifest: body length {} != declared {len}",
                body.len()
            )));
        }
        if crc32(body.as_bytes()) != crc {
            return Err(IoError::corruption("manifest: body checksum mismatch"));
        }
        let value = json::parse(body)
            .map_err(|e| IoError::corruption(format!("manifest: unparseable body: {e}")))?;
        Ok(Some(Self::from_value(&value)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asterix_manifest_test_{}_{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            flushed_lsn: 42,
            datasets: vec![ManifestDataset {
                name: "ARevs".into(),
                primary_key: "id".into(),
                primary: vec![
                    ManifestComponent {
                        file: FileId(7),
                        pages: 3,
                    },
                    ManifestComponent {
                        file: FileId(2),
                        pages: 9,
                    },
                ],
                indexes: vec![ManifestIndex {
                    def: IndexDef {
                        name: "smix".into(),
                        field: "summary".into(),
                        kind: IndexKind::NGram(3),
                    },
                    components: vec![ManifestComponent {
                        file: FileId(11),
                        pages: 1,
                    }],
                }],
            }],
        }
    }

    #[test]
    fn commit_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let disk = Disk::new();
        let m = sample();
        m.commit(&dir, &disk).unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, m);
        assert_eq!(
            loaded.referenced_files(),
            vec![FileId(7), FileId(2), FileId(11)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = tmpdir("missing");
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recommit_replaces_atomically() {
        let dir = tmpdir("recommit");
        let disk = Disk::new();
        sample().commit(&dir, &disk).unwrap();
        let mut m2 = sample();
        m2.flushed_lsn = 99;
        m2.datasets[0].primary.truncate(1);
        m2.commit(&dir, &disk).unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.flushed_lsn, 99);
        assert_eq!(loaded.datasets[0].primary.len(), 1);
        assert!(!dir.join(MANIFEST_TMP).exists(), "tmp must be renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_body_is_typed_corruption() {
        let dir = tmpdir("corrupt");
        let disk = Disk::new();
        sample().commit(&dir, &disk).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 3] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_is_cleaned_and_ignored() {
        let dir = tmpdir("tmpclean");
        let disk = Disk::new();
        sample().commit(&dir, &disk).unwrap();
        std::fs::write(dir.join(MANIFEST_TMP), b"torn garbage").unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, sample());
        assert!(!dir.join(MANIFEST_TMP).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_commit_fault_leaves_old_manifest() {
        use crate::fault::{FaultInjector, FaultRule};
        use std::sync::Arc;
        let dir = tmpdir("fault");
        let disk = Disk::new();
        sample().commit(&dir, &disk).unwrap();
        disk.set_fault_injector(Arc::new(FaultInjector::new(1).with_rule(FaultRule {
            op: IoOp::ManifestCommit,
            file: None,
            nth: 1,
            transient: false,
        })));
        let mut m2 = sample();
        m2.flushed_lsn = 1000;
        let err = m2.commit(&dir, &disk).unwrap_err();
        assert!(!err.transient);
        // The old manifest is untouched.
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.flushed_lsn, 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
