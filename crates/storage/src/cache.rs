//! LRU buffer cache over the disk (in-memory or file-backed).
//!
//! §4.1.1: "The primary keys are sorted prior to this search to increase
//! the chance of page cache hits in the buffer." The cache's hit/miss
//! counters are how the reproduction demonstrates that effect (ablation
//! bench `pk_sort`).

use crate::disk::{Disk, FileId};
use crate::fault::IoError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from resident pages.
    pub hits: u64,
    /// Requests that had to reach the disk.
    pub misses: u64,
    /// Pages removed under capacity pressure (byte and decoded maps).
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<(FileId, u32), (Bytes, u64)>,
    clock: u64,
    stats: CacheStats,
}

/// A decoded page: the parsed entries of one on-disk page, shared
/// read-only between operator threads (the analogue of keeping B+-tree
/// nodes pinned in memory instead of re-parsing page bytes on every
/// access).
pub type DecodedPage = std::sync::Arc<Vec<(asterix_adm::Value, crate::component::Entry)>>;

#[derive(Debug, Default)]
struct DecodedInner {
    map: HashMap<(FileId, u32), (DecodedPage, u64)>,
    clock: u64,
}

/// A shared LRU page cache. LRU is approximated with a logical clock per
/// entry; eviction removes the least recently touched page. Capacity is in
/// pages, mirroring AsterixDB's buffer cache of Table 2.
#[derive(Debug)]
pub struct BufferCache {
    disk: Arc<Disk>,
    capacity: usize,
    inner: Mutex<CacheInner>,
    decoded: Mutex<DecodedInner>,
}

impl BufferCache {
    /// A cache that is *not* registered with the disk for
    /// delete-invalidation (the caller may register it later via
    /// [`Disk::register_cache`]). Prefer [`BufferCache::shared`].
    pub fn new(disk: Arc<Disk>, capacity_pages: usize) -> Self {
        BufferCache {
            disk,
            capacity: capacity_pages.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
            }),
            decoded: Mutex::new(DecodedInner::default()),
        }
    }

    /// A shared cache, registered with the disk so [`Disk::delete`]
    /// invalidates its pages for the deleted file immediately.
    pub fn shared(disk: Arc<Disk>, capacity_pages: usize) -> Arc<Self> {
        let cache = Arc::new(Self::new(disk, capacity_pages));
        cache.disk.register_cache(&cache);
        cache
    }

    /// Fetch the decoded form of a page, parsing (through the byte-level
    /// cache, so I/O accounting still applies) only on a decoded-cache
    /// miss. `Ok(None)` means the page does not exist or failed to
    /// decode; `Err` is a disk fault.
    pub fn get_decoded<F>(
        &self,
        file: FileId,
        page_no: u32,
        decode: F,
    ) -> Result<Option<DecodedPage>, IoError>
    where
        F: FnOnce(&Bytes) -> Option<DecodedPage>,
    {
        {
            let mut d = self.decoded.lock();
            d.clock += 1;
            let clock = d.clock;
            if let Some((page, stamp)) = d.map.get_mut(&(file, page_no)) {
                *stamp = clock;
                // Count as a byte-cache hit too: the bytes are resident by
                // construction and the paper's metric is page-cache hits.
                self.inner.lock().stats.hits += 1;
                crate::profile::add(|q| &q.cache_hits, 1);
                return Ok(Some(page.clone()));
            }
        }
        let Some(bytes) = self.get(file, page_no)? else {
            return Ok(None);
        };
        let Some(decoded) = decode(&bytes) else {
            return Ok(None);
        };
        let mut d = self.decoded.lock();
        d.clock += 1;
        let clock = d.clock;
        if d.map.len() >= self.capacity {
            if let Some(victim) = d
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                d.map.remove(&victim);
                self.inner.lock().stats.evictions += 1;
                crate::profile::add(|q| &q.cache_evictions, 1);
            }
        }
        d.map.insert((file, page_no), (decoded.clone(), clock));
        Ok(Some(decoded))
    }

    /// The underlying disk (for fault injection and I/O counters).
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Fetch a page through the cache. `Ok(None)` means the page does not
    /// exist; `Err` is a disk fault (the miss is still counted — the
    /// request reached the disk).
    pub fn get(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let hit = if let Some((bytes, stamp)) = inner.map.get_mut(&(file, page_no)) {
                *stamp = clock;
                Some(bytes.clone())
            } else {
                None
            };
            if let Some(bytes) = hit {
                inner.stats.hits += 1;
                crate::profile::add(|q| &q.cache_hits, 1);
                return Ok(Some(bytes));
            }
            inner.stats.misses += 1;
            crate::profile::add(|q| &q.cache_misses, 1);
        }
        // Miss path: read outside the lock, then insert.
        let Some(bytes) = self.disk.read(file, page_no)? else {
            return Ok(None);
        };
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
                crate::profile::add(|q| &q.cache_evictions, 1);
            }
        }
        inner.map.insert((file, page_no), (bytes.clone(), clock));
        Ok(Some(bytes))
    }

    /// Invalidate all pages of a file (after component deletion).
    pub fn invalidate_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.map.retain(|(f, _), _| *f != file);
        drop(inner);
        let mut d = self.decoded.lock();
        d.map.retain(|(f, _), _| *f != file);
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Zero the hit/miss/eviction counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = CacheStats::default();
    }

    /// Number of byte-level pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: usize) -> (Arc<Disk>, BufferCache, FileId) {
        let disk = Arc::new(Disk::new());
        let file = disk.create().unwrap();
        for i in 0u8..10 {
            disk.append(file, Bytes::from(vec![i; 4])).unwrap();
        }
        let cache = BufferCache::new(disk.clone(), capacity);
        (disk, cache, file)
    }

    #[test]
    fn hit_after_miss() {
        let (_d, cache, f) = setup(4);
        assert!(cache.get(f, 0).unwrap().is_some());
        assert!(cache.get(f, 0).unwrap().is_some());
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_under_capacity_pressure() {
        let (_d, cache, f) = setup(2);
        cache.get(f, 0).unwrap();
        cache.get(f, 1).unwrap();
        cache.get(f, 2).unwrap(); // evicts page 0
        assert_eq!(cache.resident_pages(), 2);
        cache.get(f, 0).unwrap(); // miss again
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn lru_keeps_recent() {
        let (_d, cache, f) = setup(2);
        cache.get(f, 0).unwrap();
        cache.get(f, 1).unwrap();
        cache.get(f, 0).unwrap(); // touch 0 so 1 is LRU
        cache.get(f, 2).unwrap(); // evicts 1
        cache.get(f, 0).unwrap(); // must still be a hit
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn sequential_scan_vs_random_hits() {
        // Sorted (sequential, repeated) access yields a higher hit ratio
        // than scattered access under the same tiny cache — the §4.1.1
        // rationale in miniature.
        let (_d, cache, f) = setup(2);
        for _ in 0..3 {
            cache.get(f, 5).unwrap();
        }
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn invalidate_file_drops_pages() {
        let (_d, cache, f) = setup(4);
        cache.get(f, 0).unwrap();
        cache.invalidate_file(f);
        assert_eq!(cache.resident_pages(), 0);
    }

    #[test]
    fn missing_page_is_none() {
        let (_d, cache, f) = setup(4);
        assert!(cache.get(f, 99).unwrap().is_none());
    }

    #[test]
    fn evictions_are_counted_globally_and_per_query() {
        let (_d, cache, f) = setup(2);
        let q = crate::profile::QueryCounters::handle();
        let _scope = q.enter();
        cache.get(f, 0).unwrap();
        cache.get(f, 1).unwrap();
        cache.get(f, 2).unwrap(); // evicts one page
        cache.get(f, 3).unwrap(); // evicts another
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        let p = q.snapshot();
        assert_eq!(p.cache_misses, 4);
        assert_eq!(p.cache_hits, 0);
        assert_eq!(p.cache_evictions, 2);
    }
}
