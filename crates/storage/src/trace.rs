//! Per-query tracing spans.
//!
//! A [`Trace`] is created per query and accumulates [`SpanRecord`]s — one
//! per pipeline stage (`parse`, `translate`, `optimize`, `jobgen`,
//! `execute`) and one per operator partition run by the executor. Each
//! span carries its own id, its parent's id, and wall time, so the
//! compile/execute breakdown reconstructs as a tree even when many
//! queries trace concurrently.
//!
//! Nesting uses the same thread-local discipline as
//! [`crate::profile::CounterScope`]: opening a span installs `(trace,
//! span id)` as the current thread's position and the guard restores the
//! previous position on drop. Spans opened on *other* threads (executor
//! workers) cannot see that thread-local, so they take their parent
//! explicitly via [`Trace::span_with`] — the executor passes the
//! `execute` span's id into every worker.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One completed span. `start_us` is relative to the trace's creation, so
/// sibling spans order correctly and `[start_us, start_us + duration_us]`
/// nests inside the parent's interval.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span id, unique within the trace.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Static span name (e.g. `select.scan`).
    pub name: &'static str,
    /// Executor partition for operator spans; `None` for pipeline stages.
    pub partition: Option<usize>,
    /// Start offset in microseconds since the trace began.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
}

/// Span collector for one query. Cheap to share (`Arc`) across the
/// coordinator thread and every executor worker.
#[derive(Debug)]
pub struct Trace {
    t0: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

thread_local! {
    /// The innermost open span on this thread: which trace it belongs to
    /// and its id. Mirrors `profile::CURRENT`.
    static CURRENT_SPAN: RefCell<Option<(Arc<Trace>, u64)>> = const { RefCell::new(None) };
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Arc<Trace> {
        Arc::new(Trace {
            t0: Instant::now(),
            next_id: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// Open a span whose parent is the innermost span currently open on
    /// this thread *for this trace* (none ⇒ a root span). The returned
    /// guard closes the span and restores the previous position on drop.
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        let parent = CURRENT_SPAN.with(|c| {
            c.borrow()
                .as_ref()
                .filter(|(t, _)| Arc::ptr_eq(t, self))
                .map(|(_, id)| *id)
        });
        self.open(name, parent, None)
    }

    /// Open a span under an explicit parent — for threads (executor
    /// workers) where the parent lives on a different thread's stack.
    pub fn span_with(
        self: &Arc<Self>,
        name: &'static str,
        parent: Option<u64>,
        partition: Option<usize>,
    ) -> SpanGuard {
        self.open(name, parent, partition)
    }

    fn open(
        self: &Arc<Self>,
        name: &'static str,
        parent: Option<u64>,
        partition: Option<usize>,
    ) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SPAN.with(|c| c.borrow_mut().replace((self.clone(), id)));
        SpanGuard {
            trace: self.clone(),
            id,
            parent,
            name,
            partition,
            start_us: self.t0.elapsed().as_micros() as u64,
            started: Instant::now(),
            prev,
        }
    }

    /// All spans recorded so far, ordered by id (creation order). Call
    /// after the guards have dropped; still-open spans are absent.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.spans.lock().clone();
        spans.sort_by_key(|s| s.id);
        spans
    }
}

/// RAII guard for an open span; records the [`SpanRecord`] and restores
/// the thread's previous span position on drop.
pub struct SpanGuard {
    trace: Arc<Trace>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    partition: Option<usize>,
    start_us: u64,
    started: Instant,
    prev: Option<(Arc<Trace>, u64)>,
}

impl SpanGuard {
    /// This span's id — pass it to [`Trace::span_with`] to parent spans
    /// opened on other threads under this one.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration_us = self.started.elapsed().as_micros() as u64;
        self.trace.spans.lock().push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            partition: self.partition,
            start_us: self.start_us,
            duration_us,
        });
        CURRENT_SPAN.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let trace = Trace::new();
        {
            let root = trace.span("query");
            let root_id = root.id();
            {
                let parse = trace.span("parse");
                assert_eq!(parse.id(), root_id + 1);
            }
            let _opt = trace.span("optimize");
        }
        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "parse");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[2].name, "optimize");
        assert_eq!(spans[2].parent, Some(spans[0].id));
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let trace = Trace::new();
        let exec = trace.span("execute");
        let exec_id = exec.id();
        std::thread::scope(|s| {
            for p in 0..3usize {
                let trace = trace.clone();
                s.spawn(move || {
                    let _op = trace.span_with("scan", Some(exec_id), Some(p));
                });
            }
        });
        drop(exec);
        let spans = trace.spans();
        assert_eq!(spans.len(), 4);
        let ops: Vec<_> = spans.iter().filter(|s| s.name == "scan").collect();
        assert_eq!(ops.len(), 3);
        for op in ops {
            assert_eq!(op.parent, Some(exec_id));
            assert!(op.partition.is_some());
        }
    }

    #[test]
    fn concurrent_traces_do_not_cross_parent() {
        // Two traces interleaved on the same thread: each span's parent
        // must come from its own trace, never the other's.
        let a = Trace::new();
        let b = Trace::new();
        let ra = a.span("query");
        let _rb = b.span("query");
        // Innermost current span belongs to `b`; a span on `a` must still
        // parent under `a`'s root... but the thread-local only tracks the
        // innermost position, so a fresh `a` span sees no `a` parent and
        // becomes a root. What matters is it NEVER claims `b`'s id.
        let sa = a.span("parse");
        assert_eq!(sa.id(), ra.id() + 1);
        drop(sa);
        let spans_a = a.spans();
        assert_eq!(spans_a[0].parent, None);
        assert!(b.spans().is_empty()); // b's root still open
    }

    #[test]
    fn guard_restores_previous_position() {
        let trace = Trace::new();
        let root = trace.span("query");
        {
            let _inner = trace.span("parse");
        }
        // After the inner guard drops, new spans parent under root again.
        let after = trace.span("translate");
        drop(after);
        drop(root);
        let spans = trace.spans();
        let translate = spans.iter().find(|s| s.name == "translate").unwrap();
        let query = spans.iter().find(|s| s.name == "query").unwrap();
        assert_eq!(translate.parent, Some(query.id));
    }
}
