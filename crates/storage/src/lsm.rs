//! The LSM tree: one mutable in-memory component plus a stack of immutable
//! disk components, with flush, merge, bulk load, point lookup, and merged
//! scans.
//!
//! This mirrors AsterixDB's storage described in §2.3 and reference \[2\]: writes go to
//! the memory component; when it exceeds its budget it is flushed to a new
//! disk component; lookups consult components newest-first; scans merge all
//! components with newest-wins semantics; a simple merge policy compacts
//! all disk components into one when their number exceeds a threshold.
//!
//! Failure model: every disk-touching operation returns `Result<_,
//! IoError>`. [`LsmTree::flush`] and [`LsmTree::merge_all`] are
//! failure-atomic — on error the memory component (resp. the old disk
//! components) is left intact and any partially written file is deleted,
//! so a transient fault can simply be retried.

use crate::cache::BufferCache;
use crate::component::{Entry, RunComponent};
use crate::events::LsmEventKind;
use crate::fault::{IoError, IoOp};
use crate::StorageConfig;
use asterix_adm::Value;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One source of a merged scan: fallible `(key, entry)` items.
type EntryStream<'a> = Box<dyn Iterator<Item = Result<(Value, Entry), IoError>> + 'a>;

/// An LSM-based B+-tree over `Value` keys and opaque byte values.
#[derive(Debug)]
pub struct LsmTree {
    mem: BTreeMap<Value, Entry>,
    mem_bytes: usize,
    /// Disk components, newest first.
    disk_components: Vec<RunComponent>,
    cache: Arc<BufferCache>,
    config: StorageConfig,
    /// Lifetime counters for observability.
    flushes: u64,
    merges: u64,
    /// Bumped on every mutation (put/delete/flush/merge/bulk-load) so
    /// derived caches — e.g. the inverted index's postings cache — can
    /// detect staleness with one integer comparison.
    generation: u64,
    /// Identity stamped onto lifecycle events (`dataset/p0/<primary>`);
    /// empty until [`LsmTree::set_tag`] is called.
    tag: Arc<str>,
    /// Files superseded by a merge but not yet reclaimed, populated only
    /// when [`StorageConfig::defer_reclaim`] is set: a durable instance
    /// may delete them only *after* the manifest that stops referencing
    /// them has been committed.
    obsolete: Vec<crate::disk::FileId>,
}

impl LsmTree {
    /// Create an empty tree over `cache` with `config`.
    pub fn new(cache: Arc<BufferCache>, config: StorageConfig) -> Self {
        LsmTree {
            mem: BTreeMap::new(),
            mem_bytes: 0,
            disk_components: Vec::new(),
            cache,
            config,
            flushes: 0,
            merges: 0,
            generation: 0,
            tag: Arc::from(""),
            obsolete: Vec::new(),
        }
    }

    /// Name this tree in lifecycle events (see
    /// [`crate::events::LsmEventLog`]). Conventionally
    /// `dataset/p<partition>/<index>`.
    pub fn set_tag(&mut self, tag: impl Into<Arc<str>>) {
        self.tag = tag.into();
    }

    fn emit(&self, kind: LsmEventKind, bytes: u64) {
        if let Some(log) = &self.config.events {
            log.record(
                &self.tag,
                kind,
                bytes,
                self.disk_components.len() as u64,
                self.generation,
                None,
            );
        }
    }

    /// Insert or overwrite. May trigger a flush (and thus fail) when the
    /// memory budget is exceeded; the write itself is already applied.
    pub fn put(&mut self, key: Value, value: Bytes) -> Result<(), IoError> {
        self.generation += 1;
        self.mem_bytes += key.heap_size() + value.len() + 16;
        self.mem.insert(key, Entry::Put(value));
        self.maybe_flush()
    }

    /// Delete (tombstone).
    pub fn delete(&mut self, key: Value) -> Result<(), IoError> {
        self.generation += 1;
        self.mem_bytes += key.heap_size() + 16;
        self.mem.insert(key, Entry::Tombstone);
        self.maybe_flush()
    }

    /// Point lookup: memory first, then disk components newest-first.
    pub fn get(&self, key: &Value) -> Result<Option<Bytes>, IoError> {
        if let Some(e) = self.mem.get(key) {
            return Ok(e.bytes().cloned());
        }
        for comp in &self.disk_components {
            crate::profile::add(|q| &q.lsm_components_searched, 1);
            if let Some(e) = comp.get(key, &self.cache)? {
                return Ok(e.bytes().cloned());
            }
        }
        Ok(None)
    }

    /// Batched point lookup over a *sorted* (ascending, ideally deduped)
    /// key slice. Semantically equivalent to calling [`LsmTree::get`] per
    /// key, but each disk component is descended in one merged pass: keys
    /// that land on the same page decode that page once instead of once
    /// per key (§4.1.1's sort-the-pks locality, actually exploited).
    ///
    /// Counter semantics differ deliberately from the point path:
    /// `lsm_components_searched` counts one event per component *per
    /// batch pass*, not per key — the merged descent is one search.
    pub fn get_many_sorted(&self, keys: &[Value]) -> Result<Vec<Option<Bytes>>, IoError> {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        // Outer None = unresolved; Some(None) = resolved to a tombstone.
        let mut out: Vec<Option<Option<Bytes>>> = keys
            .iter()
            .map(|k| self.mem.get(k).map(|e| e.bytes().cloned()))
            .collect();
        for comp in &self.disk_components {
            let pending: Vec<usize> = (0..keys.len()).filter(|i| out[*i].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            crate::profile::add(|q| &q.lsm_components_searched, 1);
            let sorted_keys: Vec<&Value> = pending.iter().map(|i| &keys[*i]).collect();
            let found = comp.get_many_sorted(&sorted_keys, &self.cache)?;
            for (slot, entry) in pending.into_iter().zip(found) {
                if let Some(e) = entry {
                    out[slot] = Some(e.bytes().cloned());
                }
            }
        }
        Ok(out.into_iter().map(|r| r.flatten()).collect())
    }

    /// The current mutation generation (see the field doc).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True if the key currently has a live value.
    pub fn contains(&self, key: &Value) -> Result<bool, IoError> {
        Ok(self.get(key)?.is_some())
    }

    /// Merged scan of live entries with key `>= from`, in key order. A
    /// disk fault mid-scan yields one `Err` item and ends the stream.
    pub fn scan_from(
        &self,
        from: Option<&Value>,
    ) -> impl Iterator<Item = Result<(Value, Bytes), IoError>> + '_ {
        let mem_iter: EntryStream<'_> = match from {
            None => Box::new(self.mem.iter().map(|(k, e)| Ok((k.clone(), e.clone())))),
            Some(f) => Box::new(
                self.mem
                    .range(f.clone()..)
                    .map(|(k, e)| Ok((k.clone(), e.clone()))),
            ),
        };
        let mut sources: Vec<EntryStream<'_>> = vec![mem_iter];
        for comp in &self.disk_components {
            sources.push(Box::new(comp.scan_from(from, &self.cache)));
        }
        MergedScan::live(sources)
    }

    /// Full scan of live entries.
    pub fn scan(&self) -> impl Iterator<Item = Result<(Value, Bytes), IoError>> + '_ {
        self.scan_from(None)
    }

    /// Force the memory component to disk. Failure-atomic: on error the
    /// memory component is untouched and no partial file survives, so a
    /// transient fault can be retried by calling `flush` again.
    pub fn flush(&mut self) -> Result<(), IoError> {
        if self.mem.is_empty() {
            return Ok(());
        }
        self.emit(LsmEventKind::FlushStart, self.mem_bytes as u64);
        self.cache.disk().fault_check(IoOp::Flush, None)?;
        let comp = RunComponent::build(
            self.cache.disk(),
            self.config.page_size,
            self.mem.iter().map(|(k, e)| (k.clone(), e.clone())),
        )?;
        // Torture hook: die after the component is sealed but before it
        // is linked in — recovery must treat it as an orphan.
        crate::fault::crash_point("flush.mid");
        let flushed_bytes = comp.byte_size();
        self.mem.clear();
        self.mem_bytes = 0;
        self.disk_components.insert(0, comp);
        self.flushes += 1;
        self.generation += 1;
        self.emit(LsmEventKind::FlushEnd, flushed_bytes);
        self.maybe_merge()
    }

    fn maybe_flush(&mut self) -> Result<(), IoError> {
        if self.mem_bytes >= self.config.mem_component_budget {
            self.flush()
        } else {
            Ok(())
        }
    }

    fn maybe_merge(&mut self) -> Result<(), IoError> {
        if self.disk_components.len() > self.config.max_components {
            self.merge_all()
        } else {
            Ok(())
        }
    }

    /// Merge every disk component into one (keeping tombstones out of the
    /// result — a full merge is a major compaction). Failure-atomic: on
    /// error the old components remain in place.
    pub fn merge_all(&mut self) -> Result<(), IoError> {
        if self.disk_components.len() <= 1 {
            return Ok(());
        }
        self.emit(
            LsmEventKind::MergeStart,
            self.disk_components
                .iter()
                .map(RunComponent::byte_size)
                .sum(),
        );
        let mut merged: Vec<(Value, Entry)> = Vec::new();
        {
            let sources: Vec<EntryStream<'_>> = self
                .disk_components
                .iter()
                .map(|c| Box::new(c.scan_from(None, &self.cache)) as EntryStream<'_>)
                .collect();
            for item in MergedScan::new_raw(sources) {
                let (key, entry) = item?;
                if !matches!(entry, Entry::Tombstone) {
                    merged.push((key, entry));
                }
            }
        }
        let new_comp =
            RunComponent::build(self.cache.disk(), self.config.page_size, merged)?;
        // Torture hook: die with both the merged output and its inputs
        // on disk, before the swap — recovery must keep the inputs (the
        // manifest still references them) and orphan-sweep the output.
        crate::fault::crash_point("merge.mid");
        let old = std::mem::replace(&mut self.disk_components, vec![new_comp]);
        for comp in old {
            // Stale pages are impossible either way (FileIds are never
            // reused), so the cache can always be scrubbed immediately;
            // what must wait for the manifest is the file deletion.
            self.cache.invalidate_file(comp.file());
            if self.config.defer_reclaim {
                self.obsolete.push(comp.file());
            } else {
                self.cache.disk().delete(comp.file());
            }
        }
        self.merges += 1;
        self.generation += 1;
        self.emit(
            LsmEventKind::MergeEnd,
            self.disk_components
                .iter()
                .map(RunComponent::byte_size)
                .sum(),
        );
        Ok(())
    }

    /// Bulk load from a *sorted, unique-key* stream directly into a single
    /// disk component (the fast path used by `create index` on existing
    /// data, matching AsterixDB's bulk-load pipeline behind Table 5).
    pub fn bulk_load<I>(&mut self, sorted: I) -> Result<(), IoError>
    where
        I: IntoIterator<Item = (Value, Bytes)>,
    {
        assert!(
            self.mem.is_empty() && self.disk_components.is_empty(),
            "bulk_load requires an empty tree"
        );
        self.emit(LsmEventKind::BulkLoadStart, 0);
        let comp = RunComponent::build(
            self.cache.disk(),
            self.config.page_size,
            sorted.into_iter().map(|(k, v)| (k, Entry::Put(v))),
        )?;
        let loaded_bytes = comp.byte_size();
        self.disk_components.push(comp);
        self.generation += 1;
        self.emit(LsmEventKind::BulkLoadEnd, loaded_bytes);
        Ok(())
    }

    /// Total on-disk bytes plus an estimate of the memory component.
    pub fn size_bytes(&self) -> u64 {
        self.disk_components
            .iter()
            .map(RunComponent::byte_size)
            .sum::<u64>()
            + self.mem_bytes as u64
    }

    /// Number of immutable disk components.
    pub fn num_disk_components(&self) -> usize {
        self.disk_components.len()
    }

    /// Lifetime flush count.
    pub fn num_flushes(&self) -> u64 {
        self.flushes
    }

    /// Lifetime merge count.
    pub fn num_merges(&self) -> u64 {
        self.merges
    }

    /// Count of live entries (scans everything; test/stats use only).
    pub fn live_entries(&self) -> Result<u64, IoError> {
        let mut n = 0u64;
        for item in self.scan() {
            item?;
            n += 1;
        }
        Ok(n)
    }

    /// The buffer cache (and through it the disk) this tree uses.
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// True when the memory component holds no entries (not even
    /// tombstones) — the condition under which a manifest commit may
    /// advance the partition's `flushed_lsn` past this tree's writes.
    pub fn mem_is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// The live disk components as `(file, pages)`, newest first — what
    /// a manifest records for this tree.
    pub fn component_files(&self) -> Vec<(crate::disk::FileId, u32)> {
        self.disk_components
            .iter()
            .map(|c| (c.file(), c.num_pages()))
            .collect()
    }

    /// Replace the component stack with recovered components (newest
    /// first), used by startup recovery after re-opening the files the
    /// manifest references. The memory component must be empty.
    pub fn restore_components(&mut self, components: Vec<RunComponent>) {
        debug_assert!(self.mem.is_empty(), "restore into a dirty tree");
        self.disk_components = components;
        self.generation += 1;
    }

    /// Drain the files superseded since the last call (non-empty only
    /// when [`StorageConfig::defer_reclaim`] is set). The caller deletes
    /// them once no manifest references them.
    pub fn take_obsolete(&mut self) -> Vec<crate::disk::FileId> {
        std::mem::take(&mut self.obsolete)
    }
}

/// K-way merge over entry streams ordered by key; on duplicate keys the
/// *earliest source wins* (sources are ordered newest-first). Tombstones
/// shadow older puts and are dropped from the live output. A source
/// yielding `Err` ends the merge with that error (fused afterwards).
struct MergedScan<'a> {
    heads: Vec<Option<(Value, Entry)>>,
    sources: Vec<EntryStream<'a>>,
    keep_tombstones: bool,
    /// A failure seen while priming heads, surfaced on the first next().
    error: Option<IoError>,
    failed: bool,
}

impl<'a> MergedScan<'a> {
    /// The live view used by scans: tombstones filtered out.
    fn live(sources: Vec<EntryStream<'a>>) -> LiveScan<'a> {
        LiveScan(Self::new_raw(sources))
    }

    fn new_raw(sources: Vec<EntryStream<'a>>) -> Self {
        let mut scan = MergedScan {
            heads: Vec::with_capacity(sources.len()),
            sources,
            keep_tombstones: true,
            error: None,
            failed: false,
        };
        for i in 0..scan.sources.len() {
            match scan.sources[i].next() {
                Some(Ok(kv)) => scan.heads.push(Some(kv)),
                Some(Err(e)) => {
                    scan.heads.push(None);
                    scan.error.get_or_insert(e);
                }
                None => scan.heads.push(None),
            }
        }
        scan
    }

    fn refill(&mut self, i: usize) -> Result<(), IoError> {
        self.heads[i] = match self.sources[i].next() {
            None => None,
            Some(Ok(kv)) => Some(kv),
            Some(Err(e)) => return Err(e),
        };
        Ok(())
    }
}

impl Iterator for MergedScan<'_> {
    type Item = Result<(Value, Entry), IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(e) = self.error.take() {
            self.failed = true;
            return Some(Err(e));
        }
        loop {
            // Find the minimal key among heads; earliest source wins ties.
            let mut best: Option<usize> = None;
            for (i, head) in self.heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    match &best {
                        None => best = Some(i),
                        Some(b) => {
                            let (bk, _) = self.heads[*b].as_ref().unwrap();
                            if k < bk {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let best = best?;
            let (key, entry) = self.heads[best].take().unwrap();
            if let Err(e) = self.refill(best) {
                self.failed = true;
                return Some(Err(e));
            }
            // Discard same-key entries from older sources.
            for i in 0..self.heads.len() {
                while let Some((k, _)) = &self.heads[i] {
                    if *k == key {
                        if let Err(e) = self.refill(i) {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    } else {
                        break;
                    }
                }
            }
            if !self.keep_tombstones && matches!(entry, Entry::Tombstone) {
                continue;
            }
            return Some(Ok((key, entry)));
        }
    }
}

/// Live view: tombstones removed, errors passed through.
struct LiveScan<'a>(MergedScan<'a>);

impl Iterator for LiveScan<'_> {
    type Item = Result<(Value, Bytes), IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.0.next()? {
                Ok((k, Entry::Put(b))) => return Some(Ok((k, b))),
                Ok((_, Entry::Tombstone)) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::fault::{FaultInjector, FaultRule};
    use proptest::prelude::*;

    fn tree(config: StorageConfig) -> LsmTree {
        let disk = Arc::new(Disk::new());
        let cache = Arc::new(BufferCache::new(disk, 64));
        LsmTree::new(cache, config)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn live(t: &LsmTree) -> Vec<(i64, Bytes)> {
        t.scan()
            .map(|r| {
                let (k, v) = r.unwrap();
                (k.as_i64().unwrap(), v)
            })
            .collect()
    }

    #[test]
    fn put_get_memory_only() {
        let mut t = tree(StorageConfig::default());
        t.put(Value::Int64(1), b("one")).unwrap();
        t.put(Value::Int64(2), b("two")).unwrap();
        assert_eq!(t.get(&Value::Int64(1)).unwrap(), Some(b("one")));
        assert_eq!(t.get(&Value::Int64(3)).unwrap(), None);
        assert_eq!(t.num_disk_components(), 0);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(1), b("v1")).unwrap();
        t.flush().unwrap();
        t.put(Value::Int64(1), b("v2")).unwrap();
        assert_eq!(t.get(&Value::Int64(1)).unwrap(), Some(b("v2")));
        t.flush().unwrap();
        assert_eq!(t.get(&Value::Int64(1)).unwrap(), Some(b("v2")));
    }

    #[test]
    fn delete_shadows_older_component() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(7), b("x")).unwrap();
        t.flush().unwrap();
        t.delete(Value::Int64(7)).unwrap();
        assert_eq!(t.get(&Value::Int64(7)).unwrap(), None);
        t.flush().unwrap();
        assert_eq!(t.get(&Value::Int64(7)).unwrap(), None);
        assert!(live(&t).is_empty());
    }

    #[test]
    fn auto_flush_on_budget() {
        let mut t = tree(StorageConfig::tiny());
        for i in 0..500 {
            t.put(Value::Int64(i), b("some value payload here")).unwrap();
        }
        assert!(t.num_flushes() > 0, "tiny budget must trigger flushes");
        for i in (0..500).step_by(97) {
            assert_eq!(
                t.get(&Value::Int64(i)).unwrap(),
                Some(b("some value payload here"))
            );
        }
    }

    #[test]
    fn merge_compacts_components() {
        let mut t = tree(StorageConfig::tiny());
        for round in 0..6 {
            for i in 0..30 {
                t.put(Value::Int64(i + round * 30), b("payload")).unwrap();
            }
            t.flush().unwrap();
        }
        assert!(t.num_merges() > 0, "merge policy must have fired");
        assert!(t.num_disk_components() <= StorageConfig::tiny().max_components + 1);
        assert_eq!(t.live_entries().unwrap(), 180);
    }

    #[test]
    fn merged_scan_sorted_and_deduped() {
        let mut t = tree(StorageConfig::tiny());
        for i in [5i64, 3, 1] {
            t.put(Value::Int64(i), b("old")).unwrap();
        }
        t.flush().unwrap();
        for i in [4i64, 3] {
            t.put(Value::Int64(i), b("new")).unwrap();
        }
        assert_eq!(
            live(&t),
            vec![
                (1, b("old")),
                (3, b("new")),
                (4, b("new")),
                (5, b("old"))
            ]
        );
    }

    #[test]
    fn scan_from_bound_across_components() {
        let mut t = tree(StorageConfig::tiny());
        for i in 0..20 {
            t.put(Value::Int64(i), b("a")).unwrap();
            if i % 5 == 0 {
                t.flush().unwrap();
            }
        }
        let keys: Vec<i64> = t
            .scan_from(Some(&Value::Int64(13)))
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(keys, (13..20).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_then_read() {
        let mut t = tree(StorageConfig::tiny());
        let data: Vec<(Value, Bytes)> =
            (0..100).map(|i| (Value::Int64(i), b("blk"))).collect();
        t.bulk_load(data).unwrap();
        assert_eq!(t.num_disk_components(), 1);
        assert_eq!(t.get(&Value::Int64(55)).unwrap(), Some(b("blk")));
        assert_eq!(t.live_entries().unwrap(), 100);
    }

    #[test]
    #[should_panic]
    fn bulk_load_nonempty_panics() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(0), b("x")).unwrap();
        let _ = t.bulk_load(vec![(Value::Int64(1), b("y"))]);
    }

    #[test]
    fn size_accounting_grows() {
        let mut t = tree(StorageConfig::tiny());
        let s0 = t.size_bytes();
        for i in 0..50 {
            t.put(Value::Int64(i), b("0123456789")).unwrap();
        }
        t.flush().unwrap();
        assert!(t.size_bytes() > s0);
    }

    #[test]
    fn failed_flush_keeps_memory_component_and_retry_succeeds() {
        let disk = Arc::new(Disk::new());
        disk.set_fault_injector(Arc::new(FaultInjector::new(5).with_rule(FaultRule {
            op: IoOp::Flush,
            file: None,
            nth: 1,
            transient: true,
        })));
        let cache = Arc::new(BufferCache::new(disk.clone(), 64));
        let mut t = LsmTree::new(cache, StorageConfig::tiny());
        for i in 0..5 {
            // Keep below the tiny budget so no auto-flush happens.
            t.mem.insert(Value::Int64(i), Entry::Put(b("v")));
        }
        let err = t.flush().unwrap_err();
        assert!(err.transient);
        // Atomicity: memory untouched, nothing on disk.
        assert_eq!(t.num_disk_components(), 0);
        assert_eq!(t.get(&Value::Int64(3)).unwrap(), Some(b("v")));
        assert_eq!(disk.total_bytes(), 0, "partial file must be cleaned up");
        // The fault was transient: a retry drains the memory component.
        t.flush().unwrap();
        assert_eq!(t.num_disk_components(), 1);
        assert_eq!(t.get(&Value::Int64(3)).unwrap(), Some(b("v")));
    }

    #[test]
    fn failed_append_during_flush_deletes_partial_file() {
        let disk = Arc::new(Disk::new());
        // Fail the 2nd append ever: the first page lands, the second dies,
        // exercising the partial-file cleanup path.
        disk.set_fault_injector(Arc::new(FaultInjector::new(5).with_rule(FaultRule {
            op: IoOp::Append,
            file: None,
            nth: 2,
            transient: true,
        })));
        let cache = Arc::new(BufferCache::new(disk.clone(), 64));
        let mut t = LsmTree::new(cache, StorageConfig::tiny());
        for i in 0..200 {
            t.mem
                .insert(Value::Int64(i), Entry::Put(b("some payload text")));
        }
        assert!(t.flush().is_err());
        assert_eq!(t.num_disk_components(), 0);
        assert_eq!(disk.total_bytes(), 0, "partial file must be cleaned up");
        t.flush().unwrap();
        assert_eq!(t.live_entries().unwrap(), 200);
    }

    #[test]
    fn failed_merge_keeps_old_components() {
        let disk = Arc::new(Disk::new());
        let cache = Arc::new(BufferCache::new(disk.clone(), 64));
        let mut t = LsmTree::new(cache, StorageConfig::tiny());
        for round in 0..3 {
            for i in 0..10 {
                t.put(Value::Int64(i + round * 10), b("p")).unwrap();
            }
            t.flush().unwrap();
        }
        let before = t.num_disk_components();
        assert!(before > 1);
        disk.set_fault_injector(Arc::new(FaultInjector::new(5).with_rule(FaultRule {
            op: IoOp::Read,
            file: None,
            nth: 1,
            transient: true,
        })));
        let result = t.merge_all();
        // The merge may succeed if every page was cache-resident; if it
        // failed, the old components must still be there and readable.
        if result.is_err() {
            assert_eq!(t.num_disk_components(), before);
        }
        disk.clear_fault_injector();
        assert_eq!(t.live_entries().unwrap(), 30);
    }

    proptest! {
        /// The LSM tree behaves like a BTreeMap under an arbitrary workload
        /// of puts, deletes, and flushes.
        #[test]
        fn prop_model_equivalence(ops in prop::collection::vec((0u8..3, 0i64..40, "[a-z]{0,6}"), 1..120)) {
            let mut t = tree(StorageConfig::tiny());
            let mut model: BTreeMap<i64, String> = BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        t.put(Value::Int64(key), Bytes::from(val.clone().into_bytes())).unwrap();
                        model.insert(key, val);
                    }
                    1 => {
                        t.delete(Value::Int64(key)).unwrap();
                        model.remove(&key);
                    }
                    _ => t.flush().unwrap(),
                }
            }
            // Point lookups agree.
            for k in 0..40i64 {
                let got = t.get(&Value::Int64(k)).unwrap().map(|b| String::from_utf8(b.to_vec()).unwrap());
                prop_assert_eq!(got, model.get(&k).cloned());
            }
            // Scans agree.
            let scanned: Vec<(i64, String)> = t.scan()
                .map(|r| { let (k, v) = r.unwrap(); (k.as_i64().unwrap(), String::from_utf8(v.to_vec()).unwrap()) })
                .collect();
            let expected: Vec<(i64, String)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
            prop_assert_eq!(scanned, expected);
        }

        /// The batched sorted lookup must agree with per-key point gets on
        /// any mix of memory entries, disk components, overwrites, and
        /// tombstones.
        #[test]
        fn batched_get_matches_point_gets(ops in prop::collection::vec((0u8..3, 0i64..40, "[a-z]{1,6}"), 0..120)) {
            let mut t = tree(StorageConfig::tiny());
            for (op, k, v) in ops {
                match op {
                    0 => t.put(Value::Int64(k), b(&v)).unwrap(),
                    1 => t.delete(Value::Int64(k)).unwrap(),
                    _ => t.flush().unwrap(),
                }
            }
            let keys: Vec<Value> = (0..40i64).map(Value::Int64).collect();
            let batched = t.get_many_sorted(&keys).unwrap();
            for (key, got) in keys.iter().zip(batched) {
                prop_assert_eq!(got, t.get(key).unwrap());
            }
        }
    }

    #[test]
    fn batched_get_spans_components_and_tombstones() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(1), b("one")).unwrap();
        t.put(Value::Int64(2), b("two")).unwrap();
        t.flush().unwrap();
        t.put(Value::Int64(2), b("two-v2")).unwrap();
        t.delete(Value::Int64(1)).unwrap();
        t.flush().unwrap();
        t.put(Value::Int64(5), b("five")).unwrap(); // memory only
        let keys: Vec<Value> = [1i64, 2, 3, 5].into_iter().map(Value::Int64).collect();
        assert_eq!(
            t.get_many_sorted(&keys).unwrap(),
            vec![None, Some(b("two-v2")), None, Some(b("five"))]
        );
    }

    #[test]
    fn lifecycle_events_bracket_flush_merge_and_bulk_load() {
        use crate::events::{LsmEventKind, LsmEventLog};
        let log = Arc::new(LsmEventLog::new(64));
        let mut config = StorageConfig::tiny();
        config.events = Some(log.clone());
        let disk = Arc::new(Disk::new());
        let cache = Arc::new(BufferCache::new(disk, 64));
        let mut t = LsmTree::new(cache.clone(), config.clone());
        t.set_tag("ds/p0/<primary>");
        for round in 0..2 {
            for i in 0..10 {
                t.put(Value::Int64(i + round * 10), b("payload")).unwrap();
            }
            t.flush().unwrap();
        }
        t.merge_all().unwrap();
        let mut loaded = LsmTree::new(cache, config);
        loaded.set_tag("ds/p0/kw");
        loaded
            .bulk_load((0..5).map(|i| (Value::Int64(i), b("x"))))
            .unwrap();

        let events = log.snapshot();
        let count = |k: LsmEventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(LsmEventKind::FlushStart), 2);
        assert_eq!(count(LsmEventKind::FlushEnd), 2);
        assert_eq!(count(LsmEventKind::MergeStart), 1);
        assert_eq!(count(LsmEventKind::MergeEnd), 1);
        assert_eq!(count(LsmEventKind::BulkLoadEnd), 1);
        let merge_end = events
            .iter()
            .find(|e| e.kind == LsmEventKind::MergeEnd)
            .unwrap();
        assert_eq!(&*merge_end.tree, "ds/p0/<primary>");
        assert_eq!(merge_end.components, 1);
        assert!(merge_end.bytes > 0);
        let bulk = events
            .iter()
            .find(|e| e.kind == LsmEventKind::BulkLoadEnd)
            .unwrap();
        assert_eq!(&*bulk.tree, "ds/p0/kw");
        // A failed flush leaves a FlushStart without a FlushEnd.
        let disk2 = Arc::new(Disk::new());
        disk2.set_fault_injector(Arc::new(FaultInjector::new(5).with_rule(FaultRule {
            op: IoOp::Flush,
            file: None,
            nth: 1,
            transient: true,
        })));
        let mut cfg2 = StorageConfig::tiny();
        cfg2.events = Some(log.clone());
        let mut t2 = LsmTree::new(Arc::new(BufferCache::new(disk2, 8)), cfg2);
        t2.set_tag("ds/p1/<primary>");
        t2.mem.insert(Value::Int64(1), Entry::Put(b("v")));
        assert!(t2.flush().is_err());
        let events = log.snapshot();
        let p1: Vec<_> = events.iter().filter(|e| &*e.tree == "ds/p1/<primary>").collect();
        assert_eq!(p1.len(), 1);
        assert_eq!(p1[0].kind, LsmEventKind::FlushStart);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut t = tree(StorageConfig::tiny());
        let g0 = t.generation();
        t.put(Value::Int64(1), b("one")).unwrap();
        let g1 = t.generation();
        assert!(g1 > g0);
        t.delete(Value::Int64(1)).unwrap();
        let g2 = t.generation();
        assert!(g2 > g1);
        t.put(Value::Int64(2), b("two")).unwrap();
        t.flush().unwrap();
        let g3 = t.generation();
        assert!(g3 > g2);
        t.flush().unwrap(); // empty flush: no component, but harmless
        t.put(Value::Int64(3), b("three")).unwrap();
        t.flush().unwrap();
        let g4 = t.generation();
        t.merge_all().unwrap();
        assert!(t.generation() > g4);
    }
}
