//! The LSM tree: one mutable in-memory component plus a stack of immutable
//! disk components, with flush, merge, bulk load, point lookup, and merged
//! scans.
//!
//! This mirrors AsterixDB's storage described in §2.3 and [2]: writes go to
//! the memory component; when it exceeds its budget it is flushed to a new
//! disk component; lookups consult components newest-first; scans merge all
//! components with newest-wins semantics; a simple merge policy compacts
//! all disk components into one when their number exceeds a threshold.

use crate::cache::BufferCache;
use crate::component::{Entry, RunComponent};
use crate::StorageConfig;
use asterix_adm::Value;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An LSM-based B+-tree over `Value` keys and opaque byte values.
#[derive(Debug)]
pub struct LsmTree {
    mem: BTreeMap<Value, Entry>,
    mem_bytes: usize,
    /// Disk components, newest first.
    disk_components: Vec<RunComponent>,
    cache: Arc<BufferCache>,
    config: StorageConfig,
    /// Lifetime counters for observability.
    flushes: u64,
    merges: u64,
}

impl LsmTree {
    pub fn new(cache: Arc<BufferCache>, config: StorageConfig) -> Self {
        LsmTree {
            mem: BTreeMap::new(),
            mem_bytes: 0,
            disk_components: Vec::new(),
            cache,
            config,
            flushes: 0,
            merges: 0,
        }
    }

    /// Insert or overwrite.
    pub fn put(&mut self, key: Value, value: Bytes) {
        self.mem_bytes += key.heap_size() + value.len() + 16;
        self.mem.insert(key, Entry::Put(value));
        self.maybe_flush();
    }

    /// Delete (tombstone).
    pub fn delete(&mut self, key: Value) {
        self.mem_bytes += key.heap_size() + 16;
        self.mem.insert(key, Entry::Tombstone);
        self.maybe_flush();
    }

    /// Point lookup: memory first, then disk components newest-first.
    pub fn get(&self, key: &Value) -> Option<Bytes> {
        if let Some(e) = self.mem.get(key) {
            return e.bytes().cloned();
        }
        for comp in &self.disk_components {
            if let Some(e) = comp.get(key, &self.cache) {
                return e.bytes().cloned();
            }
        }
        None
    }

    /// True if the key currently has a live value.
    pub fn contains(&self, key: &Value) -> bool {
        self.get(key).is_some()
    }

    /// Merged scan of live entries with key `>= from`, in key order.
    pub fn scan_from(&self, from: Option<&Value>) -> impl Iterator<Item = (Value, Bytes)> + '_ {
        let mem_iter: Box<dyn Iterator<Item = (Value, Entry)> + '_> = match from {
            None => Box::new(self.mem.iter().map(|(k, e)| (k.clone(), e.clone()))),
            Some(f) => Box::new(
                self.mem
                    .range(f.clone()..)
                    .map(|(k, e)| (k.clone(), e.clone())),
            ),
        };
        let mut sources: Vec<Box<dyn Iterator<Item = (Value, Entry)> + '_>> = vec![mem_iter];
        for comp in &self.disk_components {
            sources.push(Box::new(comp.scan_from(from, &self.cache)));
        }
        MergedScan::new(sources)
    }

    /// Full scan of live entries.
    pub fn scan(&self) -> impl Iterator<Item = (Value, Bytes)> + '_ {
        self.scan_from(None)
    }

    /// Force the memory component to disk.
    pub fn flush(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.mem);
        self.mem_bytes = 0;
        let comp = RunComponent::build(
            self.cache.disk(),
            self.config.page_size,
            entries.into_iter(),
        );
        self.disk_components.insert(0, comp);
        self.flushes += 1;
        self.maybe_merge();
    }

    fn maybe_flush(&mut self) {
        if self.mem_bytes >= self.config.mem_component_budget {
            self.flush();
        }
    }

    fn maybe_merge(&mut self) {
        if self.disk_components.len() > self.config.max_components {
            self.merge_all();
        }
    }

    /// Merge every disk component into one (keeping tombstones out of the
    /// result — a full merge is a major compaction).
    pub fn merge_all(&mut self) {
        if self.disk_components.len() <= 1 {
            return;
        }
        let sources: Vec<Box<dyn Iterator<Item = (Value, Entry)> + '_>> = self
            .disk_components
            .iter()
            .map(|c| {
                Box::new(c.scan_from(None, &self.cache))
                    as Box<dyn Iterator<Item = (Value, Entry)>>
            })
            .collect();
        let merged: Vec<(Value, Entry)> = MergedScan::new_raw(sources)
            .filter(|(_, e)| !matches!(e, Entry::Tombstone))
            .collect();
        let new_comp = RunComponent::build(
            self.cache.disk(),
            self.config.page_size,
            merged.into_iter(),
        );
        let old = std::mem::replace(&mut self.disk_components, vec![new_comp]);
        for comp in old {
            self.cache.invalidate_file(comp.file());
            self.cache.disk().delete(comp.file());
        }
        self.merges += 1;
    }

    /// Bulk load from a *sorted, unique-key* stream directly into a single
    /// disk component (the fast path used by `create index` on existing
    /// data, matching AsterixDB's bulk-load pipeline behind Table 5).
    pub fn bulk_load<I>(&mut self, sorted: I)
    where
        I: IntoIterator<Item = (Value, Bytes)>,
    {
        assert!(
            self.mem.is_empty() && self.disk_components.is_empty(),
            "bulk_load requires an empty tree"
        );
        let comp = RunComponent::build(
            self.cache.disk(),
            self.config.page_size,
            sorted.into_iter().map(|(k, v)| (k, Entry::Put(v))),
        );
        self.disk_components.push(comp);
    }

    /// Total on-disk bytes plus an estimate of the memory component.
    pub fn size_bytes(&self) -> u64 {
        self.disk_components
            .iter()
            .map(RunComponent::byte_size)
            .sum::<u64>()
            + self.mem_bytes as u64
    }

    pub fn num_disk_components(&self) -> usize {
        self.disk_components.len()
    }

    pub fn num_flushes(&self) -> u64 {
        self.flushes
    }

    pub fn num_merges(&self) -> u64 {
        self.merges
    }

    /// Count of live entries (scans everything; test/stats use only).
    pub fn live_entries(&self) -> u64 {
        self.scan().count() as u64
    }

    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }
}

/// K-way merge over entry streams ordered by key; on duplicate keys the
/// *earliest source wins* (sources are ordered newest-first). Tombstones
/// shadow older puts and are dropped from the live output.
struct MergedScan<'a> {
    heads: Vec<Option<(Value, Entry)>>,
    sources: Vec<Box<dyn Iterator<Item = (Value, Entry)> + 'a>>,
    keep_tombstones: bool,
}

impl<'a> MergedScan<'a> {
    fn new(sources: Vec<Box<dyn Iterator<Item = (Value, Entry)> + 'a>>) -> LiveScan<'a> {
        LiveScan(Self::new_raw(sources))
    }

    fn new_raw(mut sources: Vec<Box<dyn Iterator<Item = (Value, Entry)> + 'a>>) -> Self {
        let heads = sources.iter_mut().map(|s| s.next()).collect();
        MergedScan {
            heads,
            sources,
            keep_tombstones: true,
        }
    }
}

impl Iterator for MergedScan<'_> {
    type Item = (Value, Entry);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Find the minimal key among heads; earliest source wins ties.
            let mut best: Option<usize> = None;
            for (i, head) in self.heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    match &best {
                        None => best = Some(i),
                        Some(b) => {
                            let (bk, _) = self.heads[*b].as_ref().unwrap();
                            if k < bk {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let best = best?;
            let (key, entry) = self.heads[best].take().unwrap();
            self.heads[best] = self.sources[best].next();
            // Discard same-key entries from older sources.
            for i in 0..self.heads.len() {
                while let Some((k, _)) = &self.heads[i] {
                    if *k == key {
                        self.heads[i] = self.sources[i].next();
                    } else {
                        break;
                    }
                }
            }
            if !self.keep_tombstones && matches!(entry, Entry::Tombstone) {
                continue;
            }
            return Some((key, entry));
        }
    }
}

/// Live view: tombstones removed.
struct LiveScan<'a>(MergedScan<'a>);

impl Iterator for LiveScan<'_> {
    type Item = (Value, Bytes);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (k, e) = self.0.next()?;
            if let Entry::Put(b) = e {
                return Some((k, b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use proptest::prelude::*;

    fn tree(config: StorageConfig) -> LsmTree {
        let disk = Arc::new(Disk::new());
        let cache = Arc::new(BufferCache::new(disk, 64));
        LsmTree::new(cache, config)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_memory_only() {
        let mut t = tree(StorageConfig::default());
        t.put(Value::Int64(1), b("one"));
        t.put(Value::Int64(2), b("two"));
        assert_eq!(t.get(&Value::Int64(1)), Some(b("one")));
        assert_eq!(t.get(&Value::Int64(3)), None);
        assert_eq!(t.num_disk_components(), 0);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(1), b("v1"));
        t.flush();
        t.put(Value::Int64(1), b("v2"));
        assert_eq!(t.get(&Value::Int64(1)), Some(b("v2")));
        t.flush();
        assert_eq!(t.get(&Value::Int64(1)), Some(b("v2")));
    }

    #[test]
    fn delete_shadows_older_component() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(7), b("x"));
        t.flush();
        t.delete(Value::Int64(7));
        assert_eq!(t.get(&Value::Int64(7)), None);
        t.flush();
        assert_eq!(t.get(&Value::Int64(7)), None);
        let keys: Vec<Value> = t.scan().map(|(k, _)| k).collect();
        assert!(keys.is_empty());
    }

    #[test]
    fn auto_flush_on_budget() {
        let mut t = tree(StorageConfig::tiny());
        for i in 0..500 {
            t.put(Value::Int64(i), b("some value payload here"));
        }
        assert!(t.num_flushes() > 0, "tiny budget must trigger flushes");
        for i in (0..500).step_by(97) {
            assert_eq!(t.get(&Value::Int64(i)), Some(b("some value payload here")));
        }
    }

    #[test]
    fn merge_compacts_components() {
        let mut t = tree(StorageConfig::tiny());
        for round in 0..6 {
            for i in 0..30 {
                t.put(Value::Int64(i + round * 30), b("payload"));
            }
            t.flush();
        }
        assert!(t.num_merges() > 0, "merge policy must have fired");
        assert!(t.num_disk_components() <= StorageConfig::tiny().max_components + 1);
        assert_eq!(t.live_entries(), 180);
    }

    #[test]
    fn merged_scan_sorted_and_deduped() {
        let mut t = tree(StorageConfig::tiny());
        for i in [5i64, 3, 1] {
            t.put(Value::Int64(i), b("old"));
        }
        t.flush();
        for i in [4i64, 3] {
            t.put(Value::Int64(i), b("new"));
        }
        let all: Vec<(i64, Bytes)> = t
            .scan()
            .map(|(k, v)| (k.as_i64().unwrap(), v))
            .collect();
        assert_eq!(
            all,
            vec![
                (1, b("old")),
                (3, b("new")),
                (4, b("new")),
                (5, b("old"))
            ]
        );
    }

    #[test]
    fn scan_from_bound_across_components() {
        let mut t = tree(StorageConfig::tiny());
        for i in 0..20 {
            t.put(Value::Int64(i), b("a"));
            if i % 5 == 0 {
                t.flush();
            }
        }
        let keys: Vec<i64> = t
            .scan_from(Some(&Value::Int64(13)))
            .map(|(k, _)| k.as_i64().unwrap())
            .collect();
        assert_eq!(keys, (13..20).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_then_read() {
        let mut t = tree(StorageConfig::tiny());
        let data: Vec<(Value, Bytes)> =
            (0..100).map(|i| (Value::Int64(i), b("blk"))).collect();
        t.bulk_load(data);
        assert_eq!(t.num_disk_components(), 1);
        assert_eq!(t.get(&Value::Int64(55)), Some(b("blk")));
        assert_eq!(t.live_entries(), 100);
    }

    #[test]
    #[should_panic]
    fn bulk_load_nonempty_panics() {
        let mut t = tree(StorageConfig::tiny());
        t.put(Value::Int64(0), b("x"));
        t.bulk_load(vec![(Value::Int64(1), b("y"))]);
    }

    #[test]
    fn size_accounting_grows() {
        let mut t = tree(StorageConfig::tiny());
        let s0 = t.size_bytes();
        for i in 0..50 {
            t.put(Value::Int64(i), b("0123456789"));
        }
        t.flush();
        assert!(t.size_bytes() > s0);
    }

    proptest! {
        /// The LSM tree behaves like a BTreeMap under an arbitrary workload
        /// of puts, deletes, and flushes.
        #[test]
        fn prop_model_equivalence(ops in prop::collection::vec((0u8..3, 0i64..40, "[a-z]{0,6}"), 1..120)) {
            let mut t = tree(StorageConfig::tiny());
            let mut model: BTreeMap<i64, String> = BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        t.put(Value::Int64(key), Bytes::from(val.clone().into_bytes()));
                        model.insert(key, val);
                    }
                    1 => {
                        t.delete(Value::Int64(key));
                        model.remove(&key);
                    }
                    _ => t.flush(),
                }
            }
            // Point lookups agree.
            for k in 0..40i64 {
                let got = t.get(&Value::Int64(k)).map(|b| String::from_utf8(b.to_vec()).unwrap());
                prop_assert_eq!(got, model.get(&k).cloned());
            }
            // Scans agree.
            let scanned: Vec<(i64, String)> = t.scan()
                .map(|(k, v)| (k.as_i64().unwrap(), String::from_utf8(v.to_vec()).unwrap()))
                .collect();
            let expected: Vec<(i64, String)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
            prop_assert_eq!(scanned, expected);
        }
    }
}
