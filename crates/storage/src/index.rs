//! Typed indexes on top of [`LsmTree`]:
//!
//! * [`PrimaryIndex`] — primary key → record (every dataset partition is
//!   one of these, §2.3),
//! * [`SecondaryBTreeIndex`] — field value → primary keys, via composite
//!   `[field, pk]` keys (the exact-match baseline of §6.2/§6.3),
//! * [`InvertedIndex`] — token → primary keys, again via composite
//!   `[token, pk]` keys; covers both the `keyword` index (word tokens, for
//!   Jaccard) and the `ngram(n)` index (grams, for edit distance) of §3.3.
//!
//! Secondary indexes map secondary keys to primary keys only — resolving a
//! candidate to its record requires a primary-index lookup, which is why
//! the paper's index plans sort primary keys and then search the primary
//! index (§4.1.1).
//!
//! All disk-touching methods return `Result<_, IoError>`, propagating
//! (possibly injected) storage faults typed rather than panicking.

use crate::cache::BufferCache;
use crate::fault::IoError;
use crate::lsm::LsmTree;
use crate::StorageConfig;
use asterix_adm::{binary, IndexKind, Value};
use asterix_simfn::tokenize;
use asterix_simfn::{IntersectScratch, RankCountScratch, TokenBitset};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Posting lists at or above this length switch [`InvertedIndex::t_occurrence`]
/// from ScanCount to DivideSkip (mirrors the tiny-M guard inside the
/// DivideSkip L-heuristic: below this the skip machinery costs more than
/// it saves).
const ADAPTIVE_DIVIDE_SKIP_MIN_LEN: usize = 64;

/// Primary index: pk → record bytes.
#[derive(Debug)]
pub struct PrimaryIndex {
    tree: LsmTree,
}

impl PrimaryIndex {
    /// Create an empty primary index over `cache`.
    pub fn new(cache: Arc<BufferCache>, config: StorageConfig) -> Self {
        PrimaryIndex {
            tree: LsmTree::new(cache, config),
        }
    }

    /// Insert or overwrite the record stored under `pk`.
    pub fn insert(&mut self, pk: Value, record: &Value) -> Result<(), IoError> {
        self.tree.put(pk, binary::to_bytes(record))
    }

    /// Delete the record stored under `pk` (idempotent).
    pub fn delete(&mut self, pk: Value) -> Result<(), IoError> {
        self.tree.delete(pk)
    }

    /// Point lookup, decoding the record.
    pub fn get(&self, pk: &Value) -> Result<Option<Value>, IoError> {
        crate::profile::add(|q| &q.primary_lookups, 1);
        Ok(self
            .tree
            .get(pk)?
            .and_then(|b| binary::from_bytes(&b).ok()))
    }

    /// Batched lookup over a *sorted* (ascending, ideally deduped) pk
    /// slice: one merged descent per LSM component instead of N point
    /// descents, so pks that share a page decode it once (§4.1.1's
    /// sort-the-pks locality). `out[i]` is the record for `pks[i]`.
    pub fn get_many_sorted(&self, pks: &[Value]) -> Result<Vec<Option<Value>>, IoError> {
        crate::profile::add(|q| &q.primary_lookups, pks.len() as u64);
        Ok(self
            .tree
            .get_many_sorted(pks)?
            .into_iter()
            .map(|b| b.and_then(|b| binary::from_bytes(&b).ok()))
            .collect())
    }

    /// Full scan in pk order.
    pub fn scan(&self) -> impl Iterator<Item = Result<(Value, Value), IoError>> + '_ {
        self.tree.scan().filter_map(|item| match item {
            Ok((k, v)) => binary::from_bytes(&v).ok().map(|rec| Ok((k, rec))),
            Err(e) => Some(Err(e)),
        })
    }

    /// Number of live records (scans all components).
    pub fn len(&self) -> Result<u64, IoError> {
        self.tree.live_entries()
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> Result<bool, IoError> {
        match self.tree.scan().next() {
            None => Ok(true),
            Some(Ok(_)) => Ok(false),
            Some(Err(e)) => Err(e),
        }
    }

    /// Approximate on-disk plus in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    /// Flush the memory component to a disk component.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.tree.flush()
    }

    /// Bulk-load pre-sorted `(pk, record)` pairs as one component.
    pub fn bulk_load(
        &mut self,
        sorted: impl IntoIterator<Item = (Value, Value)>,
    ) -> Result<(), IoError> {
        self.tree.bulk_load(
            sorted
                .into_iter()
                .map(|(pk, rec)| (pk, binary::to_bytes(&rec))),
        )
    }

    /// Lifetime (flushes, merges) of the underlying LSM tree.
    pub fn lsm_counters(&self) -> (u64, u64) {
        (self.tree.num_flushes(), self.tree.num_merges())
    }

    /// Disk components currently backing this index.
    pub fn num_disk_components(&self) -> usize {
        self.tree.num_disk_components()
    }

    /// Name the underlying LSM tree in lifecycle events.
    pub fn set_tag(&mut self, tag: impl Into<std::sync::Arc<str>>) {
        self.tree.set_tag(tag);
    }

    /// Live disk components as `(file, pages)`, newest first (see
    /// [`LsmTree::component_files`]).
    pub fn component_files(&self) -> Vec<(crate::disk::FileId, u32)> {
        self.tree.component_files()
    }

    /// Restore recovered disk components (see
    /// [`LsmTree::restore_components`]).
    pub fn restore_components(&mut self, components: Vec<crate::component::RunComponent>) {
        self.tree.restore_components(components);
    }

    /// Drain merge-superseded files awaiting reclamation (see
    /// [`LsmTree::take_obsolete`]).
    pub fn take_obsolete(&mut self) -> Vec<crate::disk::FileId> {
        self.tree.take_obsolete()
    }

    /// True when the memory component is empty (see
    /// [`LsmTree::mem_is_empty`]).
    pub fn mem_is_empty(&self) -> bool {
        self.tree.mem_is_empty()
    }
}

/// Composite-key helper: `[component, pk]`.
fn composite(a: Value, pk: Value) -> Value {
    Value::OrderedList(vec![a, pk])
}

/// Lower bound of the composite range for a given first component
/// (`Missing` sorts before every other value).
fn range_start(a: Value) -> Value {
    Value::OrderedList(vec![a, Value::Missing])
}

/// Secondary B+-tree index on one field.
#[derive(Debug)]
pub struct SecondaryBTreeIndex {
    tree: LsmTree,
    /// The record field this index is built over.
    pub field: String,
}

impl SecondaryBTreeIndex {
    /// Create an empty secondary B+-tree index over `field`.
    pub fn new(cache: Arc<BufferCache>, config: StorageConfig, field: impl Into<String>) -> Self {
        SecondaryBTreeIndex {
            tree: LsmTree::new(cache, config),
            field: field.into(),
        }
    }

    /// Index `record`'s field value under its primary key.
    pub fn insert(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        let key = record.field_path(&self.field);
        if key.is_unknown() {
            return Ok(()); // unindexable: field absent
        }
        self.tree
            .put(composite(key.clone(), pk.clone()), Bytes::new())
    }

    /// Remove `record`'s field value entry for `pk`.
    pub fn delete(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        let key = record.field_path(&self.field);
        if key.is_unknown() {
            return Ok(());
        }
        self.tree.delete(composite(key.clone(), pk.clone()))
    }

    /// All primary keys whose field equals `key` (sorted).
    pub fn lookup(&self, key: &Value) -> Result<Vec<Value>, IoError> {
        let mut out = Vec::new();
        for item in self.tree.scan_from(Some(&range_start(key.clone()))) {
            let (k, _) = item?;
            // A key that is not a well-formed `[field, pk]` composite can
            // only be past the range (or corrupt): treat it as end-of-range
            // rather than indexing into it and panicking.
            match k.as_list() {
                Some(items) if items.first() == Some(key) => match items.get(1) {
                    Some(pk) => out.push(pk.clone()),
                    None => break,
                },
                _ => break,
            }
        }
        Ok(out)
    }

    /// Approximate on-disk plus in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    /// Flush the memory component to a disk component.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.tree.flush()
    }

    /// Number of `[key, pk]` entries across all components.
    pub fn entry_count(&self) -> Result<u64, IoError> {
        self.tree.live_entries()
    }

    /// Lifetime (flushes, merges) of the underlying LSM tree.
    pub fn lsm_counters(&self) -> (u64, u64) {
        (self.tree.num_flushes(), self.tree.num_merges())
    }

    /// Disk components currently backing this index.
    pub fn num_disk_components(&self) -> usize {
        self.tree.num_disk_components()
    }

    /// Name the underlying LSM tree in lifecycle events.
    pub fn set_tag(&mut self, tag: impl Into<std::sync::Arc<str>>) {
        self.tree.set_tag(tag);
    }

    /// Live disk components as `(file, pages)`, newest first.
    pub fn component_files(&self) -> Vec<(crate::disk::FileId, u32)> {
        self.tree.component_files()
    }

    /// Restore recovered disk components.
    pub fn restore_components(&mut self, components: Vec<crate::component::RunComponent>) {
        self.tree.restore_components(components);
    }

    /// Drain merge-superseded files awaiting reclamation.
    pub fn take_obsolete(&mut self) -> Vec<crate::disk::FileId> {
        self.tree.take_obsolete()
    }

    /// True when the memory component is empty.
    pub fn mem_is_empty(&self) -> bool {
        self.tree.mem_is_empty()
    }
}

/// The secondary keys (tokens) an inverted index of `kind` extracts from a
/// field value:
///
/// * `keyword`: distinct word tokens of a string, or the elements of a
///   list field (the index "uses the elements of a given unordered
///   list", §3.3),
/// * `ngram(n)`: distinct n-grams of the string.
///
/// This is a free function (not a method) so the optimizer can tokenize
/// query *constants* once at compile time with exactly the function the
/// runtime search uses — the two can never disagree.
pub fn index_tokens(kind: IndexKind, field_value: &Value) -> Vec<Value> {
    match (kind, field_value) {
        (IndexKind::Keyword, Value::String(s)) => tokenize::word_tokens_distinct(s)
            .into_iter()
            .map(Value::String)
            .collect(),
        (IndexKind::Keyword, Value::OrderedList(items))
        | (IndexKind::Keyword, Value::UnorderedList(items)) => {
            let mut out = items.clone();
            out.sort();
            out.dedup();
            out
        }
        (IndexKind::NGram(n), Value::String(s)) => tokenize::gram_tokens_distinct(s, n)
            .into_iter()
            .map(Value::String)
            .collect(),
        _ => Vec::new(),
    }
}

/// Token → shared posting list, valid for one LSM generation.
///
/// Keyed probes during a query hit the same few tokens over and over
/// (broadcast probes in index-nested-loop joins most of all); re-scanning
/// the composite-key range and re-allocating a fresh `Vec<Value>` per
/// probe dominated the hot path. The cache hands out `Arc<[Value]>`
/// clones instead, and a single generation comparison against the backing
/// tree invalidates *everything* on any mutation — no per-token tracking,
/// no stale reads.
#[derive(Debug, Default)]
struct PostingsCacheInner {
    /// token → (shared list, last-touch stamp for LRU eviction).
    map: HashMap<Value, (Arc<[Value]>, u64)>,
    /// token → (dense-rank form of the posting list, touch stamp). Ranks
    /// index [`PostingsCacheInner::pk_by_rank`]; the vectorized
    /// T-occurrence path counts these with a dense array instead of
    /// hashing `Value` primary keys per element.
    ranks: HashMap<Value, (Arc<[u32]>, u64)>,
    /// token → (bitset membership view of the posting list, touch stamp),
    /// built lazily for the long lists DivideSkip probes: O(1) membership
    /// per candidate instead of a binary search over `Value`s.
    bitsets: HashMap<Value, (Arc<TokenBitset>, u64)>,
    /// First-encounter primary-key interning for this generation:
    /// rank → pk, and its inverse. Cleared with everything else whenever
    /// the backing tree's generation moves.
    pk_by_rank: Vec<Value>,
    rank_of: HashMap<Value, u32>,
    /// Generation of the backing tree these entries were read at.
    generation: u64,
    /// Monotonic touch clock.
    clock: u64,
}

impl PostingsCacheInner {
    /// Drop every generation-scoped structure (entries and rank dictionary).
    fn clear_all(&mut self, generation: u64) {
        self.map.clear();
        self.ranks.clear();
        self.bitsets.clear();
        self.pk_by_rank.clear();
        self.rank_of.clear();
        self.generation = generation;
    }

    /// Intern one posting list to its dense-rank form, extending the pk
    /// dictionary with first-encounter ranks.
    fn rank_list(&mut self, list: &[Value]) -> Arc<[u32]> {
        list.iter()
            .map(|pk| match self.rank_of.get(pk) {
                Some(r) => *r,
                None => {
                    let r = self.pk_by_rank.len() as u32;
                    self.rank_of.insert(pk.clone(), r);
                    self.pk_by_rank.push(pk.clone());
                    r
                }
            })
            .collect()
    }

    /// LRU-evict from a token-keyed map that reached `capacity`.
    fn evict_lru<V>(map: &mut HashMap<Value, (V, u64)>, capacity: usize) {
        if map.len() >= capacity {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
            }
        }
    }
}

thread_local! {
    /// Per-worker dense count table for the rank-array T-occurrence
    /// kernels: grown once to the partition's pk universe, reset by
    /// touched-slot walking, so steady-state probes allocate nothing.
    static RANK_SCRATCH: std::cell::RefCell<RankCountScratch> =
        std::cell::RefCell::new(RankCountScratch::new());

    /// Per-worker ping-pong arena for the full-intersection T-occurrence
    /// fast path: intermediate intersections reuse these buffers across
    /// probes, and the embedded probe counter feeds `gallop_probes`.
    static INTERSECT_SCRATCH: std::cell::RefCell<IntersectScratch<Value>> =
        std::cell::RefCell::new(IntersectScratch::new());
}

#[derive(Debug, Default)]
struct PostingsCache {
    inner: Mutex<PostingsCacheInner>,
    /// Maximum distinct tokens held; 0 disables the cache.
    capacity: usize,
}

/// LSM inverted index: `keyword` or `ngram(n)`, per Fig 13's compatibility
/// table.
#[derive(Debug)]
pub struct InvertedIndex {
    tree: LsmTree,
    /// The record field this index tokenizes.
    pub field: String,
    /// Tokenization: `Keyword` or `NGram(n)`.
    pub kind: IndexKind,
    postings_cache: PostingsCache,
}

impl InvertedIndex {
    /// Create an empty inverted index over `field` with tokenizer `kind`.
    pub fn new(
        cache: Arc<BufferCache>,
        config: StorageConfig,
        field: impl Into<String>,
        kind: IndexKind,
    ) -> Self {
        assert!(
            matches!(kind, IndexKind::Keyword | IndexKind::NGram(_)),
            "inverted index kind must be keyword or ngram"
        );
        let capacity = config.postings_cache_entries;
        InvertedIndex {
            tree: LsmTree::new(cache, config),
            field: field.into(),
            kind,
            postings_cache: PostingsCache {
                inner: Mutex::new(PostingsCacheInner::default()),
                capacity,
            },
        }
    }

    /// The secondary keys (tokens) this index extracts from a field value
    /// (see [`index_tokens`]).
    pub fn tokens_of(&self, field_value: &Value) -> Vec<Value> {
        index_tokens(self.kind, field_value)
    }

    /// Add postings for every token of `record`'s field.
    pub fn insert(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        let field_value = record.field_path(&self.field);
        for token in index_tokens(self.kind, field_value) {
            self.tree.put(composite(token, pk.clone()), Bytes::new())?;
        }
        Ok(())
    }

    /// Remove postings for every token of `record`'s field.
    pub fn delete(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        let field_value = record.field_path(&self.field);
        for token in index_tokens(self.kind, field_value) {
            self.tree.delete(composite(token, pk.clone()))?;
        }
        Ok(())
    }

    /// Scan one token's posting range out of the LSM tree. This is the
    /// only place inverted-list elements are actually read, so it is the
    /// only place that counts `inverted_elements_read` — cache hits
    /// deliberately do not re-count elements they did not re-read.
    fn read_postings(&self, token: &Value) -> Result<Vec<Value>, IoError> {
        let mut out = Vec::new();
        for item in self.tree.scan_from(Some(&range_start(token.clone()))) {
            let (k, _) = item?;
            // A malformed composite key (not a list, or arity < 2) can
            // only be past the range or corrupt: end-of-range, not panic.
            match k.as_list() {
                Some(items) if items.first() == Some(token) => match items.get(1) {
                    Some(pk) => out.push(pk.clone()),
                    None => break,
                },
                _ => break,
            }
        }
        crate::profile::add(|q| &q.inverted_elements_read, out.len() as u64);
        Ok(out)
    }

    /// The inverted list of one token as a shared slice, served from the
    /// postings cache when the backing tree's generation still matches.
    pub fn postings_shared(&self, token: &Value) -> Result<Arc<[Value]>, IoError> {
        if self.postings_cache.capacity == 0 {
            return Ok(self.read_postings(token)?.into());
        }
        let generation = self.tree.generation();
        {
            let mut inner = self.postings_cache.inner.lock();
            if inner.generation != generation {
                // Any mutation since the entries were read: drop them all.
                inner.clear_all(generation);
            } else {
                inner.clock += 1;
                let stamp = inner.clock;
                if let Some(slot) = inner.map.get_mut(token) {
                    slot.1 = stamp;
                    let list = slot.0.clone();
                    drop(inner);
                    crate::profile::add(|q| &q.postings_cache_hits, 1);
                    return Ok(list);
                }
            }
        }
        // Miss: read outside the lock (scans can be long), then install.
        crate::profile::add(|q| &q.postings_cache_misses, 1);
        let list: Arc<[Value]> = self.read_postings(token)?.into();
        // Caching is optional: if the querying thread's memory budget
        // cannot absorb the list, serve it uncached instead of failing.
        let list_bytes: u64 = list.iter().map(|v| v.heap_size() as u64).sum();
        if !crate::budget::try_charge_current(list_bytes) {
            return Ok(list);
        }
        let mut inner = self.postings_cache.inner.lock();
        // Install only if no mutation raced the read.
        if inner.generation == generation {
            if inner.map.len() >= self.postings_cache.capacity
                && !inner.map.contains_key(token)
            {
                // Evict the least-recently-touched token.
                if let Some(victim) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k.clone())
                {
                    inner.map.remove(&victim);
                }
            }
            inner.clock += 1;
            let stamp = inner.clock;
            inner.map.insert(token.clone(), (list.clone(), stamp));
        }
        Ok(list)
    }

    /// The inverted list of one token: sorted primary keys (owned copy;
    /// hot paths should prefer [`InvertedIndex::postings_shared`]).
    pub fn postings(&self, token: &Value) -> Result<Vec<Value>, IoError> {
        Ok(self.postings_shared(token)?.to_vec())
    }

    /// Solve the T-occurrence problem for a set of query tokens: primary
    /// keys appearing on at least `t` of the tokens' inverted lists
    /// (candidates, possibly with false positives — §2.2). `t >= 1`.
    ///
    /// Operates on shared cached slices (no per-probe list copies) and
    /// picks the algorithm adaptively: DivideSkip wins once some list is
    /// long enough for its skip machinery to pay for itself and `t > 1`
    /// makes skipping possible; otherwise ScanCount's single pass is
    /// cheaper.
    pub fn t_occurrence(&self, tokens: &[Value], t: usize) -> Result<Vec<Value>, IoError> {
        let lists: Vec<Arc<[Value]>> = tokens
            .iter()
            .map(|tok| self.postings_shared(tok))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&[Value]> = lists.iter().map(|l| &**l).collect();
        let max_len = refs.iter().map(|l| l.len()).max().unwrap_or(0);
        let candidates = if t > 1 && refs.len() > 1 && max_len >= ADAPTIVE_DIVIDE_SKIP_MIN_LEN {
            asterix_simfn::t_occurrence_divide_skip(&refs, t)
        } else {
            crate::profile::record_scancount_fallbacks(1);
            asterix_simfn::t_occurrence_scan_count(&refs, t)
        };
        crate::profile::add(|q| &q.toccurrence_candidates, candidates.len() as u64);
        Ok(candidates)
    }

    /// Vectorized T-occurrence: posting lists are delivered as
    /// `Arc<[u32]>` dense-rank arrays (interned per LSM generation inside
    /// the postings cache) and counted with the rank kernels of
    /// `asterix-simfn` — a dense count array for ScanCount, bitset
    /// membership for DivideSkip's long-list probes — instead of hashing
    /// or binary-searching `Value` primary keys per element. Picks the
    /// same algorithm the scalar [`InvertedIndex::t_occurrence`] would and
    /// returns the identical candidate list (same order); falls back to
    /// the scalar path whenever the postings cache is disabled, the memory
    /// budget refuses the rank arrays, or a concurrent mutation races the
    /// probe.
    pub fn t_occurrence_ranked(&self, tokens: &[Value], t: usize) -> Result<Vec<Value>, IoError> {
        self.t_occurrence_ranked_opts(tokens, t, true)
    }

    /// [`InvertedIndex::t_occurrence_ranked`] with the full-intersection
    /// fast path switchable (`use_intersect = false` reproduces the
    /// pre-kernel behaviour; the executor wires `disable_kernels` here).
    ///
    /// When `T` equals the number of query tokens — the usual shape for
    /// high Jaccard thresholds, where `ceil(δ·|q|) == |q|` for short
    /// probes — a candidate must appear on *every* list, so the count
    /// kernels are bypassed entirely: the sorted, deduplicated
    /// `Arc<[Value]>` postings slices are intersected directly with the
    /// adaptive gallop/merge kernel, skipping rank interning, the cache
    /// lock re-acquisition, and the rank→pk mapping pass. The candidate
    /// set and order are unchanged: in this regime every survivor appears
    /// on the first (sorted) list, so ScanCount's first-encounter order is
    /// already ascending-pk order.
    pub fn t_occurrence_ranked_opts(
        &self,
        tokens: &[Value],
        t: usize,
        use_intersect: bool,
    ) -> Result<Vec<Value>, IoError> {
        if self.postings_cache.capacity == 0 {
            return self.t_occurrence(tokens, t);
        }
        // Shared Value lists first: this is where cache traffic and
        // inverted_elements_read are counted, identically to the scalar path.
        let lists: Vec<Arc<[Value]>> = tokens
            .iter()
            .map(|tok| self.postings_shared(tok))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&[Value]> = lists.iter().map(|l| &**l).collect();
        if use_intersect && t > 1 && t == refs.len() {
            let candidates = INTERSECT_SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                let before = scratch.gallop_probes();
                let out = asterix_simfn::t_occurrence_intersect(&refs, &mut scratch);
                crate::profile::record_gallop_probes(scratch.gallop_probes() - before);
                out
            });
            crate::profile::add(|q| &q.toccurrence_candidates, candidates.len() as u64);
            return Ok(candidates);
        }
        let max_len = refs.iter().map(|l| l.len()).max().unwrap_or(0);
        let use_divide_skip = t > 1 && refs.len() > 1 && max_len >= ADAPTIVE_DIVIDE_SKIP_MIN_LEN;

        let generation = self.tree.generation();
        let capacity = self.postings_cache.capacity;
        // Intern posting lists to rank arrays under the cache lock.
        let mut inner = self.postings_cache.inner.lock();
        if inner.generation != generation {
            inner.clear_all(generation);
        }
        let mut rank_lists: Vec<Arc<[u32]>> = Vec::with_capacity(lists.len());
        for (tok, list) in tokens.iter().zip(&lists) {
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some(slot) = inner.ranks.get_mut(tok) {
                slot.1 = stamp;
                rank_lists.push(slot.0.clone());
                continue;
            }
            let ranked = inner.rank_list(list.as_ref());
            // Rank arrays cost 4 bytes/element; if the query's budget
            // cannot absorb them, serve this probe through the scalar path.
            if !crate::budget::try_charge_current(4 * ranked.len() as u64) {
                drop(inner);
                return self.t_occurrence_scalar_on(&refs, t, use_divide_skip);
            }
            if !inner.ranks.contains_key(tok) {
                PostingsCacheInner::evict_lru(&mut inner.ranks, capacity);
            }
            inner.ranks.insert(tok.clone(), (ranked.clone(), stamp));
            rank_lists.push(ranked);
        }
        let universe = inner.pk_by_rank.len();

        let candidate_ranks = if use_divide_skip {
            // Same split as the scalar heuristic: stable sort by
            // descending length, first L lists are long.
            let l = asterix_simfn::divide_skip_choose_l(t, rank_lists.len(), max_len);
            let mut order: Vec<usize> = (0..rank_lists.len()).collect();
            order.sort_by_key(|i| std::cmp::Reverse(rank_lists[*i].len()));
            let (long_idx, short_idx) = order.split_at(l);
            let mut long_sets: Vec<Arc<TokenBitset>> = Vec::with_capacity(long_idx.len());
            for &li in long_idx {
                inner.clock += 1;
                let stamp = inner.clock;
                let tok = &tokens[li];
                if let Some(slot) = inner.bitsets.get_mut(tok) {
                    slot.1 = stamp;
                    long_sets.push(slot.0.clone());
                    continue;
                }
                let bs = Arc::new(TokenBitset::build(&rank_lists[li], universe));
                if !inner.bitsets.contains_key(tok) {
                    PostingsCacheInner::evict_lru(&mut inner.bitsets, capacity);
                }
                inner.bitsets.insert(tok.clone(), (bs.clone(), stamp));
                long_sets.push(bs);
            }
            drop(inner);
            let shorts: Vec<&[u32]> = short_idx.iter().map(|i| &*rank_lists[*i]).collect();
            let bs_refs: Vec<&TokenBitset> = long_sets.iter().map(|b| &**b).collect();
            RANK_SCRATCH.with(|s| {
                asterix_simfn::t_occurrence_divide_skip_ranks(
                    &shorts,
                    &bs_refs,
                    t,
                    universe,
                    &mut s.borrow_mut(),
                )
            })
        } else {
            drop(inner);
            crate::profile::record_scancount_fallbacks(1);
            let rank_refs: Vec<&[u32]> = rank_lists.iter().map(|l| &**l).collect();
            RANK_SCRATCH.with(|s| {
                asterix_simfn::t_occurrence_ranks(&rank_refs, t, universe, &mut s.borrow_mut())
            })
        };

        // Map candidate ranks back to primary keys. If a mutation cleared
        // the dictionary while the kernel ran, the ranks no longer resolve:
        // redo this probe through the scalar path (the Arc'd lists are
        // still a consistent snapshot).
        let inner = self.postings_cache.inner.lock();
        if inner.generation != generation {
            drop(inner);
            return self.t_occurrence_scalar_on(&refs, t, use_divide_skip);
        }
        let candidates: Vec<Value> = candidate_ranks
            .iter()
            .map(|&r| inner.pk_by_rank[r as usize].clone())
            .collect();
        drop(inner);
        crate::profile::add(|q| &q.toccurrence_candidates, candidates.len() as u64);
        Ok(candidates)
    }

    /// The scalar merge over already-fetched lists, with the adaptive
    /// choice precomputed — the fallback target of the ranked path.
    fn t_occurrence_scalar_on(
        &self,
        refs: &[&[Value]],
        t: usize,
        use_divide_skip: bool,
    ) -> Result<Vec<Value>, IoError> {
        let candidates = if use_divide_skip {
            asterix_simfn::t_occurrence_divide_skip(refs, t)
        } else {
            crate::profile::record_scancount_fallbacks(1);
            asterix_simfn::t_occurrence_scan_count(refs, t)
        };
        crate::profile::add(|q| &q.toccurrence_candidates, candidates.len() as u64);
        Ok(candidates)
    }

    /// Approximate on-disk plus in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.tree.size_bytes()
    }

    /// Flush the memory component to a disk component.
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.tree.flush()
    }

    /// Number of `[token, pk]` postings across all components.
    pub fn entry_count(&self) -> Result<u64, IoError> {
        self.tree.live_entries()
    }

    /// Lifetime (flushes, merges) of the underlying LSM tree.
    pub fn lsm_counters(&self) -> (u64, u64) {
        (self.tree.num_flushes(), self.tree.num_merges())
    }

    /// Disk components currently backing this index.
    pub fn num_disk_components(&self) -> usize {
        self.tree.num_disk_components()
    }

    /// Name the underlying LSM tree in lifecycle events.
    pub fn set_tag(&mut self, tag: impl Into<std::sync::Arc<str>>) {
        self.tree.set_tag(tag);
    }

    /// Live disk components as `(file, pages)`, newest first.
    pub fn component_files(&self) -> Vec<(crate::disk::FileId, u32)> {
        self.tree.component_files()
    }

    /// Restore recovered disk components (bumps the generation, so the
    /// postings cache self-invalidates).
    pub fn restore_components(&mut self, components: Vec<crate::component::RunComponent>) {
        self.tree.restore_components(components);
    }

    /// Drain merge-superseded files awaiting reclamation.
    pub fn take_obsolete(&mut self) -> Vec<crate::disk::FileId> {
        self.tree.take_obsolete()
    }

    /// True when the memory component is empty.
    pub fn mem_is_empty(&self) -> bool {
        self.tree.mem_is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use asterix_adm::record;

    fn cache() -> Arc<BufferCache> {
        Arc::new(BufferCache::new(Arc::new(Disk::new()), 64))
    }

    #[test]
    fn primary_roundtrip() {
        let mut p = PrimaryIndex::new(cache(), StorageConfig::tiny());
        let rec = record! {"id" => 1i64, "name" => "james"};
        p.insert(Value::Int64(1), &rec).unwrap();
        assert_eq!(p.get(&Value::Int64(1)).unwrap(), Some(rec));
        assert_eq!(p.get(&Value::Int64(2)).unwrap(), None);
        assert_eq!(p.len().unwrap(), 1);
    }

    #[test]
    fn primary_scan_ordered() {
        let mut p = PrimaryIndex::new(cache(), StorageConfig::tiny());
        for i in [3i64, 1, 2] {
            p.insert(Value::Int64(i), &record! {"id" => i}).unwrap();
        }
        let keys: Vec<i64> = p
            .scan()
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn secondary_btree_lookup() {
        let mut s = SecondaryBTreeIndex::new(cache(), StorageConfig::tiny(), "name");
        s.insert(&record! {"id" => 1i64, "name" => "maria"}, &Value::Int64(1))
            .unwrap();
        s.insert(&record! {"id" => 2i64, "name" => "mario"}, &Value::Int64(2))
            .unwrap();
        s.insert(&record! {"id" => 3i64, "name" => "maria"}, &Value::Int64(3))
            .unwrap();
        assert_eq!(
            s.lookup(&Value::from("maria")).unwrap(),
            vec![Value::Int64(1), Value::Int64(3)]
        );
        assert_eq!(s.lookup(&Value::from("nobody")).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn secondary_skips_missing_fields() {
        let mut s = SecondaryBTreeIndex::new(cache(), StorageConfig::tiny(), "name");
        s.insert(&record! {"id" => 1i64}, &Value::Int64(1)).unwrap();
        assert_eq!(s.entry_count().unwrap(), 0);
    }

    #[test]
    fn keyword_index_paper_fig2() {
        // Fig 1/2: usernames james, maria, mary, jamie, mario — here via a
        // keyword index on a list field instead; check postings grouping.
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "summary",
            IndexKind::Keyword,
        );
        idx.insert(
            &record! {"id" => 1i64, "summary" => "great product value"},
            &Value::Int64(1),
        )
        .unwrap();
        idx.insert(
            &record! {"id" => 2i64, "summary" => "great gift"},
            &Value::Int64(2),
        )
        .unwrap();
        assert_eq!(
            idx.postings(&Value::from("great")).unwrap(),
            vec![Value::Int64(1), Value::Int64(2)]
        );
        assert_eq!(
            idx.postings(&Value::from("value")).unwrap(),
            vec![Value::Int64(1)]
        );
        assert_eq!(
            idx.postings(&Value::from("absent")).unwrap(),
            Vec::<Value>::new()
        );
    }

    #[test]
    fn ngram_index_paper_fig2() {
        // Fig 2: inverted lists for the 2-grams of the username field.
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "username",
            IndexKind::NGram(2),
        );
        let users = [
            (1i64, "james"),
            (2, "mary"),
            (3, "mario"),
            (4, "jamie"),
            (5, "maria"),
        ];
        for (id, name) in users {
            idx.insert(&record! {"id" => id, "username" => name}, &Value::Int64(id))
                .unwrap();
        }
        // Fig 2: list("ma") = {2, 3, 5}; list("ja") = {1, 4}; list("am") = {1, 4}.
        assert_eq!(
            idx.postings(&Value::from("ma")).unwrap(),
            vec![Value::Int64(2), Value::Int64(3), Value::Int64(5)]
        );
        assert_eq!(
            idx.postings(&Value::from("ja")).unwrap(),
            vec![Value::Int64(1), Value::Int64(4)]
        );
        assert_eq!(
            idx.postings(&Value::from("am")).unwrap(),
            vec![Value::Int64(1), Value::Int64(4)]
        );
    }

    #[test]
    fn t_occurrence_paper_fig3() {
        // Query "marla", 2-grams {ma, ar, rl, la}, k = 1 → T = 2 →
        // candidates {2, 3, 5}.
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "username",
            IndexKind::NGram(2),
        );
        for (id, name) in [
            (1i64, "james"),
            (2, "mary"),
            (3, "mario"),
            (4, "jamie"),
            (5, "maria"),
        ] {
            idx.insert(&record! {"id" => id, "username" => name}, &Value::Int64(id))
                .unwrap();
        }
        let query_tokens: Vec<Value> = asterix_simfn::tokenize::gram_tokens_distinct("marla", 2)
            .into_iter()
            .map(Value::String)
            .collect();
        let t = asterix_simfn::edit_distance_t_bound(query_tokens.len(), 1, 2);
        assert_eq!(t, 2);
        let candidates = idx.t_occurrence(&query_tokens, t as usize).unwrap();
        assert_eq!(
            candidates,
            vec![Value::Int64(2), Value::Int64(3), Value::Int64(5)]
        );
    }

    /// The rank-array path must return exactly the scalar candidates (same
    /// order), across mutations (generation invalidation of the rank
    /// dictionary) and on both adaptive branches.
    #[test]
    fn t_occurrence_ranked_equals_scalar() {
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "username",
            IndexKind::NGram(2),
        );
        for (id, name) in [
            (1i64, "james"),
            (2, "mary"),
            (3, "mario"),
            (4, "jamie"),
            (5, "maria"),
        ] {
            idx.insert(&record! {"id" => id, "username" => name}, &Value::Int64(id))
                .unwrap();
        }
        let query_tokens: Vec<Value> = asterix_simfn::tokenize::gram_tokens_distinct("marla", 2)
            .into_iter()
            .map(Value::String)
            .collect();
        for t in 1..=3usize {
            assert_eq!(
                idx.t_occurrence_ranked(&query_tokens, t).unwrap(),
                idx.t_occurrence(&query_tokens, t).unwrap(),
                "t={t}"
            );
        }
        // Mutate: the rank dictionary must invalidate with the generation.
        idx.insert(
            &record! {"id" => 9i64, "username" => "marla"},
            &Value::Int64(9),
        )
        .unwrap();
        assert_eq!(
            idx.t_occurrence_ranked(&query_tokens, 2).unwrap(),
            idx.t_occurrence(&query_tokens, 2).unwrap()
        );
        let ranked = idx.t_occurrence_ranked(&query_tokens, 2).unwrap();
        assert!(ranked.contains(&Value::Int64(9)));
    }

    /// Skewed lists trigger the DivideSkip branch (some list >= 64 long);
    /// the bitset-probed rank merge must match the scalar DivideSkip,
    /// including candidate order.
    #[test]
    fn t_occurrence_ranked_divide_skip_branch_equals_scalar() {
        let mut idx =
            InvertedIndex::new(cache(), StorageConfig::tiny(), "summary", IndexKind::Keyword);
        for id in 0..100i64 {
            // "common" appears everywhere (list length 100 >= 64); rarer
            // tokens on a few records each.
            let text = format!("common rare{} rare{}", id % 7, id % 3);
            idx.insert(&record! {"id" => id, "summary" => text.as_str()}, &Value::Int64(id))
                .unwrap();
        }
        let tokens = [
            Value::from("common"),
            Value::from("rare2"),
            Value::from("rare1"),
        ];
        for t in 2..=3usize {
            assert_eq!(
                idx.t_occurrence_ranked(&tokens, t).unwrap(),
                idx.t_occurrence(&tokens, t).unwrap(),
                "t={t}"
            );
        }
        // Repeat probes are served from the cached rank arrays/bitsets and
        // still agree.
        assert_eq!(
            idx.t_occurrence_ranked(&tokens, 2).unwrap(),
            idx.t_occurrence(&tokens, 2).unwrap()
        );
    }

    #[test]
    fn keyword_on_list_field() {
        let mut idx =
            InvertedIndex::new(cache(), StorageConfig::tiny(), "tags", IndexKind::Keyword);
        let rec = Value::record(vec![
            ("id".into(), Value::Int64(1)),
            (
                "tags".into(),
                Value::OrderedList(vec![Value::from("b"), Value::from("a"), Value::from("b")]),
            ),
        ]);
        idx.insert(&rec, &Value::Int64(1)).unwrap();
        assert_eq!(
            idx.postings(&Value::from("a")).unwrap(),
            vec![Value::Int64(1)]
        );
        assert_eq!(
            idx.postings(&Value::from("b")).unwrap(),
            vec![Value::Int64(1)]
        );
        // Duplicates collapsed: 2 distinct tokens total.
        assert_eq!(idx.entry_count().unwrap(), 2);
    }

    #[test]
    fn delete_removes_postings() {
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "summary",
            IndexKind::Keyword,
        );
        let rec = record! {"id" => 1i64, "summary" => "hello world"};
        idx.insert(&rec, &Value::Int64(1)).unwrap();
        idx.delete(&rec, &Value::Int64(1)).unwrap();
        assert_eq!(
            idx.postings(&Value::from("hello")).unwrap(),
            Vec::<Value>::new()
        );
    }

    #[test]
    #[should_panic]
    fn inverted_rejects_btree_kind() {
        InvertedIndex::new(cache(), StorageConfig::tiny(), "f", IndexKind::BTree);
    }

    fn keyword_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(
            cache(),
            StorageConfig::tiny(),
            "summary",
            IndexKind::Keyword,
        );
        for (id, text) in [
            (1i64, "great product value"),
            (2, "great gift"),
            (3, "awful product"),
        ] {
            idx.insert(&record! {"id" => id, "summary" => text}, &Value::Int64(id))
                .unwrap();
        }
        idx
    }

    #[test]
    fn postings_cache_hit_returns_same_list() {
        let idx = keyword_index();
        let counters = crate::QueryCounters::handle();
        let _scope = counters.enter();
        let first = idx.postings_shared(&Value::from("great")).unwrap();
        let second = idx.postings_shared(&Value::from("great")).unwrap();
        assert_eq!(first, second);
        // The second probe is a hit on the very Arc installed by the first.
        assert!(Arc::ptr_eq(&first, &second));
        let p = counters.snapshot();
        assert_eq!(p.postings_cache_misses, 1);
        assert_eq!(p.postings_cache_hits, 1);
        // Elements are counted once: the hit re-read nothing.
        assert_eq!(p.inverted_elements_read, 2);
    }

    #[test]
    fn postings_cache_invalidated_by_insert() {
        let mut idx = keyword_index();
        assert_eq!(
            idx.postings(&Value::from("great")).unwrap(),
            vec![Value::Int64(1), Value::Int64(2)]
        );
        idx.insert(
            &record! {"id" => 4i64, "summary" => "great stuff"},
            &Value::Int64(4),
        )
        .unwrap();
        assert_eq!(
            idx.postings(&Value::from("great")).unwrap(),
            vec![Value::Int64(1), Value::Int64(2), Value::Int64(4)]
        );
    }

    #[test]
    fn postings_cache_invalidated_by_delete() {
        let mut idx = keyword_index();
        assert_eq!(
            idx.postings(&Value::from("product")).unwrap(),
            vec![Value::Int64(1), Value::Int64(3)]
        );
        idx.delete(
            &record! {"id" => 1i64, "summary" => "great product value"},
            &Value::Int64(1),
        )
        .unwrap();
        assert_eq!(
            idx.postings(&Value::from("product")).unwrap(),
            vec![Value::Int64(3)]
        );
    }

    #[test]
    fn postings_cache_invalidated_by_flush_and_merge() {
        let mut idx = keyword_index();
        // Warm the cache, then flush: generation changes, entries drop.
        assert_eq!(idx.postings(&Value::from("gift")).unwrap(), vec![Value::Int64(2)]);
        idx.flush().unwrap();
        assert_eq!(idx.postings(&Value::from("gift")).unwrap(), vec![Value::Int64(2)]);
        // Delete + flush + merge: the tombstone disappears and the cached
        // list must still be correct afterwards.
        idx.delete(&record! {"id" => 2i64, "summary" => "great gift"}, &Value::Int64(2))
            .unwrap();
        idx.flush().unwrap();
        idx.tree.merge_all().unwrap();
        assert_eq!(
            idx.postings(&Value::from("gift")).unwrap(),
            Vec::<Value>::new()
        );
        assert_eq!(
            idx.postings(&Value::from("great")).unwrap(),
            vec![Value::Int64(1)]
        );
    }

    #[test]
    fn postings_cache_eviction_keeps_answers_correct() {
        let mut config = StorageConfig::tiny();
        config.postings_cache_entries = 2;
        let mut idx = InvertedIndex::new(cache(), config, "summary", IndexKind::Keyword);
        for id in 0..8i64 {
            idx.insert(
                &record! {"id" => id, "summary" => format!("tok{id} shared")},
                &Value::Int64(id),
            )
            .unwrap();
        }
        // Probe more distinct tokens than the capacity, twice over.
        for _ in 0..2 {
            for id in 0..8i64 {
                assert_eq!(
                    idx.postings(&Value::from(format!("tok{id}"))).unwrap(),
                    vec![Value::Int64(id)]
                );
            }
        }
        assert_eq!(idx.postings(&Value::from("shared")).unwrap().len(), 8);
    }

    #[test]
    fn postings_cache_disabled_at_zero_capacity() {
        let mut config = StorageConfig::tiny();
        config.postings_cache_entries = 0;
        let mut idx = InvertedIndex::new(cache(), config, "summary", IndexKind::Keyword);
        idx.insert(
            &record! {"id" => 1i64, "summary" => "hello world"},
            &Value::Int64(1),
        )
        .unwrap();
        let counters = crate::QueryCounters::handle();
        let _scope = counters.enter();
        for _ in 0..3 {
            assert_eq!(
                idx.postings(&Value::from("hello")).unwrap(),
                vec![Value::Int64(1)]
            );
        }
        let p = counters.snapshot();
        assert_eq!(p.postings_cache_hits, 0);
        assert_eq!(p.postings_cache_misses, 0);
        // Every probe re-reads the single-element list.
        assert_eq!(p.inverted_elements_read, 3);
    }
}
