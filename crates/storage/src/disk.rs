//! The simulated disk: a set of append-only page files with I/O counters.
//!
//! The reproduction runs the paper's cluster on one machine (see
//! DESIGN.md substitution #4), so "disk" is a process-wide page store.
//! I/O counts — not wall-clock seek times — are the first-class metric;
//! they drive the buffer-cache experiments and the index-size accounting
//! of Table 5.
//!
//! Every read and append consults the optional [`FaultInjector`] first,
//! so storage failures surface as typed [`IoError`]s that propagate up
//! through cache → component → LSM → index instead of panicking.

use crate::fault::{FaultInjector, IoError, IoOp};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one page file (one LSM component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Simulated disk shared by all partitions of a node.
#[derive(Debug, Default)]
pub struct Disk {
    files: Mutex<HashMap<FileId, Vec<Bytes>>>,
    next_file: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    fault: Mutex<Option<Arc<FaultInjector>>>,
}

impl Disk {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the fault injector consulted by every I/O.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.fault.lock() = Some(injector);
    }

    /// Remove the fault injector; subsequent I/O always succeeds.
    pub fn clear_fault_injector(&self) {
        *self.fault.lock() = None;
    }

    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.lock().clone()
    }

    /// Consult the injector for a (possibly file-less) operation. The LSM
    /// layer uses this for [`IoOp::Flush`] checks before building a run.
    pub fn fault_check(&self, op: IoOp, file: Option<FileId>) -> Result<(), IoError> {
        match &*self.fault.lock() {
            Some(inj) => inj.check(op, file),
            None => Ok(()),
        }
    }

    /// Create a new empty file.
    pub fn create(&self) -> FileId {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed));
        self.files.lock().insert(id, Vec::new());
        id
    }

    /// Append a page to a file, returning its page number.
    pub fn append(&self, file: FileId, page: Bytes) -> Result<u32, IoError> {
        self.fault_check(IoOp::Append, Some(file))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut files = self.files.lock();
        let pages = files.get_mut(&file).ok_or_else(|| {
            IoError::permanent(format!("append to deleted file {}", file.0))
        })?;
        pages.push(page);
        Ok((pages.len() - 1) as u32)
    }

    /// Read a page (counted as one physical I/O). `Ok(None)` means the
    /// page does not exist; `Err` is a (possibly injected) device fault.
    pub fn read(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError> {
        self.fault_check(IoOp::Read, Some(file))?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .files
            .lock()
            .get(&file)
            .and_then(|pages| pages.get(page_no as usize).cloned()))
    }

    /// Drop a file (after a merge supersedes its component).
    pub fn delete(&self, file: FileId) {
        self.files.lock().remove(&file);
    }

    pub fn file_pages(&self, file: FileId) -> u32 {
        self.files.lock().get(&file).map_or(0, |p| p.len() as u32)
    }

    pub fn file_bytes(&self, file: FileId) -> u64 {
        self.files
            .lock()
            .get(&file)
            .map_or(0, |p| p.iter().map(|b| b.len() as u64).sum())
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .lock()
            .values()
            .map(|pages| pages.iter().map(|b| b.len() as u64).sum::<u64>())
            .sum()
    }

    pub fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    pub fn physical_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;

    #[test]
    fn create_append_read() {
        let d = Disk::new();
        let f = d.create();
        let p0 = d.append(f, Bytes::from_static(b"page0")).unwrap();
        let p1 = d.append(f, Bytes::from_static(b"page1")).unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"page0");
        assert_eq!(d.read(f, 1).unwrap().unwrap().as_ref(), b"page1");
        assert_eq!(d.read(f, 2).unwrap(), None);
        assert_eq!(d.physical_reads(), 3);
        assert_eq!(d.physical_writes(), 2);
    }

    #[test]
    fn delete_frees_space() {
        let d = Disk::new();
        let f = d.create();
        d.append(f, Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(d.total_bytes(), 10);
        d.delete(f);
        assert_eq!(d.total_bytes(), 0);
        assert_eq!(d.read(f, 0).unwrap(), None);
    }

    #[test]
    fn distinct_files() {
        let d = Disk::new();
        let f1 = d.create();
        let f2 = d.create();
        assert_ne!(f1, f2);
        d.append(f1, Bytes::from_static(b"a")).unwrap();
        assert_eq!(d.file_pages(f1), 1);
        assert_eq!(d.file_pages(f2), 0);
    }

    #[test]
    fn append_to_deleted_file_is_error_not_panic() {
        let d = Disk::new();
        let f = d.create();
        d.delete(f);
        let err = d.append(f, Bytes::from_static(b"x")).unwrap_err();
        assert!(!err.transient);
        assert!(err.message.contains("deleted file"));
    }

    #[test]
    fn injected_read_fault_surfaces() {
        let d = Disk::new();
        let f = d.create();
        d.append(f, Bytes::from_static(b"x")).unwrap();
        d.set_fault_injector(Arc::new(FaultInjector::new(7).with_rule(FaultRule {
            op: IoOp::Read,
            file: Some(f),
            nth: 1,
            transient: true,
        })));
        assert!(d.read(f, 0).is_err());
        // Transient: the retry succeeds and the counters only saw one
        // physical read (the failed attempt never reached the platter).
        assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"x");
        assert_eq!(d.physical_reads(), 1);
        d.clear_fault_injector();
        assert!(d.fault_injector().is_none());
    }
}
