//! The simulated disk: a set of append-only page files with I/O counters.
//!
//! The reproduction runs the paper's cluster on one machine (see
//! DESIGN.md substitution #4), so "disk" is a process-wide page store.
//! I/O counts — not wall-clock seek times — are the first-class metric;
//! they drive the buffer-cache experiments and the index-size accounting
//! of Table 5.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one page file (one LSM component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Simulated disk shared by all partitions of a node.
#[derive(Debug, Default)]
pub struct Disk {
    files: Mutex<HashMap<FileId, Vec<Bytes>>>,
    next_file: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Disk {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new empty file.
    pub fn create(&self) -> FileId {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed));
        self.files.lock().insert(id, Vec::new());
        id
    }

    /// Append a page to a file, returning its page number.
    pub fn append(&self, file: FileId, page: Bytes) -> u32 {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut files = self.files.lock();
        let pages = files.get_mut(&file).expect("append to deleted file");
        pages.push(page);
        (pages.len() - 1) as u32
    }

    /// Read a page (counted as one physical I/O).
    pub fn read(&self, file: FileId, page_no: u32) -> Option<Bytes> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.files
            .lock()
            .get(&file)
            .and_then(|pages| pages.get(page_no as usize).cloned())
    }

    /// Drop a file (after a merge supersedes its component).
    pub fn delete(&self, file: FileId) {
        self.files.lock().remove(&file);
    }

    pub fn file_pages(&self, file: FileId) -> u32 {
        self.files.lock().get(&file).map_or(0, |p| p.len() as u32)
    }

    pub fn file_bytes(&self, file: FileId) -> u64 {
        self.files
            .lock()
            .get(&file)
            .map_or(0, |p| p.iter().map(|b| b.len() as u64).sum())
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .lock()
            .values()
            .map(|pages| pages.iter().map(|b| b.len() as u64).sum::<u64>())
            .sum()
    }

    pub fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    pub fn physical_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_append_read() {
        let d = Disk::new();
        let f = d.create();
        let p0 = d.append(f, Bytes::from_static(b"page0"));
        let p1 = d.append(f, Bytes::from_static(b"page1"));
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(d.read(f, 0).unwrap().as_ref(), b"page0");
        assert_eq!(d.read(f, 1).unwrap().as_ref(), b"page1");
        assert_eq!(d.read(f, 2), None);
        assert_eq!(d.physical_reads(), 3);
        assert_eq!(d.physical_writes(), 2);
    }

    #[test]
    fn delete_frees_space() {
        let d = Disk::new();
        let f = d.create();
        d.append(f, Bytes::from_static(b"0123456789"));
        assert_eq!(d.total_bytes(), 10);
        d.delete(f);
        assert_eq!(d.total_bytes(), 0);
        assert_eq!(d.read(f, 0), None);
    }

    #[test]
    fn distinct_files() {
        let d = Disk::new();
        let f1 = d.create();
        let f2 = d.create();
        assert_ne!(f1, f2);
        d.append(f1, Bytes::from_static(b"a"));
        assert_eq!(d.file_pages(f1), 1);
        assert_eq!(d.file_pages(f2), 0);
    }
}
