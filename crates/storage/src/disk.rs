//! The disk: a set of append-only page files with I/O counters, behind a
//! pluggable [`PageStore`] backend.
//!
//! Two backends implement the same page-file contract:
//!
//! * [`MemStore`] (the default, [`Disk::new`]) — a process-wide
//!   `HashMap<FileId, Vec<Bytes>>`. Nothing survives the process; unit
//!   tests and `--quick` benches use it because it is fast and needs no
//!   directory.
//! * [`FileStore`] ([`Disk::file_backed`]) — one append-only file per
//!   LSM component under a configurable data directory. Every page is
//!   framed as `len ‖ crc32 ‖ payload`; the CRC is verified on read and a
//!   mismatch surfaces as a typed corruption error
//!   ([`IoError::corruption`], [`crate::fault::IoErrorKind::Corruption`]),
//!   never as silently wrong bytes. Files are fsynced when a component is
//!   sealed ([`Disk::sync`]), which is what lets the manifest reference
//!   them after a crash.
//!
//! I/O counts — not wall-clock seek times — remain the first-class
//! metric; they drive the buffer-cache experiments and the index-size
//! accounting of Table 5, and they are identical across backends.
//!
//! Every read and append consults the optional [`FaultInjector`] first,
//! so storage failures surface as typed [`IoError`]s that propagate up
//! through cache → component → LSM → index instead of panicking.
//!
//! Deleting a file also invalidates its pages in every
//! [`crate::cache::BufferCache`] registered via [`Disk::register_cache`]
//! (caches built with [`crate::cache::BufferCache::shared`] register
//! themselves), so a deleted component's pages never linger in cache
//! until LRU churn happens to evict them.

use crate::fault::{FaultInjector, IoError, IoOp};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Identifies one page file (one LSM component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` checksum), table
/// driven. Hand-rolled because the workspace vendors no checksum crate;
/// the WAL and the file-backed page store both frame their records with
/// it.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The backend contract behind [`Disk`]: an append-only page file store.
/// Implementations do **not** consult the fault injector or bump I/O
/// counters — the [`Disk`] facade does both before delegating.
pub trait PageStore: Send + Sync + Debug {
    /// Create the (empty) file for a pre-allocated id.
    fn create(&self, file: FileId) -> Result<(), IoError>;
    /// Append one page, returning its page number.
    fn append(&self, file: FileId, page: Bytes) -> Result<u32, IoError>;
    /// Read one page; `Ok(None)` when the file or page does not exist.
    fn read(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError>;
    /// Drop a file (best-effort; a missing file is not an error).
    fn delete(&self, file: FileId);
    /// Force the file's pages to stable storage (no-op for [`MemStore`]).
    fn sync(&self, file: FileId) -> Result<(), IoError>;
    /// Number of pages in the file (0 when absent).
    fn file_pages(&self, file: FileId) -> u32;
    /// Total payload bytes in the file (0 when absent).
    fn file_bytes(&self, file: FileId) -> u64;
    /// Total payload bytes across all live files.
    fn total_bytes(&self) -> u64;
    /// Every live file id, unordered.
    fn list_files(&self) -> Vec<FileId>;
    /// True when pages survive a process restart (drives fsync
    /// accounting: a memory store never fsyncs).
    fn is_durable(&self) -> bool;
}

/// The in-memory backend: pages live in a `HashMap` and die with the
/// process. This is the seed behaviour, kept for unit tests and
/// `--quick` benches.
#[derive(Debug, Default)]
pub struct MemStore {
    files: Mutex<HashMap<FileId, Vec<Bytes>>>,
}

impl PageStore for MemStore {
    fn create(&self, file: FileId) -> Result<(), IoError> {
        self.files.lock().insert(file, Vec::new());
        Ok(())
    }

    fn append(&self, file: FileId, page: Bytes) -> Result<u32, IoError> {
        let mut files = self.files.lock();
        let pages = files
            .get_mut(&file)
            .ok_or_else(|| IoError::permanent(format!("append to deleted file {}", file.0)))?;
        pages.push(page);
        Ok((pages.len() - 1) as u32)
    }

    fn read(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError> {
        Ok(self
            .files
            .lock()
            .get(&file)
            .and_then(|pages| pages.get(page_no as usize).cloned()))
    }

    fn delete(&self, file: FileId) {
        self.files.lock().remove(&file);
    }

    fn sync(&self, _file: FileId) -> Result<(), IoError> {
        Ok(())
    }

    fn file_pages(&self, file: FileId) -> u32 {
        self.files.lock().get(&file).map_or(0, |p| p.len() as u32)
    }

    fn file_bytes(&self, file: FileId) -> u64 {
        self.files
            .lock()
            .get(&file)
            .map_or(0, |p| p.iter().map(|b| b.len() as u64).sum())
    }

    fn total_bytes(&self) -> u64 {
        self.files
            .lock()
            .values()
            .map(|pages| pages.iter().map(|b| b.len() as u64).sum::<u64>())
            .sum()
    }

    fn list_files(&self) -> Vec<FileId> {
        self.files.lock().keys().copied().collect()
    }

    fn is_durable(&self) -> bool {
        false
    }
}

/// Byte length of a page frame header: `u32 payload_len ‖ u32 crc32`.
const FRAME_HEADER: u64 = 8;

#[derive(Debug)]
struct FileEntry {
    handle: File,
    /// `(payload offset, payload len)` per page, in page order.
    pages: Vec<(u64, u32)>,
    /// Total payload bytes (frame headers excluded).
    bytes: u64,
    /// Write position for the next frame.
    end: u64,
}

/// The durable backend: one append-only file per [`FileId`] under a data
/// directory, named `f<id>.cmp`. Pages are framed
/// `u32 len ‖ u32 crc32(payload) ‖ payload` (little-endian); the CRC is
/// verified on every read. Appends buffer in the OS page cache until
/// [`PageStore::sync`] (fsync-on-seal) — a component is only referenced
/// by the manifest after it has been sealed, so a crash can only tear
/// files the manifest does not yet know about.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    files: Mutex<HashMap<FileId, FileEntry>>,
}

fn os_err(context: &str, e: std::io::Error) -> IoError {
    IoError::permanent(format!("{context}: {e}"))
}

/// Result of walking a component file's frames: the `(offset, len)` of
/// each complete page, total payload bytes, end offset of the last
/// complete frame, and whether a torn tail followed it.
type FrameScan = (Vec<(u64, u32)>, u64, u64, bool);

impl FileStore {
    fn path(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("f{}.cmp", file.0))
    }

    /// Open (creating if needed) a store rooted at `dir`, scanning any
    /// existing `f<id>.cmp` files. Returns the store and the highest file
    /// id seen (for [`Disk`]'s id allocator). A torn final frame — the
    /// signature of a crash mid-append, before the seal fsync — is
    /// truncated away; sealed files are never torn, and a manifest that
    /// references a truncated file is detected at recovery by its
    /// recorded page count.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(FileStore, u64), IoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| os_err("create data dir", e))?;
        let mut files = HashMap::new();
        let mut max_id = 0u64;
        let entries = std::fs::read_dir(&dir).map_err(|e| os_err("read data dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| os_err("read data dir entry", e))?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix('f'))
                .and_then(|n| n.strip_suffix(".cmp"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue; // not a component file (wal/, MANIFEST, …)
            };
            let path = entry.path();
            let mut handle = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| os_err("open component file", e))?;
            let (pages, bytes, end, torn) = Self::scan_frames(&mut handle)?;
            if torn {
                handle
                    .set_len(end)
                    .map_err(|e| os_err("truncate torn component tail", e))?;
            }
            max_id = max_id.max(id);
            files.insert(
                FileId(id),
                FileEntry {
                    handle,
                    pages,
                    bytes,
                    end,
                },
            );
        }
        Ok((
            FileStore {
                dir,
                files: Mutex::new(files),
            },
            max_id,
        ))
    }

    /// Walk the frames of an open file: `(pages, payload bytes, end
    /// offset of the last complete frame, torn-tail?)`. Only frame
    /// *structure* is validated here; payload CRCs are checked on read.
    fn scan_frames(handle: &mut File) -> Result<FrameScan, IoError> {
        let len = handle
            .metadata()
            .map_err(|e| os_err("stat component file", e))?
            .len();
        let mut buf = Vec::with_capacity(len as usize);
        handle
            .read_to_end(&mut buf)
            .map_err(|e| os_err("read component file", e))?;
        let mut pages = Vec::new();
        let mut bytes = 0u64;
        let mut off = 0u64;
        loop {
            let rest = &buf[off as usize..];
            if rest.is_empty() {
                return Ok((pages, bytes, off, false));
            }
            if rest.len() < FRAME_HEADER as usize {
                return Ok((pages, bytes, off, true)); // torn header
            }
            let plen = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as u64;
            if (rest.len() as u64) < FRAME_HEADER + plen {
                return Ok((pages, bytes, off, true)); // torn payload
            }
            pages.push((off + FRAME_HEADER, plen as u32));
            bytes += plen;
            off += FRAME_HEADER + plen;
        }
    }
}

impl PageStore for FileStore {
    fn create(&self, file: FileId) -> Result<(), IoError> {
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(file))
            .map_err(|e| os_err("create component file", e))?;
        self.files.lock().insert(
            file,
            FileEntry {
                handle,
                pages: Vec::new(),
                bytes: 0,
                end: 0,
            },
        );
        Ok(())
    }

    fn append(&self, file: FileId, page: Bytes) -> Result<u32, IoError> {
        use std::os::unix::fs::FileExt;
        let mut files = self.files.lock();
        let entry = files
            .get_mut(&file)
            .ok_or_else(|| IoError::permanent(format!("append to deleted file {}", file.0)))?;
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + page.len());
        frame.extend_from_slice(&(page.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&page).to_le_bytes());
        frame.extend_from_slice(&page);
        entry
            .handle
            .write_all_at(&frame, entry.end)
            .map_err(|e| os_err("append page", e))?;
        entry.pages.push((entry.end + FRAME_HEADER, page.len() as u32));
        entry.bytes += page.len() as u64;
        entry.end += frame.len() as u64;
        Ok((entry.pages.len() - 1) as u32)
    }

    fn read(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError> {
        use std::os::unix::fs::FileExt;
        let files = self.files.lock();
        let Some(entry) = files.get(&file) else {
            return Ok(None);
        };
        let Some(&(off, plen)) = entry.pages.get(page_no as usize) else {
            return Ok(None);
        };
        let mut payload = vec![0u8; plen as usize];
        entry
            .handle
            .read_exact_at(&mut payload, off)
            .map_err(|e| os_err("read page", e))?;
        let mut header = [0u8; 4];
        entry
            .handle
            .read_exact_at(&mut header, off - 4)
            .map_err(|e| os_err("read page header", e))?;
        let stored = u32::from_le_bytes(header);
        let computed = crc32(&payload);
        if stored != computed {
            return Err(IoError::corruption(format!(
                "page checksum mismatch in file {} page {page_no}: stored {stored:#010x}, computed {computed:#010x}",
                file.0
            )));
        }
        Ok(Some(Bytes::from(payload)))
    }

    fn delete(&self, file: FileId) {
        if self.files.lock().remove(&file).is_some() {
            let _ = std::fs::remove_file(self.path(file));
        }
    }

    fn sync(&self, file: FileId) -> Result<(), IoError> {
        let files = self.files.lock();
        let Some(entry) = files.get(&file) else {
            return Ok(()); // deleted while sealing: nothing to persist
        };
        entry.handle.sync_all().map_err(|e| os_err("fsync", e))
    }

    fn file_pages(&self, file: FileId) -> u32 {
        self.files.lock().get(&file).map_or(0, |e| e.pages.len() as u32)
    }

    fn file_bytes(&self, file: FileId) -> u64 {
        self.files.lock().get(&file).map_or(0, |e| e.bytes)
    }

    fn total_bytes(&self) -> u64 {
        self.files.lock().values().map(|e| e.bytes).sum()
    }

    fn list_files(&self) -> Vec<FileId> {
        self.files.lock().keys().copied().collect()
    }

    fn is_durable(&self) -> bool {
        true
    }
}

/// The disk shared by all indexes of one partition: a [`PageStore`]
/// backend plus I/O counters, the fault-injection hook, and cache
/// delete-invalidation fan-out.
#[derive(Debug)]
pub struct Disk {
    backend: Box<dyn PageStore>,
    /// Directory of a file-backed disk; `None` for the in-memory backend.
    data_dir: Option<PathBuf>,
    next_file: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    fault: Mutex<Option<Arc<FaultInjector>>>,
    /// Buffer caches to invalidate on [`Disk::delete`] (weak: the cache
    /// owns the disk, not the other way around).
    caches: Mutex<Vec<Weak<crate::cache::BufferCache>>>,
}

impl Default for Disk {
    fn default() -> Self {
        Self::new()
    }
}

impl Disk {
    /// An in-memory disk (the seed behaviour): fast, test-friendly,
    /// nothing survives the process.
    pub fn new() -> Self {
        Disk {
            backend: Box::new(MemStore::default()),
            data_dir: None,
            next_file: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fault: Mutex::new(None),
            caches: Mutex::new(Vec::new()),
        }
    }

    /// A file-backed disk rooted at `dir` (created if absent). Existing
    /// component files are scanned and re-exposed under their original
    /// [`FileId`]s — the manifest decides which of them are live.
    pub fn file_backed(dir: impl Into<PathBuf>) -> Result<Self, IoError> {
        let (store, max_id) = FileStore::open(dir)?;
        let dir = store.dir.clone();
        Ok(Disk {
            backend: Box::new(store),
            data_dir: Some(dir),
            next_file: AtomicU64::new(max_id + 1),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fault: Mutex::new(None),
            caches: Mutex::new(Vec::new()),
        })
    }

    /// The data directory of a file-backed disk; `None` when in-memory.
    pub fn data_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref()
    }

    /// True when this disk's pages survive a restart.
    pub fn is_durable(&self) -> bool {
        self.backend.is_durable()
    }

    /// Install (or replace) the fault injector consulted by every I/O.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.fault.lock() = Some(injector);
    }

    /// Remove the fault injector; subsequent I/O always succeeds.
    pub fn clear_fault_injector(&self) {
        *self.fault.lock() = None;
    }

    /// The currently installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.lock().clone()
    }

    /// Consult the injector for a (possibly file-less) operation. The LSM
    /// layer uses this for [`IoOp::Flush`] checks before building a run;
    /// the WAL and manifest use it for their `WalAppend`/`WalFlush`/
    /// `ManifestCommit` checks.
    pub fn fault_check(&self, op: IoOp, file: Option<FileId>) -> Result<(), IoError> {
        match &*self.fault.lock() {
            Some(inj) => inj.check(op, file),
            None => Ok(()),
        }
    }

    /// Register a buffer cache for delete-invalidation: when a file is
    /// deleted, its pages are dropped from every registered cache
    /// immediately instead of lingering until LRU churn evicts them.
    pub fn register_cache(&self, cache: &Arc<crate::cache::BufferCache>) {
        let mut caches = self.caches.lock();
        caches.retain(|w| w.strong_count() > 0);
        caches.push(Arc::downgrade(cache));
    }

    /// Create a new empty file.
    pub fn create(&self) -> Result<FileId, IoError> {
        let id = FileId(self.next_file.fetch_add(1, Ordering::Relaxed));
        self.backend.create(id)?;
        Ok(id)
    }

    /// Append a page to a file, returning its page number.
    pub fn append(&self, file: FileId, page: Bytes) -> Result<u32, IoError> {
        self.fault_check(IoOp::Append, Some(file))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.backend.append(file, page)
    }

    /// Read a page (counted as one physical I/O). `Ok(None)` means the
    /// page does not exist; `Err` is a (possibly injected) device fault
    /// or — on the file-backed store — a typed corruption error when the
    /// page's CRC32 does not match.
    pub fn read(&self, file: FileId, page_no: u32) -> Result<Option<Bytes>, IoError> {
        self.fault_check(IoOp::Read, Some(file))?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.backend.read(file, page_no)
    }

    /// Drop a file (after a merge supersedes its component), invalidating
    /// its pages in every registered buffer cache.
    pub fn delete(&self, file: FileId) {
        self.backend.delete(file);
        let caches = self.caches.lock();
        for weak in caches.iter() {
            if let Some(cache) = weak.upgrade() {
                cache.invalidate_file(file);
            }
        }
    }

    /// Force a file's pages to stable storage (fsync-on-seal). A no-op
    /// on the in-memory backend; on the file-backed store this is the
    /// barrier after which the manifest may reference the component.
    pub fn sync(&self, file: FileId) -> Result<(), IoError> {
        if self.backend.is_durable() {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.backend.sync(file)
    }

    /// Number of pages in a file (0 when absent).
    pub fn file_pages(&self, file: FileId) -> u32 {
        self.backend.file_pages(file)
    }

    /// Total payload bytes in a file (0 when absent).
    pub fn file_bytes(&self, file: FileId) -> u64 {
        self.backend.file_bytes(file)
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        self.backend.total_bytes()
    }

    /// Every live file id, unordered (recovery's orphan sweep compares
    /// this against the manifest's referenced set).
    pub fn list_files(&self) -> Vec<FileId> {
        self.backend.list_files()
    }

    /// Physical page reads performed (faulted attempts excluded).
    pub fn physical_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page appends performed (faulted attempts excluded).
    pub fn physical_writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Component-seal fsyncs performed (always 0 for the in-memory
    /// backend; WAL fsyncs are counted by the WAL itself).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;

    #[test]
    fn create_append_read() {
        let d = Disk::new();
        let f = d.create().unwrap();
        let p0 = d.append(f, Bytes::from_static(b"page0")).unwrap();
        let p1 = d.append(f, Bytes::from_static(b"page1")).unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 1);
        assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"page0");
        assert_eq!(d.read(f, 1).unwrap().unwrap().as_ref(), b"page1");
        assert_eq!(d.read(f, 2).unwrap(), None);
        assert_eq!(d.physical_reads(), 3);
        assert_eq!(d.physical_writes(), 2);
    }

    #[test]
    fn delete_frees_space() {
        let d = Disk::new();
        let f = d.create().unwrap();
        d.append(f, Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(d.total_bytes(), 10);
        d.delete(f);
        assert_eq!(d.total_bytes(), 0);
        assert_eq!(d.read(f, 0).unwrap(), None);
    }

    #[test]
    fn distinct_files() {
        let d = Disk::new();
        let f1 = d.create().unwrap();
        let f2 = d.create().unwrap();
        assert_ne!(f1, f2);
        d.append(f1, Bytes::from_static(b"a")).unwrap();
        assert_eq!(d.file_pages(f1), 1);
        assert_eq!(d.file_pages(f2), 0);
    }

    #[test]
    fn append_to_deleted_file_is_error_not_panic() {
        let d = Disk::new();
        let f = d.create().unwrap();
        d.delete(f);
        let err = d.append(f, Bytes::from_static(b"x")).unwrap_err();
        assert!(!err.transient);
        assert!(err.message.contains("deleted file"));
    }

    #[test]
    fn injected_read_fault_surfaces() {
        let d = Disk::new();
        let f = d.create().unwrap();
        d.append(f, Bytes::from_static(b"x")).unwrap();
        d.set_fault_injector(Arc::new(FaultInjector::new(7).with_rule(FaultRule {
            op: IoOp::Read,
            file: Some(f),
            nth: 1,
            transient: true,
        })));
        assert!(d.read(f, 0).is_err());
        // Transient: the retry succeeds and the counters only saw one
        // physical read (the failed attempt never reached the platter).
        assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"x");
        assert_eq!(d.physical_reads(), 1);
        d.clear_fault_injector();
        assert!(d.fault_injector().is_none());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asterix_disk_test_{}_{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_backed_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let f;
        {
            let d = Disk::file_backed(&dir).unwrap();
            assert!(d.is_durable());
            f = d.create().unwrap();
            d.append(f, Bytes::from_static(b"alpha")).unwrap();
            d.append(f, Bytes::from_static(b"beta")).unwrap();
            d.sync(f).unwrap();
            assert_eq!(d.fsyncs(), 1);
            assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"alpha");
            assert_eq!(d.file_bytes(f), 9);
        }
        // Reopen: pages survive, ids are preserved, the allocator skips
        // past the recovered maximum.
        let d2 = Disk::file_backed(&dir).unwrap();
        assert_eq!(d2.read(f, 1).unwrap().unwrap().as_ref(), b"beta");
        assert_eq!(d2.file_pages(f), 2);
        let f2 = d2.create().unwrap();
        assert!(f2.0 > f.0, "id allocator must not reuse recovered ids");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backed_detects_corruption() {
        let dir = tmpdir("corrupt");
        let f;
        {
            let d = Disk::file_backed(&dir).unwrap();
            f = d.create().unwrap();
            d.append(f, Bytes::from_static(b"precious payload")).unwrap();
            d.sync(f).unwrap();
        }
        // Flip one payload byte on disk.
        let path = dir.join(format!("f{}.cmp", f.0));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let d = Disk::file_backed(&dir).unwrap();
        let err = d.read(f, 0).unwrap_err();
        assert!(err.is_corruption(), "expected corruption, got {err}");
        assert!(!err.transient);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backed_truncates_torn_tail() {
        let dir = tmpdir("torn");
        let f;
        {
            let d = Disk::file_backed(&dir).unwrap();
            f = d.create().unwrap();
            d.append(f, Bytes::from_static(b"whole page")).unwrap();
            d.append(f, Bytes::from_static(b"doomed page")).unwrap();
            d.sync(f).unwrap();
        }
        // Tear the second frame mid-payload, as a crash mid-append would.
        let path = dir.join(format!("f{}.cmp", f.0));
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let d = Disk::file_backed(&dir).unwrap();
        assert_eq!(d.file_pages(f), 1, "torn frame must be truncated away");
        assert_eq!(d.read(f, 0).unwrap().unwrap().as_ref(), b"whole page");
        assert_eq!(d.read(f, 1).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_invalidates_registered_caches() {
        // Satellite bugfix pin: `Disk::delete` must drop the deleted
        // file's pages from the buffer cache instead of leaving them
        // resident until LRU churn.
        let disk = Arc::new(Disk::new());
        let cache = crate::cache::BufferCache::shared(disk.clone(), 8);
        let f = disk.create().unwrap();
        for i in 0u8..4 {
            disk.append(f, Bytes::from(vec![i; 16])).unwrap();
        }
        for i in 0..4 {
            cache.get(f, i).unwrap();
        }
        assert_eq!(cache.resident_pages(), 4);
        disk.delete(f);
        assert_eq!(
            cache.resident_pages(),
            0,
            "deleted file's pages must leave the cache immediately"
        );
    }
}
