//! Per-query memory budgets (the scheduler's memory ceiling).
//!
//! A shared worker pool removes the natural backpressure that bounded
//! per-query channels used to provide: with stage-at-a-time execution an
//! operator's whole output is buffered before its consumer starts, so a
//! runaway query could balloon until the process OOMs. The budget turns
//! that failure mode into a *typed, per-query* error: the executor creates
//! one [`MemoryBudget`] per admitted query, scopes it onto every worker
//! thread that runs the query's tasks ([`MemoryBudget::enter`], the same
//! thread-local pattern as [`crate::profile::QueryCounters`]), and every
//! allocation site that buffers query data charges it.
//!
//! Charge sites:
//!
//! * connector frame sends (`asterix-hyracks`'s `Router`) — **hard**
//!   charges via [`charge_current`]; exceeding the budget stops the query
//!   with a memory-budget error instead of growing without bound,
//! * postings-cache installs ([`crate::index::InvertedIndex`]) — **soft**
//!   charges via [`try_charge_current`]; exceeding the budget merely skips
//!   caching the list (the query proceeds, just without that shortcut).
//!
//! The accounting is cumulative over the life of one query (a high-water
//! data-volume meter, not an instantaneous residency tracker): under
//! stage-at-a-time execution nearly everything a query produces is
//! buffered at some point, so cumulative bytes are a tight upper bound on
//! peak residency and far cheaper to maintain.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative memory-charge meter for one query, shared by every thread
/// that executes the query's tasks.
#[derive(Debug)]
pub struct MemoryBudget {
    used: AtomicU64,
    limit: u64,
}

impl MemoryBudget {
    /// A budget allowing `limit` bytes of charges. `limit == 0` means
    /// *unlimited* (charges are still counted, never rejected).
    pub fn new(limit: u64) -> Arc<MemoryBudget> {
        Arc::new(MemoryBudget {
            used: AtomicU64::new(0),
            limit,
        })
    }

    /// Bytes charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured ceiling in bytes (`0` = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Charge `bytes` against the budget. Returns `false` when the charge
    /// pushed cumulative usage over the limit (the bytes stay counted so
    /// diagnostics show how far over the query went).
    pub fn charge(&self, bytes: u64) -> bool {
        let after = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.limit == 0 || after <= self.limit
    }

    /// Give back `bytes` previously charged (used when a speculative
    /// charge — e.g. a postings-cache install — is abandoned).
    pub fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Install this budget as the current thread's charge target until the
    /// returned guard drops. Scopes nest; the previous target is restored.
    pub fn enter(self: &Arc<Self>) -> BudgetScope {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        BudgetScope { prev }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<MemoryBudget>>> = const { RefCell::new(None) };
}

/// Guard returned by [`MemoryBudget::enter`]; restores the previous
/// thread-local budget on drop.
pub struct BudgetScope {
    prev: Option<Arc<MemoryBudget>>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Outcome of a hard charge against the current thread's budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeResult {
    /// No budget installed, or the charge fit (or the budget is unlimited).
    Ok,
    /// The charge pushed the budget over its limit; `used` includes the
    /// rejected bytes.
    Exceeded {
        /// Cumulative bytes charged, including this charge.
        used: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

/// Hard-charge `bytes` against the current thread's query budget, if any.
/// Callers that receive [`ChargeResult::Exceeded`] must stop the query.
pub fn charge_current(bytes: u64) -> ChargeResult {
    if bytes == 0 {
        return ChargeResult::Ok;
    }
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some(b) if !b.charge(bytes) => ChargeResult::Exceeded {
            used: b.used(),
            limit: b.limit(),
        },
        _ => ChargeResult::Ok,
    })
}

/// Soft-charge `bytes` against the current thread's query budget. Returns
/// `false` (and un-counts the bytes) when the charge does not fit — the
/// caller should skip the optional allocation rather than fail the query.
pub fn try_charge_current(bytes: u64) -> bool {
    if bytes == 0 {
        return true;
    }
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some(b) => {
            if b.charge(bytes) {
                true
            } else {
                b.release(bytes);
                false
            }
        }
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_charges_always_fit() {
        assert_eq!(charge_current(u64::MAX / 2), ChargeResult::Ok);
        assert!(try_charge_current(u64::MAX / 2));
    }

    #[test]
    fn zero_limit_counts_but_never_rejects() {
        let b = MemoryBudget::new(0);
        let _g = b.enter();
        assert_eq!(charge_current(1 << 40), ChargeResult::Ok);
        assert_eq!(b.used(), 1 << 40);
    }

    #[test]
    fn hard_charge_trips_over_limit() {
        let b = MemoryBudget::new(100);
        let _g = b.enter();
        assert_eq!(charge_current(60), ChargeResult::Ok);
        match charge_current(60) {
            ChargeResult::Exceeded { used, limit } => {
                assert_eq!(used, 120);
                assert_eq!(limit, 100);
            }
            other => panic!("expected Exceeded, got {other:?}"),
        }
    }

    #[test]
    fn soft_charge_rolls_back_on_overflow() {
        let b = MemoryBudget::new(100);
        let _g = b.enter();
        assert!(try_charge_current(80));
        assert!(!try_charge_current(80));
        assert_eq!(b.used(), 80);
        assert!(try_charge_current(20));
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = MemoryBudget::new(0);
        let inner = MemoryBudget::new(0);
        let _o = outer.enter();
        assert_eq!(charge_current(5), ChargeResult::Ok);
        {
            let _i = inner.enter();
            assert_eq!(charge_current(7), ChargeResult::Ok);
        }
        assert_eq!(charge_current(5), ChargeResult::Ok);
        assert_eq!(outer.used(), 10);
        assert_eq!(inner.used(), 7);
    }

    #[test]
    fn threads_charge_their_own_budget() {
        let a = MemoryBudget::new(0);
        let b = MemoryBudget::new(0);
        std::thread::scope(|s| {
            for (budget, n) in [(&a, 5u64), (&b, 7u64)] {
                s.spawn(move || {
                    let _g = budget.enter();
                    for _ in 0..n {
                        charge_current(1);
                    }
                });
            }
        });
        assert_eq!(a.used(), 5);
        assert_eq!(b.used(), 7);
    }
}
