//! # asterix-storage
//!
//! The storage substrate of the reproduction (§2.3 of the paper): datasets
//! are stored per-partition as LSM-based B+-trees (the *primary index*),
//! with optional LSM-based secondary indexes — plain B+-trees, `keyword`
//! inverted indexes (for Jaccard), and `ngram(n)` inverted indexes (for
//! edit distance), per §3.3.
//!
//! Disk is simulated by a page store ([`disk`]) with fixed-size pages
//! (128 KB by default, Table 2) fronted by an LRU buffer cache ([`cache`])
//! whose hit/miss counters make the paper's "sort primary keys before the
//! primary-index search to increase the chance of page cache hits" claim
//! (§4.1.1) measurable rather than anecdotal.
//!
//! Layering:
//!
//! * [`disk::Disk`] — page-granular simulated disk with I/O counters,
//! * [`cache::BufferCache`] — shared LRU page cache,
//! * [`component::RunComponent`] — one immutable sorted run serialized to
//!   pages with a sparse first-key-per-page index,
//! * [`lsm::LsmTree`] — mutable memory component + flushed runs + merges,
//! * [`index`] — typed primary / secondary-B+-tree / inverted indexes on
//!   top of [`lsm::LsmTree`] (inverted indexes use composite
//!   `[token, pk]` keys so postings are contiguous ranges),
//! * [`partition::PartitionStore`] — all indexes of one dataset partition,
//!   with the T-occurrence candidate search used by index plans.

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod component;
pub mod disk;
pub mod events;
pub mod fault;
pub mod index;
pub mod lsm;
pub mod manifest;
pub mod partition;
pub mod profile;
pub mod trace;
pub mod wal;

pub use budget::{BudgetScope, ChargeResult, MemoryBudget};
pub use cache::{BufferCache, CacheStats};
pub use component::{Entry, RunComponent};
pub use disk::{crc32, Disk, FileId};
pub use events::{LsmEvent, LsmEventKind, LsmEventLog};
pub use fault::{crash_point, FaultInjector, FaultRule, IoError, IoErrorKind, IoOp};
pub use index::{index_tokens, InvertedIndex, PrimaryIndex, SecondaryBTreeIndex};
pub use lsm::LsmTree;
pub use manifest::{Manifest, ManifestComponent, ManifestDataset, ManifestIndex};
pub use partition::PartitionStore;
pub use profile::{CounterScope, QueryCounters, StorageProfile};
pub use trace::{SpanGuard, SpanRecord, Trace};
pub use wal::{Wal, WalConfig, WalRecord, WalRecovery};

/// Any error a [`PartitionStore`] operation can produce: a logical ADM
/// error (bad key, unknown index, …) or a device-level I/O fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A logical ADM error (bad key, unknown index, schema mismatch).
    Adm(asterix_adm::AdmError),
    /// A device-level I/O fault or detected corruption.
    Io(IoError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Adm(e) => write!(f, "{e}"),
            StorageError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<asterix_adm::AdmError> for StorageError {
    fn from(e: asterix_adm::AdmError) -> Self {
        StorageError::Adm(e)
    }
}

impl From<IoError> for StorageError {
    fn from(e: IoError) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// True when retrying the operation may succeed (transient I/O fault).
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Io(e) if e.transient)
    }
}

/// Storage configuration (the storage-relevant rows of Table 2).
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// Data page size in bytes (paper: 128 KB).
    pub page_size: usize,
    /// Buffer cache capacity in pages (paper: 2 GB / 128 KB = 16384; we
    /// default far smaller for laptop-scale runs).
    pub buffer_cache_pages: usize,
    /// In-memory component budget per LSM tree in bytes (paper: 1.5 GB per
    /// dataset, shared across its indexes).
    pub mem_component_budget: usize,
    /// Merge all disk components once their count exceeds this.
    pub max_components: usize,
    /// Capacity (distinct tokens) of each inverted index's postings cache.
    /// `0` disables the cache entirely; postings are then re-read from the
    /// LSM tree on every probe.
    pub postings_cache_entries: usize,
    /// Shared sink for LSM lifecycle events (flush/merge/bulk-load
    /// start/end, fault retries). `None` (the default) disables event
    /// recording; an instance with telemetry enabled installs one
    /// [`LsmEventLog`] here so every tree it creates reports into it.
    pub events: Option<std::sync::Arc<LsmEventLog>>,
    /// When set, a merge queues its superseded component files into
    /// [`LsmTree::take_obsolete`] instead of deleting them immediately.
    /// Durable instances set this so obsolete files are reclaimed only
    /// *after* the manifest that stops referencing them is committed —
    /// a crash in between must still find every manifest-referenced
    /// file on disk.
    pub defer_reclaim: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            page_size: 128 * 1024,
            buffer_cache_pages: 256,
            mem_component_budget: 8 * 1024 * 1024,
            max_components: 8,
            postings_cache_entries: 4096,
            events: None,
            defer_reclaim: false,
        }
    }
}

impl StorageConfig {
    /// A tiny configuration that forces frequent flushes and merges —
    /// useful in tests to exercise the multi-component paths.
    pub fn tiny() -> Self {
        StorageConfig {
            page_size: 1024,
            buffer_cache_pages: 8,
            mem_component_budget: 4 * 1024,
            max_components: 3,
            postings_cache_entries: 16,
            events: None,
            defer_reclaim: false,
        }
    }
}
