//! All storage of one dataset partition: the primary LSM B+-tree plus the
//! partition-local secondary indexes, kept in sync on every insert/delete
//! (secondary indexes are co-partitioned with the primary index, §2.3 —
//! the root cause of the broadcast in index-nested-loop joins, §4.2.1).

use crate::cache::BufferCache;
use crate::component::RunComponent;
use crate::disk::FileId;
use crate::fault::IoError;
use crate::index::{InvertedIndex, PrimaryIndex, SecondaryBTreeIndex};
use crate::manifest::{ManifestComponent, ManifestDataset, ManifestIndex};
use crate::{StorageConfig, StorageError};
use asterix_adm::{AdmError, DatasetDef, IndexDef, IndexKind, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One secondary index instance.
#[derive(Debug)]
pub enum SecondaryIndex {
    /// A plain B+-tree on one field (exact-match lookups).
    BTree(SecondaryBTreeIndex),
    /// A keyword or n-gram inverted index (similarity candidates).
    /// Boxed: the inverted index (LSM tree + postings cache) dwarfs the
    /// B+-tree variant, and partitions hold these in a map by name.
    Inverted(Box<InvertedIndex>),
}

impl SecondaryIndex {
    /// Approximate on-disk plus in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            SecondaryIndex::BTree(i) => i.size_bytes(),
            SecondaryIndex::Inverted(i) => i.size_bytes(),
        }
    }

    /// Index `record` under its primary key.
    pub fn insert(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        match self {
            SecondaryIndex::BTree(i) => i.insert(record, pk),
            SecondaryIndex::Inverted(i) => i.insert(record, pk),
        }
    }

    /// Remove `record`'s entries for `pk`.
    pub fn delete(&mut self, record: &Value, pk: &Value) -> Result<(), IoError> {
        match self {
            SecondaryIndex::BTree(i) => i.delete(record, pk),
            SecondaryIndex::Inverted(i) => i.delete(record, pk),
        }
    }

    /// Flush the memory component to a disk component.
    pub fn flush(&mut self) -> Result<(), IoError> {
        match self {
            SecondaryIndex::BTree(i) => i.flush(),
            SecondaryIndex::Inverted(i) => i.flush(),
        }
    }

    /// Downcast to the inverted variant.
    pub fn as_inverted(&self) -> Option<&InvertedIndex> {
        match self {
            SecondaryIndex::Inverted(i) => Some(i.as_ref()),
            _ => None,
        }
    }

    /// Downcast to the B+-tree variant.
    pub fn as_btree(&self) -> Option<&SecondaryBTreeIndex> {
        match self {
            SecondaryIndex::BTree(i) => Some(i),
            _ => None,
        }
    }

    /// Lifetime (flushes, merges) of the underlying LSM tree.
    pub fn lsm_counters(&self) -> (u64, u64) {
        match self {
            SecondaryIndex::BTree(i) => i.lsm_counters(),
            SecondaryIndex::Inverted(i) => i.lsm_counters(),
        }
    }

    /// Disk components currently backing this index.
    pub fn num_disk_components(&self) -> usize {
        match self {
            SecondaryIndex::BTree(i) => i.num_disk_components(),
            SecondaryIndex::Inverted(i) => i.num_disk_components(),
        }
    }

    /// Name the underlying LSM tree in lifecycle events.
    pub fn set_tag(&mut self, tag: impl Into<Arc<str>>) {
        match self {
            SecondaryIndex::BTree(i) => i.set_tag(tag),
            SecondaryIndex::Inverted(i) => i.set_tag(tag),
        }
    }

    /// Live disk components as `(file, pages)`, newest first.
    pub fn component_files(&self) -> Vec<(crate::disk::FileId, u32)> {
        match self {
            SecondaryIndex::BTree(i) => i.component_files(),
            SecondaryIndex::Inverted(i) => i.component_files(),
        }
    }

    /// Restore recovered disk components.
    pub fn restore_components(&mut self, components: Vec<crate::component::RunComponent>) {
        match self {
            SecondaryIndex::BTree(i) => i.restore_components(components),
            SecondaryIndex::Inverted(i) => i.restore_components(components),
        }
    }

    /// Drain merge-superseded files awaiting reclamation.
    pub fn take_obsolete(&mut self) -> Vec<crate::disk::FileId> {
        match self {
            SecondaryIndex::BTree(i) => i.take_obsolete(),
            SecondaryIndex::Inverted(i) => i.take_obsolete(),
        }
    }

    /// True when the memory component is empty.
    pub fn mem_is_empty(&self) -> bool {
        match self {
            SecondaryIndex::BTree(i) => i.mem_is_empty(),
            SecondaryIndex::Inverted(i) => i.mem_is_empty(),
        }
    }
}

/// One partition of one dataset: primary index + local secondary indexes.
#[derive(Debug)]
pub struct PartitionStore {
    /// The dataset this partition belongs to.
    pub dataset: DatasetDef,
    /// This partition's number within the dataset.
    pub partition: usize,
    primary: PrimaryIndex,
    secondaries: HashMap<String, SecondaryIndex>,
    cache: Arc<BufferCache>,
    config: StorageConfig,
    /// Files of dropped indexes awaiting deferred reclamation (see
    /// [`StorageConfig::defer_reclaim`]).
    dropped_files: Vec<FileId>,
}

impl PartitionStore {
    /// Create an empty partition store for `dataset`/`partition`.
    pub fn new(
        dataset: DatasetDef,
        partition: usize,
        cache: Arc<BufferCache>,
        config: StorageConfig,
    ) -> Self {
        let mut primary = PrimaryIndex::new(cache.clone(), config.clone());
        primary.set_tag(format!("{}/p{}/<primary>", dataset.name, partition));
        PartitionStore {
            dataset,
            partition,
            primary,
            secondaries: HashMap::new(),
            cache,
            config,
            dropped_files: Vec::new(),
        }
    }

    /// Insert a record routed to this partition. The caller has already
    /// verified the partition assignment.
    pub fn insert(&mut self, record: Value) -> Result<(), StorageError> {
        let pk = self.dataset.key_of(&record)?;
        // Secondary maintenance: remove old postings if overwriting.
        if let Some(old) = self.primary.get(&pk)? {
            for idx in self.secondaries.values_mut() {
                idx.delete(&old, &pk)?;
            }
        }
        for idx in self.secondaries.values_mut() {
            idx.insert(&record, &pk)?;
        }
        self.primary.insert(pk, &record)?;
        Ok(())
    }

    /// Delete by primary key, cleaning secondary entries first.
    pub fn delete(&mut self, pk: &Value) -> Result<(), StorageError> {
        if let Some(old) = self.primary.get(pk)? {
            for idx in self.secondaries.values_mut() {
                idx.delete(&old, pk)?;
            }
            self.primary.delete(pk.clone())?;
        }
        Ok(())
    }

    /// Create a secondary index and backfill it from the primary index,
    /// returning the number of records indexed (the Table 5 build path).
    pub fn create_index(&mut self, def: &IndexDef) -> Result<u64, StorageError> {
        if self.secondaries.contains_key(&def.name) {
            return Err(StorageError::Adm(AdmError::Schema(format!(
                "index '{}' already exists in partition {}",
                def.name, self.partition
            ))));
        }
        let mut index = self.index_shell(def);
        let mut count = 0u64;
        let rows: Vec<(Value, Value)> = self
            .primary
            .scan()
            .collect::<Result<_, IoError>>()?;
        for (pk, record) in rows {
            index.insert(&record, &pk)?;
            count += 1;
        }
        index.flush()?;
        self.secondaries.insert(def.name.clone(), index);
        self.record_index_def(def);
        Ok(count)
    }

    /// Keep the partition-local [`DatasetDef`] in sync with the live
    /// secondary indexes so [`PartitionStore::manifest_dataset`] always
    /// has a definition for every index it lists.
    fn record_index_def(&mut self, def: &IndexDef) {
        if !self.dataset.indexes.iter().any(|d| d.name == def.name) {
            self.dataset.indexes.push(def.clone());
        }
    }

    /// Drop a secondary index, reclaiming its component files: immediately
    /// when [`StorageConfig::defer_reclaim`] is off, otherwise queued into
    /// [`PartitionStore::take_obsolete`] so the caller can delete them only
    /// after the manifest that stops referencing them is durable.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let Some(idx) = self.secondaries.remove(name) else {
            return false;
        };
        self.dataset.indexes.retain(|d| d.name != name);
        let files: Vec<FileId> = idx.component_files().into_iter().map(|(f, _)| f).collect();
        if self.config.defer_reclaim {
            self.dropped_files.extend(files);
        } else {
            for file in files {
                self.cache.disk().delete(file);
            }
        }
        true
    }

    /// Build an empty, tagged secondary index for `def` without backfill.
    fn index_shell(&self, def: &IndexDef) -> SecondaryIndex {
        let mut index = match def.kind {
            IndexKind::BTree => SecondaryIndex::BTree(SecondaryBTreeIndex::new(
                self.cache.clone(),
                self.config.clone(),
                def.field.clone(),
            )),
            IndexKind::Keyword | IndexKind::NGram(_) => {
                SecondaryIndex::Inverted(Box::new(InvertedIndex::new(
                    self.cache.clone(),
                    self.config.clone(),
                    def.field.clone(),
                    def.kind,
                )))
            }
        };
        index.set_tag(format!(
            "{}/p{}/{}",
            self.dataset.name, self.partition, def.name
        ));
        index
    }

    /// Re-create a secondary index *without* backfilling it from the
    /// primary index — startup recovery attaches manifest-listed indexes
    /// this way and then restores their disk components directly.
    pub fn attach_index(&mut self, def: &IndexDef) -> Result<(), StorageError> {
        if self.secondaries.contains_key(&def.name) {
            return Err(StorageError::Adm(AdmError::Schema(format!(
                "index '{}' already exists in partition {}",
                def.name, self.partition
            ))));
        }
        let index = self.index_shell(def);
        self.secondaries.insert(def.name.clone(), index);
        self.record_index_def(def);
        Ok(())
    }

    /// The durable description of this partition: every index with its
    /// live disk components, newest first — exactly what a manifest commit
    /// records and what [`PartitionStore::restore_from_manifest`] consumes.
    pub fn manifest_dataset(&self) -> ManifestDataset {
        let comps = |files: Vec<(FileId, u32)>| -> Vec<ManifestComponent> {
            files
                .into_iter()
                .map(|(file, pages)| ManifestComponent { file, pages })
                .collect()
        };
        let mut indexes = Vec::new();
        for def in &self.dataset.indexes {
            if let Some(idx) = self.secondaries.get(&def.name) {
                indexes.push(ManifestIndex {
                    def: def.clone(),
                    components: comps(idx.component_files()),
                });
            }
        }
        ManifestDataset {
            name: self.dataset.name.clone(),
            primary_key: self.dataset.primary_key.clone(),
            primary: comps(self.primary.component_files()),
            indexes,
        }
    }

    /// Rebuild this partition's LSM state from a manifest snapshot: open
    /// every referenced component file (verifying its page count survived),
    /// attach the listed secondary indexes, and install the components
    /// newest-first. The partition must be freshly created and empty.
    pub fn restore_from_manifest(&mut self, ds: &ManifestDataset) -> Result<(), StorageError> {
        let disk = self.cache.disk().clone();
        let open_all =
            |comps: &[ManifestComponent]| -> Result<Vec<RunComponent>, IoError> {
                comps
                    .iter()
                    .map(|c| {
                        let rc = RunComponent::open(&disk, c.file)?;
                        if rc.num_pages() != c.pages {
                            return Err(IoError::corruption(format!(
                                "component file f{}.cmp has {} pages, manifest expects {}",
                                c.file.0,
                                rc.num_pages(),
                                c.pages
                            )));
                        }
                        Ok(rc)
                    })
                    .collect()
            };
        self.primary.restore_components(open_all(&ds.primary)?);
        for mi in &ds.indexes {
            self.attach_index(&mi.def)?;
            let comps = open_all(&mi.components)?;
            self.secondaries
                .get_mut(&mi.def.name)
                .expect("index attached above")
                .restore_components(comps);
        }
        Ok(())
    }

    /// Drain every file awaiting deferred reclamation: merge-superseded
    /// components of the primary and all secondaries, plus files of
    /// dropped indexes. Callers delete these only after a manifest commit.
    pub fn take_obsolete(&mut self) -> Vec<FileId> {
        let mut files = std::mem::take(&mut self.dropped_files);
        files.extend(self.primary.take_obsolete());
        for idx in self.secondaries.values_mut() {
            files.extend(idx.take_obsolete());
        }
        files
    }

    /// True when every memory component (primary and secondaries) is
    /// empty — the condition under which a manifest commit may advance
    /// the flushed LSN past all replayed WAL records.
    pub fn all_mem_empty(&self) -> bool {
        self.primary.mem_is_empty() && self.secondaries.values().all(|i| i.mem_is_empty())
    }

    /// The primary index.
    pub fn primary(&self) -> &PrimaryIndex {
        &self.primary
    }

    /// Mutable access to the primary index.
    pub fn primary_mut(&mut self) -> &mut PrimaryIndex {
        &mut self.primary
    }

    /// Look up a secondary index by name.
    pub fn secondary(&self, name: &str) -> Option<&SecondaryIndex> {
        self.secondaries.get(name)
    }

    /// Names of all secondary indexes (unordered).
    pub fn secondary_names(&self) -> impl Iterator<Item = &str> {
        self.secondaries.keys().map(|s| s.as_str())
    }

    /// The buffer cache shared by every index of this partition.
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// T-occurrence candidate search against a named inverted index:
    /// sorted primary keys of records sharing at least `t` query tokens.
    pub fn inverted_candidates(
        &self,
        index_name: &str,
        tokens: &[Value],
        t: usize,
    ) -> Result<Vec<Value>, StorageError> {
        let idx = self
            .secondaries
            .get(index_name)
            .and_then(SecondaryIndex::as_inverted)
            .ok_or_else(|| {
                StorageError::Adm(AdmError::Schema(format!(
                    "no inverted index named '{index_name}'"
                )))
            })?;
        Ok(idx.t_occurrence(tokens, t)?)
    }

    /// [`PartitionStore::inverted_candidates`] through the vectorized
    /// rank-array path: postings are interned to `Arc<[u32]>` dense-rank
    /// arrays and counted with the rank kernels (same candidates, same
    /// order; falls back to the scalar merge when the postings cache is
    /// disabled or a mutation races the probe).
    pub fn inverted_candidates_ranked(
        &self,
        index_name: &str,
        tokens: &[Value],
        t: usize,
    ) -> Result<Vec<Value>, StorageError> {
        self.inverted_candidates_ranked_opts(index_name, tokens, t, true)
    }

    /// [`PartitionStore::inverted_candidates_ranked`] with the
    /// full-intersection gallop fast path switchable — `use_kernels =
    /// false` pins the pre-kernel rank/count merge (the executor's
    /// `disable_kernels` flag lands here).
    pub fn inverted_candidates_ranked_opts(
        &self,
        index_name: &str,
        tokens: &[Value],
        t: usize,
        use_kernels: bool,
    ) -> Result<Vec<Value>, StorageError> {
        let idx = self
            .secondaries
            .get(index_name)
            .and_then(SecondaryIndex::as_inverted)
            .ok_or_else(|| {
                StorageError::Adm(AdmError::Schema(format!(
                    "no inverted index named '{index_name}'"
                )))
            })?;
        Ok(idx.t_occurrence_ranked_opts(tokens, t, use_kernels)?)
    }

    /// Exact-match candidate lookup against a named B+-tree index.
    pub fn btree_lookup(&self, index_name: &str, key: &Value) -> Result<Vec<Value>, StorageError> {
        let idx = self
            .secondaries
            .get(index_name)
            .and_then(SecondaryIndex::as_btree)
            .ok_or_else(|| {
                StorageError::Adm(AdmError::Schema(format!(
                    "no btree index named '{index_name}'"
                )))
            })?;
        Ok(idx.lookup(key)?)
    }

    /// Flush all components (end of a load). On a (possibly injected)
    /// I/O fault the in-memory components are preserved, so the caller
    /// may retry transient errors.
    pub fn flush_all(&mut self) -> Result<(), IoError> {
        self.primary.flush()?;
        for idx in self.secondaries.values_mut() {
            idx.flush()?;
        }
        Ok(())
    }

    /// Total (flushes, merges) across the primary and every secondary
    /// index of this partition — instance-lifetime LSM activity.
    pub fn lsm_counters(&self) -> (u64, u64) {
        let (mut flushes, mut merges) = self.primary.lsm_counters();
        for idx in self.secondaries.values() {
            let (f, m) = idx.lsm_counters();
            flushes += f;
            merges += m;
        }
        (flushes, merges)
    }

    /// (index name, size in bytes) for every index including the primary.
    pub fn index_sizes(&self) -> Vec<(String, u64)> {
        let mut out = vec![("<primary>".to_string(), self.primary.size_bytes())];
        let mut names: Vec<&String> = self.secondaries.keys().collect();
        names.sort();
        for name in names {
            out.push((name.clone(), self.secondaries[name].size_bytes()));
        }
        out
    }

    /// (index name, disk components, size in bytes) for every index
    /// including the primary — the telemetry gauge view of this
    /// partition's LSM state.
    pub fn index_components(&self) -> Vec<(String, usize, u64)> {
        let mut out = vec![(
            "<primary>".to_string(),
            self.primary.num_disk_components(),
            self.primary.size_bytes(),
        )];
        let mut names: Vec<&String> = self.secondaries.keys().collect();
        names.sort();
        for name in names {
            let idx = &self.secondaries[name];
            out.push((name.clone(), idx.num_disk_components(), idx.size_bytes()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use asterix_adm::record;

    fn store() -> PartitionStore {
        let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 64));
        PartitionStore::new(
            DatasetDef::new("ARevs", "id"),
            0,
            cache,
            StorageConfig::tiny(),
        )
    }

    fn review(id: i64, name: &str, summary: &str) -> Value {
        record! {"id" => id, "reviewerName" => name, "summary" => summary}
    }

    #[test]
    fn insert_then_index_backfill() {
        let mut s = store();
        s.insert(review(1, "james", "great product")).unwrap();
        s.insert(review(2, "maria", "bad product")).unwrap();
        let n = s
            .create_index(&IndexDef {
                name: "smix".into(),
                field: "summary".into(),
                kind: IndexKind::Keyword,
            })
            .unwrap();
        assert_eq!(n, 2);
        let cands = s
            .inverted_candidates("smix", &[Value::from("product")], 1)
            .unwrap();
        assert_eq!(cands, vec![Value::Int64(1), Value::Int64(2)]);
    }

    #[test]
    fn index_maintained_on_insert_after_create() {
        let mut s = store();
        s.create_index(&IndexDef {
            name: "nix".into(),
            field: "reviewerName".into(),
            kind: IndexKind::NGram(2),
        })
        .unwrap();
        s.insert(review(1, "james", "x")).unwrap();
        let cands = s
            .inverted_candidates("nix", &[Value::from("ja"), Value::from("am")], 2)
            .unwrap();
        assert_eq!(cands, vec![Value::Int64(1)]);
    }

    #[test]
    fn overwrite_updates_postings() {
        let mut s = store();
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        s.insert(review(1, "a", "old words")).unwrap();
        s.insert(review(1, "a", "new words")).unwrap();
        assert_eq!(
            s.inverted_candidates("smix", &[Value::from("old")], 1).unwrap(),
            Vec::<Value>::new()
        );
        assert_eq!(
            s.inverted_candidates("smix", &[Value::from("new")], 1).unwrap(),
            vec![Value::Int64(1)]
        );
    }

    #[test]
    fn delete_cleans_everything() {
        let mut s = store();
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        s.insert(review(5, "x", "hello")).unwrap();
        s.delete(&Value::Int64(5)).unwrap();
        assert_eq!(s.primary().get(&Value::Int64(5)).unwrap(), None);
        assert_eq!(
            s.inverted_candidates("smix", &[Value::from("hello")], 1).unwrap(),
            Vec::<Value>::new()
        );
    }

    #[test]
    fn btree_secondary_lookup() {
        let mut s = store();
        s.create_index(&IndexDef {
            name: "bt".into(),
            field: "reviewerName".into(),
            kind: IndexKind::BTree,
        })
        .unwrap();
        s.insert(review(1, "maria", "a")).unwrap();
        s.insert(review(2, "james", "b")).unwrap();
        assert_eq!(
            s.btree_lookup("bt", &Value::from("maria")).unwrap(),
            vec![Value::Int64(1)]
        );
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut s = store();
        let def = IndexDef {
            name: "i".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        };
        s.create_index(&def).unwrap();
        assert!(s.create_index(&def).is_err());
    }

    #[test]
    fn missing_pk_rejected() {
        let mut s = store();
        assert!(s.insert(record! {"notid" => 1i64}).is_err());
    }

    #[test]
    fn index_sizes_reported() {
        let mut s = store();
        for i in 0..50 {
            s.insert(review(i, "name", "some summary words here")).unwrap();
        }
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        s.flush_all().unwrap();
        let sizes = s.index_sizes();
        assert_eq!(sizes.len(), 2);
        assert!(sizes.iter().all(|(_, b)| *b > 0));
    }

    #[test]
    fn transient_flush_fault_is_retryable() {
        use crate::fault::{FaultInjector, FaultRule, IoOp};
        let mut s = store();
        for i in 0..10 {
            s.insert(review(i, "name", "words")).unwrap();
        }
        let disk = s.cache().disk().clone();
        disk.set_fault_injector(Arc::new(FaultInjector::new(3).with_rule(FaultRule {
            op: IoOp::Flush,
            file: None,
            nth: 1,
            transient: true,
        })));
        let err = s.flush_all().unwrap_err();
        assert!(err.transient);
        // The failed flush preserved everything; a retry drains it.
        s.flush_all().unwrap();
        assert_eq!(s.primary().len().unwrap(), 10);
    }

    #[test]
    fn permanent_read_fault_surfaces_as_storage_error() {
        use crate::fault::{FaultInjector, FaultRule, IoOp};
        let mut s = store();
        for i in 0..200 {
            s.insert(review(i, "name", "some longer summary text here")).unwrap();
        }
        s.flush_all().unwrap();
        s.cache().disk().set_fault_injector(Arc::new(
            FaultInjector::new(11).with_rule(FaultRule {
                op: IoOp::Read,
                file: None,
                nth: 1,
                transient: false,
            }),
        ));
        // Backfill scans the primary index from disk → typed Io error.
        let err = s
            .create_index(&IndexDef {
                name: "late".into(),
                field: "summary".into(),
                kind: IndexKind::Keyword,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(!err.is_transient());
    }

    #[test]
    fn manifest_roundtrip_restores_partition() {
        let dir = std::env::temp_dir().join(format!("asterix-pstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(Disk::file_backed(&dir).unwrap());
        let cache = Arc::new(BufferCache::new(disk.clone(), 64));
        let mut cfg = StorageConfig::tiny();
        cfg.defer_reclaim = true;
        let mut s = PartitionStore::new(DatasetDef::new("ARevs", "id"), 0, cache, cfg.clone());
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        for i in 0..40 {
            s.insert(review(i, "name", "shared words here")).unwrap();
        }
        s.flush_all().unwrap();
        assert!(s.all_mem_empty());
        let ds = s.manifest_dataset();
        assert_eq!(ds.indexes.len(), 1);
        assert!(!ds.primary.is_empty());

        // A fresh store over the same disk, restored from the manifest
        // snapshot, answers queries identically.
        let cache2 = Arc::new(BufferCache::new(disk.clone(), 64));
        let mut s2 = PartitionStore::new(DatasetDef::new("ARevs", "id"), 0, cache2, cfg);
        s2.restore_from_manifest(&ds).unwrap();
        assert_eq!(s2.primary().len().unwrap(), 40);
        assert_eq!(
            s2.inverted_candidates("smix", &[Value::from("shared")], 1).unwrap().len(),
            40
        );
        drop(s);
        drop(s2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_index_reclaims_files_deferred_and_immediate() {
        // Immediate: files vanish from the disk as soon as the index drops.
        let mut s = store();
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        for i in 0..40 {
            s.insert(review(i, "name", "words to index")).unwrap();
        }
        s.flush_all().unwrap();
        let disk = s.cache().disk().clone();
        let before = disk.list_files().len();
        assert!(s.drop_index("smix"));
        assert!(disk.list_files().len() < before);
        assert!(s.take_obsolete().is_empty());

        // Deferred: files survive the drop and surface via take_obsolete.
        let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 64));
        let mut cfg = StorageConfig::tiny();
        cfg.defer_reclaim = true;
        let mut s = PartitionStore::new(DatasetDef::new("ARevs", "id"), 0, cache, cfg);
        s.create_index(&IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        for i in 0..40 {
            s.insert(review(i, "name", "words to index")).unwrap();
        }
        s.flush_all().unwrap();
        let disk = s.cache().disk().clone();
        let before = disk.list_files().len();
        assert!(s.drop_index("smix"));
        assert_eq!(disk.list_files().len(), before);
        let obsolete = s.take_obsolete();
        assert!(!obsolete.is_empty());
        for f in obsolete {
            disk.delete(f);
        }
        assert!(disk.list_files().len() < before);
    }

    #[test]
    fn wrong_index_type_errors() {
        let mut s = store();
        s.create_index(&IndexDef {
            name: "bt".into(),
            field: "summary".into(),
            kind: IndexKind::BTree,
        })
        .unwrap();
        assert!(s.inverted_candidates("bt", &[Value::from("x")], 1).is_err());
        assert!(s.btree_lookup("nope", &Value::from("x")).is_err());
    }
}
