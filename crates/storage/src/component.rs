//! One immutable LSM disk component: a sorted run serialized to pages.
//!
//! Entries are `(key, Put(value) | Tombstone)` pairs in key order. The
//! component keeps a sparse index (first key of every page) in memory;
//! lookups binary-search the sparse index, fetch one page through the
//! buffer cache, decode it, and binary-search within.
//!
//! Page layout: `u32 entry_count`, then per entry: encoded key, one flag
//! byte (0 = tombstone, 1 = put), and for puts a `u32` length + value
//! bytes.

use crate::cache::BufferCache;
use crate::disk::{Disk, FileId};
use crate::fault::IoError;
use asterix_adm::{binary, AdmError, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
#[cfg(test)]
use std::sync::Arc;

/// A stored entry: a value or a tombstone (delete marker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A live value.
    Put(Bytes),
    /// A deletion marker shadowing older values for the key.
    Tombstone,
}

impl Entry {
    /// The payload of a [`Entry::Put`], `None` for tombstones.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Entry::Put(b) => Some(b),
            Entry::Tombstone => None,
        }
    }
}

/// An immutable sorted run on the simulated disk.
#[derive(Debug)]
pub struct RunComponent {
    file: FileId,
    /// First key of each page, in order.
    sparse_index: Vec<Value>,
    entry_count: u64,
    byte_size: u64,
}

impl RunComponent {
    /// Serialize a sorted entry stream into pages. The caller guarantees
    /// strictly increasing keys (duplicates must be resolved upstream).
    ///
    /// Failure-atomic: if any page append fails, the partially written
    /// file is deleted before the error is returned, so no half-built
    /// component ever becomes visible.
    pub fn build<I>(disk: &Disk, page_size: usize, entries: I) -> Result<RunComponent, IoError>
    where
        I: IntoIterator<Item = (Value, Entry)>,
    {
        let file = disk.create()?;
        match Self::build_inner(disk, file, page_size, entries) {
            Ok(comp) => Ok(comp),
            Err(e) => {
                disk.delete(file);
                Err(e)
            }
        }
    }

    /// Re-open a sealed component from its pages (startup recovery). The
    /// sparse index, entry count and byte size live only in memory, so a
    /// reopened instance rebuilds them by scanning every page of the
    /// file once. A page that fails its checksum or does not decode
    /// surfaces as a typed error — a manifest-referenced component is
    /// sealed and fsynced, so damage here is real corruption, not a torn
    /// write.
    pub fn open(disk: &Disk, file: FileId) -> Result<RunComponent, IoError> {
        let num_pages = disk.file_pages(file);
        let mut sparse_index = Vec::with_capacity(num_pages as usize);
        let mut entry_count = 0u64;
        let mut byte_size = 0u64;
        for page_no in 0..num_pages {
            let bytes = disk.read(file, page_no)?.ok_or_else(|| {
                IoError::corruption(format!(
                    "component file {} lost page {page_no} of {num_pages}",
                    file.0
                ))
            })?;
            let entries = Self::decode_page(&bytes).map_err(|e| {
                IoError::corruption(format!(
                    "component file {} page {page_no} undecodable: {e}",
                    file.0
                ))
            })?;
            let Some((first_key, _)) = entries.first() else {
                return Err(IoError::corruption(format!(
                    "component file {} page {page_no} is empty",
                    file.0
                )));
            };
            sparse_index.push(first_key.clone());
            entry_count += entries.len() as u64;
            byte_size += bytes.len() as u64;
        }
        Ok(RunComponent {
            file,
            sparse_index,
            entry_count,
            byte_size,
        })
    }

    fn build_inner<I>(
        disk: &Disk,
        file: FileId,
        page_size: usize,
        entries: I,
    ) -> Result<RunComponent, IoError>
    where
        I: IntoIterator<Item = (Value, Entry)>,
    {
        let mut sparse_index = Vec::new();
        let mut entry_count = 0u64;
        let mut byte_size = 0u64;

        let mut page = BytesMut::with_capacity(page_size + 1024);
        let mut page_entries: u32 = 0;
        let mut page_first_key: Option<Value> = None;
        let mut body = BytesMut::with_capacity(page_size + 1024);

        let mut flush_page = |body: &mut BytesMut,
                              page_entries: &mut u32,
                              page_first_key: &mut Option<Value>,
                              sparse_index: &mut Vec<Value>,
                              byte_size: &mut u64|
         -> Result<(), IoError> {
            if *page_entries == 0 {
                return Ok(());
            }
            page.clear();
            page.put_u32_le(*page_entries);
            page.extend_from_slice(body);
            let bytes = Bytes::copy_from_slice(&page);
            *byte_size += bytes.len() as u64;
            disk.append(file, bytes)?;
            sparse_index.push(page_first_key.take().expect("first key set"));
            body.clear();
            *page_entries = 0;
            Ok(())
        };

        #[cfg(debug_assertions)]
        let mut last_key: Option<Value> = None;
        for (key, entry) in entries {
            #[cfg(debug_assertions)]
            {
                if let Some(prev) = &last_key {
                    debug_assert!(prev < &key, "component keys must be strictly increasing");
                }
                last_key = Some(key.clone());
            }
            if page_first_key.is_none() {
                page_first_key = Some(key.clone());
            }
            binary::encode_value(&key, &mut body);
            match &entry {
                Entry::Tombstone => body.put_u8(0),
                Entry::Put(v) => {
                    body.put_u8(1);
                    body.put_u32_le(v.len() as u32);
                    body.extend_from_slice(v);
                }
            }
            page_entries += 1;
            entry_count += 1;
            if body.len() >= page_size {
                flush_page(
                    &mut body,
                    &mut page_entries,
                    &mut page_first_key,
                    &mut sparse_index,
                    &mut byte_size,
                )?;
            }
        }
        flush_page(
            &mut body,
            &mut page_entries,
            &mut page_first_key,
            &mut sparse_index,
            &mut byte_size,
        )?;

        // Fsync-on-seal: a component's pages are durable before any
        // manifest may reference it. (No-op on the in-memory backend.)
        disk.sync(file)?;

        Ok(RunComponent {
            file,
            sparse_index,
            entry_count,
            byte_size,
        })
    }

    /// The disk file this component is serialized to.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Number of entries (including tombstones) in the component.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Serialized size in bytes across all pages.
    pub fn byte_size(&self) -> u64 {
        self.byte_size
    }

    /// Number of pages the component occupies.
    pub fn num_pages(&self) -> u32 {
        self.sparse_index.len() as u32
    }

    /// True when the component holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sparse_index.is_empty()
    }

    /// Which page could contain `key` (the last page whose first key is
    /// `<= key`).
    fn page_for(&self, key: &Value) -> Option<u32> {
        if self.sparse_index.is_empty() {
            return None;
        }
        match self.sparse_index.binary_search(key) {
            Ok(i) => Some(i as u32),
            Err(0) => None, // key < first key of first page
            Err(i) => Some((i - 1) as u32),
        }
    }

    fn decode_page(bytes: &Bytes) -> Result<Vec<(Value, Entry)>, AdmError> {
        let mut buf: &[u8] = bytes;
        if buf.remaining() < 4 {
            return Err(AdmError::Decode("short page header".into()));
        }
        let count = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let key = binary::decode_value(&mut buf)?;
            if !buf.has_remaining() {
                return Err(AdmError::Decode("truncated entry flag".into()));
            }
            let flag = buf.get_u8();
            let entry = if flag == 0 {
                Entry::Tombstone
            } else {
                if buf.remaining() < 4 {
                    return Err(AdmError::Decode("truncated value length".into()));
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(AdmError::Decode("truncated value".into()));
                }
                let mut v = vec![0u8; len];
                buf.copy_to_slice(&mut v);
                Entry::Put(Bytes::from(v))
            };
            out.push((key, entry));
        }
        Ok(out)
    }

    /// Point lookup through the buffer cache (decoded-page layer).
    pub fn get(&self, key: &Value, cache: &BufferCache) -> Result<Option<Entry>, IoError> {
        let Some(page_no) = self.page_for(key) else {
            return Ok(None);
        };
        let Some(entries) = self.fetch_decoded(page_no, cache)? else {
            return Ok(None);
        };
        Ok(entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| entries[i].1.clone()))
    }

    /// Batched point lookup over a *sorted* key slice: one merged pass.
    /// Keys map to non-decreasing page numbers, so each page is fetched
    /// and decoded at most once per batch, however many keys land on it —
    /// this is where sorting candidate PKs (§4.1.1) pays off.
    pub fn get_many_sorted(
        &self,
        keys: &[&Value],
        cache: &BufferCache,
    ) -> Result<Vec<Option<Entry>>, IoError> {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let mut out = Vec::with_capacity(keys.len());
        let mut current: Option<(u32, crate::cache::DecodedPage)> = None;
        for key in keys {
            let Some(page_no) = self.page_for(key) else {
                out.push(None);
                continue;
            };
            if !matches!(&current, Some((no, _)) if *no == page_no) {
                match self.fetch_decoded(page_no, cache)? {
                    Some(decoded) => current = Some((page_no, decoded)),
                    None => {
                        out.push(None);
                        continue;
                    }
                }
            }
            let (_, page) = current.as_ref().expect("page just fetched");
            out.push(
                page.binary_search_by(|(k, _)| k.cmp(key))
                    .ok()
                    .map(|i| page[i].1.clone()),
            );
        }
        Ok(out)
    }

    /// Decoded page through the shared cache.
    fn fetch_decoded(
        &self,
        page_no: u32,
        cache: &BufferCache,
    ) -> Result<Option<crate::cache::DecodedPage>, IoError> {
        cache.get_decoded(self.file, page_no, |bytes| {
            Self::decode_page(bytes).ok().map(std::sync::Arc::new)
        })
    }

    /// Iterate entries with key `>= from` (or all), in key order.
    pub fn scan_from<'a>(
        &'a self,
        from: Option<&Value>,
        cache: &'a BufferCache,
    ) -> ComponentScan<'a> {
        let start_page = match from {
            None => 0,
            Some(k) => self.page_for(k).unwrap_or(0),
        };
        ComponentScan {
            component: self,
            cache,
            page_no: start_page,
            entries: std::sync::Arc::new(Vec::new()),
            pos: 0,
            lower_bound: from.cloned(),
            failed: false,
        }
    }
}

/// Streaming scan over a component's pages. A page fetch that hits a
/// disk fault yields `Err` once and then fuses — a fault never silently
/// truncates a scan.
pub struct ComponentScan<'a> {
    component: &'a RunComponent,
    cache: &'a BufferCache,
    page_no: u32,
    entries: crate::cache::DecodedPage,
    pos: usize,
    lower_bound: Option<Value>,
    failed: bool,
}

impl Iterator for ComponentScan<'_> {
    type Item = Result<(Value, Entry), IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.pos < self.entries.len() {
                let item = self.entries[self.pos].clone();
                self.pos += 1;
                if let Some(lb) = &self.lower_bound {
                    if &item.0 < lb {
                        continue;
                    }
                    // Past the bound: stop filtering.
                    self.lower_bound = None;
                }
                return Some(Ok(item));
            }
            if self.page_no >= self.component.num_pages() {
                return None;
            }
            let decoded = match self.component.fetch_decoded(self.page_no, self.cache) {
                Ok(Some(d)) => d,
                Ok(None) => return None, // undecodable page: treat as end
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            self.page_no += 1;
            self.pos = 0;
            self.entries = decoded;
        }
    }
}

/// Convenience for tests: build a component over an in-memory disk and
/// return both with a cache.
#[cfg(test)]
pub(crate) fn test_component(
    pairs: Vec<(Value, Entry)>,
    page_size: usize,
) -> (Arc<Disk>, Arc<BufferCache>, RunComponent) {
    let disk = Arc::new(Disk::new());
    let cache = Arc::new(BufferCache::new(disk.clone(), 64));
    let comp = RunComponent::build(&disk, page_size, pairs).unwrap();
    (disk, cache, comp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(s: &str) -> Entry {
        Entry::Put(Bytes::copy_from_slice(s.as_bytes()))
    }

    fn pairs(n: i64) -> Vec<(Value, Entry)> {
        (0..n)
            .map(|i| (Value::Int64(i), put(&format!("val{i}"))))
            .collect()
    }

    #[test]
    fn build_and_get() {
        let (_d, cache, comp) = test_component(pairs(100), 256);
        assert_eq!(comp.entry_count(), 100);
        assert!(comp.num_pages() > 1, "small page size must split pages");
        for i in [0i64, 1, 42, 99] {
            let e = comp.get(&Value::Int64(i), &cache).unwrap().unwrap();
            assert_eq!(e, put(&format!("val{i}")));
        }
        assert_eq!(comp.get(&Value::Int64(100), &cache).unwrap(), None);
        assert_eq!(comp.get(&Value::Int64(-1), &cache).unwrap(), None);
    }

    #[test]
    fn tombstones_roundtrip() {
        let (_d, cache, comp) = test_component(
            vec![
                (Value::Int64(1), put("a")),
                (Value::Int64(2), Entry::Tombstone),
                (Value::Int64(3), put("c")),
            ],
            1024,
        );
        assert_eq!(
            comp.get(&Value::Int64(2), &cache).unwrap(),
            Some(Entry::Tombstone)
        );
        assert_eq!(comp.get(&Value::Int64(3), &cache).unwrap(), Some(put("c")));
    }

    #[test]
    fn full_scan_in_order() {
        let (_d, cache, comp) = test_component(pairs(50), 128);
        let keys: Vec<Value> = comp
            .scan_from(None, &cache)
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scan_from_bound() {
        let (_d, cache, comp) = test_component(pairs(50), 128);
        let keys: Vec<i64> = comp
            .scan_from(Some(&Value::Int64(37)), &cache)
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(keys, (37..50).collect::<Vec<_>>());
    }

    #[test]
    fn scan_from_before_first() {
        let (_d, cache, comp) = test_component(pairs(5), 1024);
        let keys: Vec<i64> = comp
            .scan_from(Some(&Value::Int64(-10)), &cache)
            .map(|r| r.unwrap().0.as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_component() {
        let (_d, cache, comp) = test_component(vec![], 1024);
        assert!(comp.is_empty());
        assert_eq!(comp.get(&Value::Int64(0), &cache).unwrap(), None);
        assert_eq!(comp.scan_from(None, &cache).count(), 0);
    }

    #[test]
    fn string_keys() {
        let mut ps: Vec<(Value, Entry)> = ["alpha", "beta", "gamma", "zeta"]
            .iter()
            .map(|s| (Value::from(*s), put(s)))
            .collect();
        ps.sort_by(|a, b| a.0.cmp(&b.0));
        let (_d, cache, comp) = test_component(ps, 64);
        assert_eq!(
            comp.get(&Value::from("gamma"), &cache).unwrap(),
            Some(put("gamma"))
        );
        assert_eq!(comp.get(&Value::from("delta"), &cache).unwrap(), None);
    }

    #[test]
    fn composite_list_keys_group_by_prefix() {
        // Inverted-index style keys: [token, pk].
        let mk = |t: &str, pk: i64| {
            Value::OrderedList(vec![Value::from(t), Value::Int64(pk)])
        };
        let mut ps: Vec<(Value, Entry)> = vec![
            (mk("am", 1), Entry::Tombstone),
            (mk("am", 4), Entry::Tombstone),
            (mk("ja", 1), Entry::Tombstone),
        ];
        ps.sort_by(|a, b| a.0.cmp(&b.0));
        let (_d, cache, comp) = test_component(ps, 1024);
        let from = Value::OrderedList(vec![Value::from("am"), Value::Missing]);
        let hits: Vec<Value> = comp
            .scan_from(Some(&from), &cache)
            .map(|r| r.unwrap().0)
            .take_while(|k| k.as_list().unwrap()[0] == Value::from("am"))
            .collect();
        assert_eq!(hits.len(), 2);
    }
}
