//! Per-partition write-ahead log with group commit.
//!
//! Every acknowledged upsert/delete is appended here *before* it is
//! applied to the memtable, so a crash can lose at most unacknowledged
//! writes. Records are framed
//!
//! ```text
//! u64 lsn ‖ u32 payload_len ‖ u32 crc32(lsn ‖ payload) ‖ payload
//! ```
//!
//! (little-endian) inside append-only segment files `wal-<seq>.log`
//! under `<partition dir>/wal/`. LSNs are assigned sequentially and are
//! strictly increasing across segments.
//!
//! ## Group commit
//!
//! [`Wal::append`] does not fsync per record. Appenders encode their
//! record into a shared pending buffer, wake the background flusher, and
//! block until their LSN is durable. The flusher batches everything that
//! arrived within one *commit window* — it flushes as soon as
//! `batch_bytes` of records are pending, or when `commit_interval` has
//! elapsed since it woke, whichever comes first — then writes the batch
//! with a single `write` + `fdatasync` and wakes all waiting appenders.
//! Concurrent writers therefore share fsyncs (the classic group-commit
//! throughput/latency trade: a larger window batches more records per
//! fsync at the cost of per-write latency).
//!
//! A failed batch write is rolled back (`set_len` to the last durable
//! offset) before any later batch is accepted, so partial bytes of a
//! failed batch can never precede an acknowledged one — recovery
//! truncates at the first invalid record, which would otherwise discard
//! the acknowledged batch behind the garbage. When the rollback fails,
//! or the fsync itself fails (the kernel may drop the dirty pages, so a
//! later successful fsync proves nothing about this range), the log is
//! *poisoned*: every later submit and every not-yet-durable wait
//! returns the error, permanently.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans the segments in order, verifying each record's
//! checksum and LSN monotonicity. The first invalid record — torn tail,
//! bad checksum, short header, stale bytes — ends the log: the file is
//! truncated at that point and any later segments are deleted, because a
//! record is only acknowledged once fsynced, so everything at or past
//! the first tear is unacknowledged by construction. Surviving records
//! are returned for replay. [`Wal::truncate_upto`] discards segments
//! once the manifest records their contents as flushed.
//!
//! Fault injection: appends check [`IoOp::WalAppend`] on the partition's
//! [`Disk`] and the flusher checks [`IoOp::WalFlush`] per batch, so the
//! existing per-partition injectors cover WAL I/O with their own
//! deterministic counters (separate from component `Append`/`Flush`).

use crate::disk::{crc32, Disk};
use crate::fault::{IoError, IoOp};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
// The vendored parking_lot has no Condvar, so the group-commit
// rendezvous uses the std primitives (lock poisoning cannot happen:
// no code path panics while holding the state lock).
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Byte length of a WAL record header: `u64 lsn ‖ u32 len ‖ u32 crc`.
const RECORD_HEADER: usize = 16;

/// Tuning knobs for the write-ahead log (the `wal_*` rows of the
/// instance durability config).
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Group-commit window: how long the flusher waits for more records
    /// to batch before fsyncing. Zero flushes every record immediately
    /// (lowest latency, one fsync per write).
    pub commit_interval: Duration,
    /// Flush as soon as this many pending bytes accumulate, even inside
    /// the commit window.
    pub batch_bytes: usize,
    /// Start a new segment file once the active one exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            commit_interval: Duration::from_millis(2),
            batch_bytes: 256 * 1024,
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One recovered WAL record: the LSN it was acknowledged under and the
/// caller's opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (strictly increasing, never reused).
    pub lsn: u64,
    /// The payload exactly as appended.
    pub payload: Bytes,
}

/// What [`Wal::open`] found on disk: replayable records plus tear/
/// truncation statistics for telemetry.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Valid records recovered (callers replay the ones past the
    /// manifest's `flushed_lsn`).
    pub records_recovered: u64,
    /// Bytes discarded at the first invalid record (torn tail, bad
    /// checksum, stale bytes), across all segments.
    pub bytes_truncated: u64,
    /// Whole segments deleted because they followed a torn one.
    pub segments_dropped: u64,
}

#[derive(Debug)]
struct Segment {
    seq: u64,
    path: PathBuf,
    /// Highest LSN written to this segment (`None` while empty).
    last_lsn: Option<u64>,
    bytes: u64,
}

#[derive(Debug)]
struct SegmentState {
    dir: PathBuf,
    /// Sealed segments plus the active one (always last, always open).
    segments: Vec<Segment>,
    active: File,
}

/// A failed batch write, plus whether the failure left the log in a
/// state where no later append may be acknowledged (see
/// [`SegmentState::write_batch`]).
#[derive(Debug)]
struct BatchError {
    error: IoError,
    poison: bool,
}

/// Fsync a directory so freshly created entries in it are durable —
/// the same discipline `Manifest::commit` applies after its rename.
fn sync_dir(dir: &Path) -> Result<(), IoError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| IoError::permanent(format!("fsync wal dir: {e}")))
}

impl SegmentState {
    fn seg_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("wal-{seq:06}.log"))
    }

    fn open_segment(dir: &Path, seq: u64) -> Result<File, IoError> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(Self::seg_path(dir, seq))
            .map_err(|e| IoError::permanent(format!("open wal segment: {e}")))
    }

    /// Append `buf` at the known-good end of the active segment and
    /// fsync it; rotate afterwards if the segment is full.
    ///
    /// A failed write trims the segment back to the known-good end
    /// (`set_len`) before returning, so partial bytes of the failed
    /// batch can never sit *before* a later acknowledged batch — at
    /// recovery the scan truncates at the first invalid record, which
    /// would silently discard the acknowledged batch behind the
    /// garbage. When the trim itself fails, and on any fsync failure
    /// (the kernel may have dropped the dirty pages, so even a later
    /// successful fsync cannot be trusted to cover this range), the
    /// error poisons the log: no subsequent append is acknowledged.
    fn write_batch(&mut self, buf: &[u8], max_lsn: u64, segment_bytes: u64) -> Result<(), BatchError> {
        let seg = self.segments.last_mut().expect("active segment");
        let good_end = seg.bytes;
        if let Err(e) = self
            .active
            .seek(std::io::SeekFrom::Start(good_end))
            .and_then(|_| self.active.write_all(buf))
        {
            let poison = self.active.set_len(good_end).is_err();
            return Err(BatchError {
                error: IoError::permanent(format!("wal write: {e}")),
                poison,
            });
        }
        if let Err(e) = self.active.sync_data() {
            let _ = self.active.set_len(good_end);
            return Err(BatchError {
                error: IoError::permanent(format!("wal fsync: {e}")),
                poison: true,
            });
        }
        seg.bytes += buf.len() as u64;
        seg.last_lsn = Some(max_lsn);
        let full = seg.bytes >= segment_bytes;
        let next_seq = seg.seq + 1;
        if full {
            // The new segment's directory entry must be durable before
            // any record lands in it — otherwise a power failure could
            // drop the whole segment (and every acknowledged record in
            // it) even though the records were fsynced. If creation or
            // the directory fsync fails, keep appending to the current
            // (oversized) segment; rotation retries on the next batch.
            if let Ok(f) = Self::open_segment(&self.dir, next_seq) {
                if sync_dir(&self.dir).is_ok() {
                    self.active = f;
                    self.segments.push(Segment {
                        seq: next_seq,
                        path: Self::seg_path(&self.dir, next_seq),
                        last_lsn: None,
                        bytes: 0,
                    });
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct WalState {
    /// Encoded records waiting for the flusher.
    pending: Vec<u8>,
    pending_max_lsn: u64,
    next_lsn: u64,
    durable_lsn: u64,
    /// `(lo, hi]` LSN ranges whose batch flush failed: waiters inside a
    /// range receive the error (the write was never made durable and
    /// must not be acknowledged), even after *later* batches commit and
    /// advance `durable_lsn` past the hole. Ranges below a manifest's
    /// `flushed_lsn` are pruned by [`Wal::truncate_upto`].
    failed: Vec<(u64, u64, IoError)>,
    /// Set when a batch failure left the active segment untrustworthy
    /// (partial bytes that could not be trimmed, or a failed fsync whose
    /// dirty pages the kernel may have dropped). Once set, every
    /// subsequent submit and every not-yet-durable wait fails with this
    /// error — nothing appended after the poisoning is ever
    /// acknowledged, so recovery's truncate-at-first-tear can never
    /// discard an acknowledged record.
    poisoned: Option<IoError>,
    shutdown: bool,
}

/// A per-partition write-ahead log. See the module docs for the record
/// format, group-commit protocol, and recovery contract.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    disk: Arc<Disk>,
    state: Arc<Mutex<WalState>>,
    work: Arc<Condvar>,
    done: Arc<Condvar>,
    segments: Arc<Mutex<SegmentState>>,
    flusher: Option<std::thread::JoinHandle<()>>,
    appends: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: Arc<AtomicU64>,
    group_commits: Arc<AtomicU64>,
    recovery: WalRecovery,
}

fn encode_record(lsn: u64, payload: &[u8], out: &mut Vec<u8>) {
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&lsn.to_le_bytes());
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scan one segment's raw bytes. Returns the valid records, the offset
/// of the first invalid byte (== `raw.len()` when the whole segment is
/// valid), and the last valid LSN seen.
fn scan_segment(raw: &[u8], mut prev_lsn: u64, out: &mut Vec<WalRecord>) -> (u64, u64) {
    let mut off = 0usize;
    loop {
        let rest = &raw[off..];
        if rest.len() < RECORD_HEADER {
            return (off as u64, prev_lsn); // clean end or torn header
        }
        let lsn = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
        if rest.len() < RECORD_HEADER + len {
            return (off as u64, prev_lsn); // torn payload
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != stored_crc {
            return (off as u64, prev_lsn); // bad checksum (incl. zero tail)
        }
        if lsn <= prev_lsn && prev_lsn != 0 {
            return (off as u64, prev_lsn); // stale bytes: LSNs must increase
        }
        out.push(WalRecord {
            lsn,
            payload: Bytes::copy_from_slice(payload),
        });
        prev_lsn = lsn;
        off += RECORD_HEADER + len;
    }
}

impl Wal {
    /// Open (or create) the log under `dir`, recovering every record
    /// acknowledged before the last shutdown/crash. Torn tails are
    /// truncated in place; the returned [`WalRecovery`] reports what was
    /// discarded. `disk` is only consulted for fault injection and is
    /// the partition's disk, so existing test injectors cover the WAL.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        disk: Arc<Disk>,
    ) -> Result<(Wal, Vec<WalRecord>), IoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| IoError::permanent(format!("create wal dir: {e}")))?;
        let mut seqs: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| IoError::permanent(format!("read wal dir: {e}")))?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("wal-"))
                    .and_then(|n| n.strip_suffix(".log"))
                    .and_then(|n| n.parse::<u64>().ok())
            })
            .collect();
        seqs.sort_unstable();

        let mut records = Vec::new();
        let mut recovery = WalRecovery::default();
        let mut segments = Vec::new();
        let mut prev_lsn = 0u64;
        let mut torn_at: Option<usize> = None;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = SegmentState::seg_path(&dir, seq);
            if torn_at.is_some() {
                // Everything after a tear is unacknowledged: drop it.
                let _ = std::fs::remove_file(&path);
                recovery.segments_dropped += 1;
                continue;
            }
            let mut raw = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut raw))
                .map_err(|e| IoError::permanent(format!("read wal segment: {e}")))?;
            let before = records.len();
            let (valid_end, last) = scan_segment(&raw, prev_lsn, &mut records);
            prev_lsn = last;
            if (valid_end as usize) < raw.len() {
                recovery.bytes_truncated += raw.len() as u64 - valid_end;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| IoError::permanent(format!("open wal segment: {e}")))?;
                f.set_len(valid_end)
                    .map_err(|e| IoError::permanent(format!("truncate wal tail: {e}")))?;
                torn_at = Some(i);
            }
            segments.push(Segment {
                seq,
                path,
                last_lsn: if records.len() > before {
                    Some(prev_lsn)
                } else {
                    None
                },
                bytes: valid_end,
            });
        }
        recovery.records_recovered = records.len() as u64;

        if segments.is_empty() {
            segments.push(Segment {
                seq: 0,
                path: SegmentState::seg_path(&dir, 0),
                last_lsn: None,
                bytes: 0,
            });
        }
        let active_seq = segments.last().expect("segment").seq;
        let active = SegmentState::open_segment(&dir, active_seq)?;
        // A freshly created segment (first open, or re-created after the
        // previous incarnation reclaimed everything) is only durable
        // once its directory entry is.
        sync_dir(&dir)?;

        let state = Arc::new(Mutex::new(WalState {
            pending: Vec::new(),
            pending_max_lsn: 0,
            next_lsn: prev_lsn + 1,
            durable_lsn: prev_lsn,
            failed: Vec::new(),
            poisoned: None,
            shutdown: false,
        }));
        let work = Arc::new(Condvar::new());
        let done = Arc::new(Condvar::new());
        let segment_state = Arc::new(Mutex::new(SegmentState {
            dir,
            segments,
            active,
        }));
        let fsyncs = Arc::new(AtomicU64::new(0));
        let group_commits = Arc::new(AtomicU64::new(0));

        let flusher = {
            let state = state.clone();
            let work = work.clone();
            let done = done.clone();
            let segments = segment_state.clone();
            let disk = disk.clone();
            let fsyncs = fsyncs.clone();
            let group_commits = group_commits.clone();
            let cfg = config.clone();
            std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || {
                    flusher_loop(&state, &work, &done, &segments, &disk, &fsyncs, &group_commits, &cfg)
                })
                .map_err(|e| IoError::permanent(format!("spawn wal flusher: {e}")))?
        };

        Ok((
            Wal {
                config,
                disk,
                state,
                work,
                done,
                segments: segment_state,
                flusher: Some(flusher),
                appends: AtomicU64::new(0),
                bytes_appended: AtomicU64::new(0),
                fsyncs,
                group_commits,
                recovery,
            },
            records,
        ))
    }

    /// Append one record and block until it is durable (group-committed).
    /// Returns the record's LSN. An error means the write was *not* made
    /// durable and must not be acknowledged to the client.
    pub fn append(&self, payload: &[u8]) -> Result<u64, IoError> {
        let lsn = self.submit(payload)?;
        self.wait_durable(lsn)
    }

    /// Enqueue one record for the next group commit and return its LSN
    /// *without* waiting for the fsync. The caller must follow up with
    /// [`Wal::wait_durable`] before acknowledging the write.
    ///
    /// This split exists so callers holding a coarse lock (the partition
    /// write lock) can assign the LSN and apply the operation atomically,
    /// then release the lock *before* blocking on durability — which is
    /// what lets concurrent writers to the same partition share one
    /// group commit instead of serializing on fsyncs.
    pub fn submit(&self, payload: &[u8]) -> Result<u64, IoError> {
        self.submit_many(std::iter::once(payload))
    }

    /// Append a batch of records and block until the *last* is durable
    /// (one group commit covers all of them). Returns the last LSN.
    /// Panics if the iterator is empty.
    pub fn append_many<'a, I>(&self, payloads: I) -> Result<u64, IoError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let lsn = self.submit_many(payloads)?;
        self.wait_durable(lsn)
    }

    /// Enqueue a batch of records and return the last LSN without
    /// waiting for durability; see [`Wal::submit`]. Panics if the
    /// iterator is empty.
    pub fn submit_many<'a, I>(&self, payloads: I) -> Result<u64, IoError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.disk.fault_check(IoOp::WalAppend, None)?;
        let mut state = self.state.lock().expect("wal state lock");
        if let Some(e) = &state.poisoned {
            return Err(e.clone());
        }
        let mut my_lsn = None;
        let mut bytes = 0u64;
        let mut count = 0u64;
        for payload in payloads {
            let lsn = state.next_lsn;
            state.next_lsn += 1;
            encode_record(lsn, payload, &mut state.pending);
            state.pending_max_lsn = lsn;
            bytes += (RECORD_HEADER + payload.len()) as u64;
            count += 1;
            my_lsn = Some(lsn);
        }
        let my_lsn = my_lsn.expect("submit_many requires at least one payload");
        self.appends.fetch_add(count, Ordering::Relaxed);
        self.bytes_appended.fetch_add(bytes, Ordering::Relaxed);
        self.work.notify_one();
        Ok(my_lsn)
    }

    /// Block until `lsn` is durable (its group commit fsynced). An error
    /// means the record was *not* made durable and must not be
    /// acknowledged to the client.
    pub fn wait_durable(&self, lsn: u64) -> Result<u64, IoError> {
        let mut state = self.state.lock().expect("wal state lock");
        loop {
            // A failed range wins over `durable_lsn`: later batches
            // advance it past the hole the failed batch left behind.
            if let Some((_, _, e)) = state
                .failed
                .iter()
                .find(|(lo, hi, _)| *lo < lsn && lsn <= *hi)
            {
                return Err(e.clone());
            }
            if state.durable_lsn >= lsn {
                return Ok(lsn);
            }
            // Not yet durable and the log is poisoned: the flusher will
            // never successfully commit this record.
            if let Some(e) = &state.poisoned {
                return Err(e.clone());
            }
            if state.shutdown {
                return Err(IoError::permanent("wal shut down before commit"));
            }
            state = self.done.wait(state).expect("wal state lock");
        }
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().expect("wal state lock").durable_lsn
    }

    /// Whether the log is poisoned: a background write or fsync failed,
    /// so every later submit and every not-yet-durable wait returns the
    /// original error. Health endpoints surface this as "degraded" —
    /// the instance still serves reads but cannot make writes durable.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().expect("wal state lock").poisoned.is_some()
    }

    /// Raise the LSN counters so the next append is numbered above
    /// `lsn`. [`Wal::open`] resumes numbering from the records still in
    /// the segments, but segments fully covered by a manifest commit are
    /// deleted — after a restart the survivors may start *below* the
    /// manifest's `flushed_lsn`, and fresh appends would be numbered in
    /// the already-flushed range and silently skipped by the next
    /// recovery. The opener calls this with the manifest's `flushed_lsn`
    /// to keep LSNs monotonic across restarts.
    pub fn reserve_lsn_floor(&self, lsn: u64) {
        let mut state = self.state.lock().expect("wal state lock");
        if state.next_lsn <= lsn {
            debug_assert!(
                state.pending.is_empty(),
                "LSN floor must be reserved before the first append"
            );
            state.next_lsn = lsn + 1;
        }
        if state.durable_lsn < lsn {
            state.durable_lsn = lsn;
        }
    }

    /// Discard WAL data made redundant by a manifest commit: delete
    /// sealed segments whose records are all `<= lsn`, and reset the
    /// active segment when everything in it is covered and nothing is in
    /// flight.
    pub fn truncate_upto(&self, lsn: u64) -> Result<(), IoError> {
        let mut state = self.state.lock().expect("wal state lock");
        let quiescent = state.pending.is_empty() && state.durable_lsn <= lsn;
        // A manifest whose `flushed_lsn` reached `lsn` has captured every
        // operation applied at or below it, so failed ranges entirely
        // below the truncation point can no longer have waiters that
        // must see the error — prune them so a disk that fails
        // repeatedly cannot grow this Vec (and the linear scan in
        // `wait_durable`) without bound.
        state.failed.retain(|(_, hi, _)| *hi > lsn);
        drop(state);
        let mut segs = self.segments.lock().expect("wal segment lock");
        let old: Vec<Segment> = std::mem::take(&mut segs.segments);
        let n = old.len();
        let mut kept = Vec::with_capacity(n);
        for (i, seg) in old.into_iter().enumerate() {
            let covered = seg.last_lsn.is_none_or(|l| l <= lsn);
            let is_active = i == n - 1;
            if is_active {
                if covered && quiescent && seg.bytes > 0 {
                    segs.active
                        .set_len(0)
                        .map_err(|e| IoError::permanent(format!("truncate wal segment: {e}")))?;
                    kept.push(Segment {
                        bytes: 0,
                        last_lsn: None,
                        ..seg
                    });
                } else {
                    kept.push(seg);
                }
            } else if covered {
                let _ = std::fs::remove_file(&seg.path);
            } else {
                kept.push(seg);
            }
        }
        segs.segments = kept;
        Ok(())
    }

    /// Total bytes currently held across all WAL segments.
    pub fn segment_bytes(&self) -> u64 {
        let segs = self.segments.lock().expect("wal segment lock");
        segs.segments.iter().map(|s| s.bytes).sum()
    }

    /// Records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Record bytes (headers included) appended since open.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended.load(Ordering::Relaxed)
    }

    /// Fsyncs issued by the group-commit flusher since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Group commits (batches) flushed since open. `appends / commits`
    /// is the achieved batching factor.
    pub fn group_commits(&self) -> u64 {
        self.group_commits.load(Ordering::Relaxed)
    }

    /// What recovery found when this log was opened.
    pub fn recovery(&self) -> &WalRecovery {
        &self.recovery
    }

    /// Failed `(lo, hi]` LSN ranges currently retained (test support
    /// for the pruning done by [`Wal::truncate_upto`]).
    #[cfg(test)]
    fn failed_ranges(&self) -> usize {
        self.state.lock().expect("wal state lock").failed.len()
    }

    /// The tuning knobs this log was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }
}

#[allow(clippy::too_many_arguments)]
fn flusher_loop(
    state: &Mutex<WalState>,
    work: &Condvar,
    done: &Condvar,
    segments: &Mutex<SegmentState>,
    disk: &Disk,
    fsyncs: &AtomicU64,
    group_commits: &AtomicU64,
    cfg: &WalConfig,
) {
    loop {
        let (buf, max_lsn, poisoned) = {
            let mut st = state.lock().expect("wal state lock");
            while st.pending.is_empty() && !st.shutdown {
                st = work.wait(st).expect("wal state lock");
            }
            if st.pending.is_empty() && st.shutdown {
                return;
            }
            // Group-commit window: batch more arrivals until the window
            // closes or enough bytes are pending.
            if !cfg.commit_interval.is_zero() {
                let deadline = Instant::now() + cfg.commit_interval;
                while !st.shutdown && st.pending.len() < cfg.batch_bytes {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, timeout) =
                        work.wait_timeout(st, remaining).expect("wal state lock");
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            (
                std::mem::take(&mut st.pending),
                st.pending_max_lsn,
                st.poisoned.clone(),
            )
        };
        let result = match poisoned {
            // A poisoned log fails the batch without touching the file:
            // the segment tail is untrustworthy and nothing appended
            // after the poisoning may be acknowledged.
            Some(error) => Err(BatchError {
                error,
                poison: false,
            }),
            None => disk
                .fault_check(IoOp::WalFlush, None)
                .map_err(|error| BatchError {
                    error,
                    poison: false,
                })
                .and_then(|()| {
                    let mut segs = segments.lock().expect("wal segment lock");
                    segs.write_batch(&buf, max_lsn, cfg.segment_bytes)
                }),
        };
        let mut st = state.lock().expect("wal state lock");
        match result {
            Ok(()) => {
                st.durable_lsn = max_lsn;
                fsyncs.fetch_add(1, Ordering::Relaxed);
                group_commits.fetch_add(1, Ordering::Relaxed);
            }
            Err(be) => {
                // The whole batch failed: nothing in it may be
                // acknowledged. The batch held exactly the LSNs above the
                // last durable point (holes below it already have their
                // own failed ranges), so waiters in `(durable, max]` see
                // the error forever — even once later batches advance
                // `durable_lsn` past this hole.
                let lo = st.durable_lsn;
                st.failed.push((lo, max_lsn, be.error.clone()));
                if be.poison && st.poisoned.is_none() {
                    st.poisoned = Some(be.error);
                }
            }
        }
        done.notify_all();
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut st = self.state.lock().expect("wal state lock");
            st.shutdown = true;
        }
        self.work.notify_all();
        self.done.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultRule};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asterix_wal_test_{}_{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_cfg() -> WalConfig {
        WalConfig {
            commit_interval: Duration::ZERO,
            batch_bytes: 64 * 1024,
            segment_bytes: 1024,
        }
    }

    #[test]
    fn append_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let disk = Arc::new(Disk::new());
        {
            let (wal, recovered) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
            assert!(recovered.is_empty());
            for i in 0..50u32 {
                let lsn = wal.append(&i.to_le_bytes()).unwrap();
                assert_eq!(lsn, (i + 1) as u64);
            }
            assert_eq!(wal.durable_lsn(), 50);
            assert!(wal.fsyncs() > 0);
        }
        let (wal2, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        assert_eq!(recovered.len(), 50);
        assert_eq!(recovered[0].lsn, 1);
        assert_eq!(recovered[49].lsn, 50);
        assert_eq!(recovered[7].payload.as_ref(), &7u32.to_le_bytes());
        // Segment rotation happened (segment_bytes = 1 KiB, 50 records).
        assert!(wal2.segment_bytes() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let disk = Arc::new(Disk::new());
        {
            let cfg = WalConfig {
                segment_bytes: u64::MAX,
                ..quick_cfg()
            };
            let (wal, _) = Wal::open(&dir, cfg, disk.clone()).unwrap();
            for i in 0..10u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
        }
        // Tear the last record mid-payload.
        let path = dir.join("wal-000000.log");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 2]).unwrap();
        let (wal, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        assert_eq!(recovered.len(), 9, "torn final record must be dropped");
        assert_eq!(wal.recovery().bytes_truncated, 18); // 16B header + 2 payload bytes left
        assert_eq!(wal.recovery().records_recovered, 9);
        // The next append continues the LSN sequence after the tear.
        let lsn = wal.append(b"next").unwrap();
        assert_eq!(lsn, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_checksum_ends_the_log() {
        let dir = tmpdir("badcrc");
        let disk = Arc::new(Disk::new());
        {
            let cfg = WalConfig {
                segment_bytes: u64::MAX,
                ..quick_cfg()
            };
            let (wal, _) = Wal::open(&dir, cfg, disk.clone()).unwrap();
            for i in 0..5u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
        }
        // Corrupt record 3's payload (each record is 16 + 4 = 20 bytes).
        let path = dir.join("wal-000000.log");
        let mut raw = std::fs::read(&path).unwrap();
        raw[2 * 20 + 17] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let (_wal, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        // Records 1 and 2 survive; 3 fails its checksum and ends the log
        // (4 and 5 were acknowledged but follow the tear — the *caller*
        // decides whether that is data loss; group commit means it cannot
        // happen from a real torn write, only from corruption).
        assert_eq!(recovered.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_filled_tail_is_truncated() {
        let dir = tmpdir("zerotail");
        let disk = Arc::new(Disk::new());
        {
            let cfg = WalConfig {
                segment_bytes: u64::MAX,
                ..quick_cfg()
            };
            let (wal, _) = Wal::open(&dir, cfg, disk.clone()).unwrap();
            wal.append(b"only").unwrap();
        }
        let path = dir.join("wal-000000.log");
        let mut raw = std::fs::read(&path).unwrap();
        let old_len = raw.len();
        raw.extend_from_slice(&[0u8; 64]); // preallocated-zeros tail
        std::fs::write(&path, &raw).unwrap();
        let (_wal, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), old_len as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_upto_discards_flushed_segments() {
        let dir = tmpdir("truncate");
        let disk = Arc::new(Disk::new());
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        for i in 0..200u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        assert!(wal.segment_bytes() > 0);
        wal.truncate_upto(wal.durable_lsn()).unwrap();
        assert_eq!(
            wal.segment_bytes(),
            0,
            "everything flushed: all wal data must be reclaimed"
        );
        // LSNs keep increasing after truncation.
        let lsn = wal.append(b"after").unwrap();
        assert_eq!(lsn, 201);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_wal_append_fault_is_typed() {
        let dir = tmpdir("fault_append");
        let disk = Arc::new(Disk::new());
        disk.set_fault_injector(Arc::new(FaultInjector::new(3).with_rule(FaultRule {
            op: IoOp::WalAppend,
            file: None,
            nth: 1,
            transient: true,
        })));
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
        let err = wal.append(b"doomed").unwrap_err();
        assert!(err.transient);
        // The fault was pre-commit: nothing reached the log, and the next
        // append succeeds.
        assert_eq!(wal.append(b"fine").unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_wal_flush_fault_fails_the_batch() {
        let dir = tmpdir("fault_flush");
        let disk = Arc::new(Disk::new());
        disk.set_fault_injector(Arc::new(FaultInjector::new(3).with_rule(FaultRule {
            op: IoOp::WalFlush,
            file: None,
            nth: 1,
            transient: false,
        })));
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
        let err = wal.append(b"doomed").unwrap_err();
        assert!(!err.transient);
        assert_eq!(wal.durable_lsn(), 0, "failed batch must not advance durability");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A later successful batch advances `durable_lsn` past the hole a
    /// failed batch left behind; waiters inside the hole must still get
    /// the error, not a spurious `Ok` from the durable-LSN comparison.
    #[test]
    fn failed_lsn_stays_failed_after_later_commits() {
        let dir = tmpdir("failed_range");
        let disk = Arc::new(Disk::new());
        disk.set_fault_injector(Arc::new(FaultInjector::new(3).with_rule(FaultRule {
            op: IoOp::WalFlush,
            file: None,
            nth: 1,
            transient: false,
        })));
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
        let lsn1 = wal.submit(b"doomed").unwrap();
        assert!(wal.wait_durable(lsn1).is_err());
        disk.clear_fault_injector();
        let lsn2 = wal.append(b"fine").unwrap();
        assert_eq!(lsn2, 2);
        assert_eq!(wal.durable_lsn(), 2, "the later batch commits past the hole");
        assert!(
            wal.wait_durable(lsn1).is_err(),
            "lsn {lsn1} was never persisted; durable_lsn passing it must not ack it"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `truncate_upto` prunes failed ranges below the truncation LSN: a
    /// manifest that advanced `flushed_lsn` there has captured every
    /// applied operation, so no waiter can still need the error — and a
    /// repeatedly failing disk must not grow the range list (scanned on
    /// every `wait_durable`) without bound.
    #[test]
    fn truncate_prunes_failed_ranges() {
        let dir = tmpdir("prune_failed");
        let disk = Arc::new(Disk::new());
        disk.set_fault_injector(Arc::new(FaultInjector::new(3).with_rule(FaultRule {
            op: IoOp::WalFlush,
            file: None,
            nth: 1,
            transient: false,
        })));
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
        let lsn1 = wal.submit(b"doomed").unwrap();
        assert!(wal.wait_durable(lsn1).is_err());
        assert_eq!(wal.failed_ranges(), 1);
        disk.clear_fault_injector();
        let lsn2 = wal.append(b"fine").unwrap();
        wal.truncate_upto(lsn2).unwrap();
        assert_eq!(wal.failed_ranges(), 0, "covered failed ranges must be pruned");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appenders_group_commit() {
        let dir = tmpdir("group");
        let disk = Arc::new(Disk::new());
        let cfg = WalConfig {
            commit_interval: Duration::from_millis(1),
            batch_bytes: 1024 * 1024,
            segment_bytes: u64::MAX,
        };
        let (wal, _) = Wal::open(&dir, cfg, disk.clone()).unwrap();
        let wal = Arc::new(wal);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        wal.append(format!("t{t}-{i}").as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.appends(), 400);
        assert_eq!(wal.durable_lsn(), 400);
        assert!(
            wal.group_commits() < 400,
            "concurrent appends must share commits: {} commits for 400 appends",
            wal.group_commits()
        );
        drop(wal);
        let (_, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        assert_eq!(recovered.len(), 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_many_commits_once() {
        let dir = tmpdir("many");
        let disk = Arc::new(Disk::new());
        let (wal, _) = Wal::open(&dir, quick_cfg(), disk.clone()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let last = wal
            .append_many(payloads.iter().map(|p| p.as_slice()))
            .unwrap();
        assert_eq!(last, 100);
        assert_eq!(wal.appends(), 100);
        assert!(wal.group_commits() <= 2, "one batch should need one commit");
        drop(wal);
        let (_, recovered) = Wal::open(&dir, quick_cfg(), disk).unwrap();
        assert_eq!(recovered.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
