//! Deterministic, seeded fault injection for the simulated disk.
//!
//! Real AsterixDB runs on disks that fail; the reproduction's storage
//! stack must surface those failures as typed errors instead of panics
//! so the executor can cancel a query cleanly. The [`FaultInjector`]
//! makes failures *reproducible*: every fault is either
//!
//! * a **targeted rule** ([`FaultRule`]) — fail the Nth read/append/flush,
//!   optionally restricted to one [`FileId`], either once (`transient`,
//!   the fault clears and a retry succeeds) or forever (`permanent`), or
//! * **seeded chaos** ([`FaultInjector::random`]) — each I/O consults a
//!   SplitMix64 stream, so a given seed produces the same fault sequence
//!   on every run.
//!
//! Injectors attach to a [`crate::disk::Disk`] (one per partition in the
//! simulated cluster), so "fail partition 2's disk" is "install an
//! injector on partition 2's disk".

use crate::disk::FileId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// What class of failure an [`IoError`] reports. Most errors are plain
/// device faults; `Corruption` is reserved for integrity violations — a
/// page or WAL record whose stored CRC32 does not match its payload, or a
/// manifest that no longer parses. Corruption is never transient: retrying
/// the read returns the same bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoErrorKind {
    /// A device-level failure (injected or real OS error).
    #[default]
    Device,
    /// A checksum/format mismatch: the bytes read are not the bytes
    /// written.
    Corruption,
}

/// A storage I/O failure. `transient` faults are expected to succeed if
/// the operation is retried (the core layer retries flushes with bounded
/// backoff); `permanent` faults fail every retry. `kind` separates device
/// faults from [`IoErrorKind::Corruption`] (checksum mismatches), which
/// the recovery path treats differently: a corrupt WAL tail is truncated,
/// a corrupt sealed component fails recovery loudly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoError {
    /// Human-readable description of the failure.
    pub message: String,
    /// `true` when a retry of the same operation may succeed.
    pub transient: bool,
    /// Device fault vs. data corruption.
    pub kind: IoErrorKind,
}

impl IoError {
    /// A permanent device fault: every retry fails.
    pub fn permanent(message: impl Into<String>) -> Self {
        IoError {
            message: message.into(),
            transient: false,
            kind: IoErrorKind::Device,
        }
    }

    /// A transient device fault: a retry is expected to succeed.
    pub fn transient(message: impl Into<String>) -> Self {
        IoError {
            message: message.into(),
            transient: true,
            kind: IoErrorKind::Device,
        }
    }

    /// A typed corruption error (CRC mismatch, undecodable page, torn
    /// manifest). Never transient.
    pub fn corruption(message: impl Into<String>) -> Self {
        IoError {
            message: message.into(),
            transient: false,
            kind: IoErrorKind::Corruption,
        }
    }

    /// True when this error reports data corruption rather than a device
    /// fault.
    pub fn is_corruption(&self) -> bool {
        self.kind == IoErrorKind::Corruption
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match (self.kind, self.transient) {
            (IoErrorKind::Corruption, _) => "corruption",
            (IoErrorKind::Device, true) => "transient",
            (IoErrorKind::Device, false) => "permanent",
        };
        write!(f, "{} i/o error: {}", kind, self.message)
    }
}

impl std::error::Error for IoError {}

/// The I/O operations a fault can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// A page read from a file.
    Read,
    /// A page append to a file.
    Append,
    /// An LSM flush (checked once per [`crate::lsm::LsmTree::flush`],
    /// before any page is written).
    Flush,
    /// One record append to the write-ahead log (an `Append`-class
    /// failure, checked synchronously in [`crate::wal::Wal::append`]
    /// before the record is queued).
    WalAppend,
    /// One WAL group-commit flush (a `Flush`-class failure, checked by
    /// the group-commit thread before the batch is written + fsynced;
    /// every writer waiting on that batch sees the error).
    WalFlush,
    /// One manifest commit (a `Flush`-class failure, checked before the
    /// atomic rename that publishes the new manifest).
    ManifestCommit,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoOp::Read => write!(f, "read"),
            IoOp::Append => write!(f, "append"),
            IoOp::Flush => write!(f, "flush"),
            IoOp::WalAppend => write!(f, "wal-append"),
            IoOp::WalFlush => write!(f, "wal-flush"),
            IoOp::ManifestCommit => write!(f, "manifest-commit"),
        }
    }
}

/// Abort the process if the `ASTERIX_CRASH_POINT` environment variable
/// names this point. The kill -9 torture harness (`experiments
/// durability`) runs a child writer with a crash point armed —
/// mid-flush, mid-merge, mid-WAL-commit, mid-manifest-rename — and then
/// verifies that a reopened instance lost no acknowledged write. An
/// abort is indistinguishable from `kill -9` for durability purposes:
/// no destructor runs, no buffer is flushed.
///
/// The environment variable is read once per process; when unset (every
/// normal run) the cost is one atomic load and a pointer compare.
pub fn crash_point(name: &str) {
    static POINT: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    let armed = POINT.get_or_init(|| std::env::var("ASTERIX_CRASH_POINT").ok());
    if let Some(p) = armed {
        if p == name {
            eprintln!("crash point '{name}' armed: aborting");
            std::process::abort();
        }
    }
}

/// Fail the `nth` (1-based) matching operation. A `transient` rule fires
/// exactly once; a permanent rule fails the nth and every later match.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Which operation class the rule applies to.
    pub op: IoOp,
    /// Restrict to one file; `None` matches any file (and flushes, which
    /// have no file yet).
    pub file: Option<FileId>,
    /// 1-based index of the first matching operation to fail.
    pub nth: u64,
    /// Whether the injected error is retryable.
    pub transient: bool,
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    seen: u64,
    fired: bool,
}

/// SplitMix64 — tiny, deterministic, and good enough to decorrelate the
/// chaos stream from the op sequence.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic fault source for one simulated disk.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Mutex<Vec<RuleState>>,
    rng: Mutex<SplitMix64>,
    /// Probability that any single I/O fails transiently (chaos mode).
    probability: f64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector with no faults until rules are added.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rules: Mutex::new(Vec::new()),
            rng: Mutex::new(SplitMix64(seed)),
            probability: 0.0,
            injected: AtomicU64::new(0),
        }
    }

    /// Seeded chaos: every I/O fails transiently with `probability`,
    /// drawn from a SplitMix64 stream — the same seed yields the same
    /// fault sequence.
    pub fn random(seed: u64, probability: f64) -> Self {
        FaultInjector {
            probability: probability.clamp(0.0, 1.0),
            ..Self::new(seed)
        }
    }

    /// Add a targeted rule; builder-style so tests read declaratively.
    pub fn with_rule(self, rule: FaultRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Install an additional rule on a live injector.
    pub fn add_rule(&self, rule: FaultRule) {
        assert!(rule.nth >= 1, "fault rule nth is 1-based");
        self.rules.lock().push(RuleState {
            rule,
            seen: 0,
            fired: false,
        });
    }

    /// How many faults this injector has raised so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the injector before performing `op` on `file`.
    pub fn check(&self, op: IoOp, file: Option<FileId>) -> Result<(), IoError> {
        {
            let mut rules = self.rules.lock();
            for state in rules.iter_mut() {
                if state.rule.op != op {
                    continue;
                }
                if let (Some(want), Some(got)) = (state.rule.file, file) {
                    if want != got {
                        continue;
                    }
                } else if state.rule.file.is_some() {
                    continue; // rule wants a specific file, op has none
                }
                state.seen += 1;
                if state.seen < state.rule.nth {
                    continue;
                }
                if state.rule.transient && state.fired {
                    continue; // transient: already fired once
                }
                state.fired = true;
                self.injected.fetch_add(1, Ordering::Relaxed);
                let scope = match state.rule.file {
                    Some(file) => format!("file {}", file.0),
                    None => "any file".into(),
                };
                return Err(IoError {
                    message: format!("injected fault on {op} #{} ({scope})", state.seen),
                    transient: state.rule.transient,
                    kind: IoErrorKind::Device,
                });
            }
        }
        if self.probability > 0.0 && self.rng.lock().next_f64() < self.probability {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(IoError::transient(format!("injected random fault on {op}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_transient_fires_once() {
        let inj = FaultInjector::new(1).with_rule(FaultRule {
            op: IoOp::Read,
            file: None,
            nth: 2,
            transient: true,
        });
        assert!(inj.check(IoOp::Read, None).is_ok());
        let err = inj.check(IoOp::Read, None).unwrap_err();
        assert!(err.transient);
        // Cleared: later reads succeed (a retry would too).
        assert!(inj.check(IoOp::Read, None).is_ok());
        assert_eq!(inj.faults_injected(), 1);
    }

    #[test]
    fn targeted_permanent_keeps_failing() {
        let inj = FaultInjector::new(1).with_rule(FaultRule {
            op: IoOp::Append,
            file: None,
            nth: 1,
            transient: false,
        });
        assert!(inj.check(IoOp::Append, None).is_err());
        assert!(inj.check(IoOp::Append, None).is_err());
        assert!(inj.check(IoOp::Read, None).is_ok());
    }

    #[test]
    fn file_scoped_rule_ignores_other_files() {
        let inj = FaultInjector::new(1).with_rule(FaultRule {
            op: IoOp::Read,
            file: Some(FileId(7)),
            nth: 1,
            transient: false,
        });
        assert!(inj.check(IoOp::Read, Some(FileId(3))).is_ok());
        assert!(inj.check(IoOp::Read, None).is_ok());
        assert!(inj.check(IoOp::Read, Some(FileId(7))).is_err());
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed| {
            let inj = FaultInjector::random(seed, 0.3);
            (0..100)
                .map(|_| inj.check(IoOp::Read, None).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
        let faults = run(42).iter().filter(|f| **f).count();
        assert!(faults > 10 && faults < 60, "~30% of 100, got {faults}");
    }

    #[test]
    fn zero_probability_never_fails() {
        let inj = FaultInjector::random(9, 0.0);
        assert!((0..50).all(|_| inj.check(IoOp::Flush, None).is_ok()));
    }
}
