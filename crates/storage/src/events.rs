//! Bounded ring buffer of LSM lifecycle events.
//!
//! Flushes, merges, and bulk loads are the background heartbeat of an
//! LSM-based instance: most operational mysteries ("why did p99 spike at
//! 14:32?") resolve to "a merge was running". The [`LsmEventLog`] records
//! every lifecycle transition — start and end, with bytes, component
//! count, and component generation — into a fixed-capacity ring so an
//! operator can always see the *recent* history without the log growing
//! with uptime. Fault retries from the [`crate::fault::FaultInjector`]
//! path are recorded here too, so transient-I/O storms show up next to
//! the flushes they disturbed.
//!
//! One [`LsmEventLog`] is shared by every LSM tree of an instance (it is
//! threaded through [`crate::StorageConfig::events`]); each tree stamps
//! its events with a human-readable tag (`dataset/p3/inv_kw`) set by
//! [`crate::partition::PartitionStore`].

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// What happened. `*Start`/`*End` pairs bracket the operation; a `Start`
/// without a matching `End` means the operation failed (e.g. an injected
/// flush fault) — the retry then appears as [`LsmEventKind::FaultRetry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsmEventKind {
    /// A memory-component flush began.
    FlushStart,
    /// A flush completed and its run component is linked.
    FlushEnd,
    /// A full merge of the disk components began.
    MergeStart,
    /// A merge completed; superseded components are unlinked.
    MergeEnd,
    /// A sorted bulk load began.
    BulkLoadStart,
    /// A bulk load completed.
    BulkLoadEnd,
    /// A transient injected I/O fault was retried.
    FaultRetry,
    /// Startup recovery began for one partition (`bytes` = WAL bytes on
    /// disk before replay).
    RecoveryStart,
    /// Startup recovery finished (`bytes` = WAL records replayed).
    RecoveryEnd,
    /// WAL segments discarded after a manifest commit (`bytes` = WAL
    /// bytes reclaimed).
    WalTruncate,
}

impl LsmEventKind {
    /// Stable snake_case name used in telemetry JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LsmEventKind::FlushStart => "flush_start",
            LsmEventKind::FlushEnd => "flush_end",
            LsmEventKind::MergeStart => "merge_start",
            LsmEventKind::MergeEnd => "merge_end",
            LsmEventKind::BulkLoadStart => "bulk_load_start",
            LsmEventKind::BulkLoadEnd => "bulk_load_end",
            LsmEventKind::FaultRetry => "fault_retry",
            LsmEventKind::RecoveryStart => "recovery_start",
            LsmEventKind::RecoveryEnd => "recovery_end",
            LsmEventKind::WalTruncate => "wal_truncate",
        }
    }
}

/// One lifecycle event. `seq` is a monotonically increasing global
/// sequence number (never reset, even when old events are evicted from
/// the ring), so consumers can detect gaps after sampling.
#[derive(Clone, Debug)]
pub struct LsmEvent {
    /// Global sequence number (monotone across evictions).
    pub seq: u64,
    /// Microseconds since the event log was created.
    pub at_us: u64,
    /// Which tree: `dataset/p<partition>/<index>`.
    pub tree: Arc<str>,
    /// What happened.
    pub kind: LsmEventKind,
    /// Bytes involved: memory-component size for `FlushStart`, resulting
    /// component size for `FlushEnd`/`MergeEnd`, total input bytes for
    /// `MergeStart`.
    pub bytes: u64,
    /// Disk component count after the event.
    pub components: u64,
    /// LSM generation after the event (bumped by every mutation batch and
    /// structural change; the postings cache keys validity off it).
    pub generation: u64,
    /// Free-form context (fault description for `FaultRetry`).
    pub detail: Option<String>,
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<LsmEvent>,
    /// Total events ever recorded (`buf` holds the `capacity` newest).
    recorded: u64,
    /// Events evicted to make room (== recorded - buf.len()).
    dropped: u64,
}

/// Fixed-capacity, thread-safe event ring. Eviction is strictly
/// oldest-first, so the newest `capacity` events are always retained.
#[derive(Debug)]
pub struct LsmEventLog {
    t0: Instant,
    capacity: usize,
    inner: Mutex<Ring>,
}

impl LsmEventLog {
    /// Create a ring retaining the newest `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        LsmEventLog {
            t0: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// The retention capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. Lock-cheap: one short mutex hold, no allocation
    /// beyond the event itself once the ring is warm.
    pub fn record(
        &self,
        tree: &Arc<str>,
        kind: LsmEventKind,
        bytes: u64,
        components: u64,
        generation: u64,
        detail: Option<String>,
    ) {
        let at_us = self.t0.elapsed().as_micros() as u64;
        let mut ring = self.inner.lock();
        let seq = ring.recorded;
        ring.recorded += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(LsmEvent {
            seq,
            at_us,
            tree: tree.clone(),
            kind,
            bytes,
            components,
            generation,
            detail,
        });
    }

    /// The retained events, oldest first. Sequence numbers are contiguous
    /// and end at `total_recorded() - 1`.
    pub fn snapshot(&self) -> Vec<LsmEvent> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Events evicted from the ring to bound memory.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn ring_keeps_newest_k_events() {
        let log = LsmEventLog::new(4);
        let t = tag("ds/p0/<primary>");
        for i in 0..10u64 {
            log.record(&t, LsmEventKind::FlushEnd, i, 1, i, None);
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(log.total_recorded(), 10);
        assert_eq!(log.dropped(), 6);
        // The newest K survive, in order, with contiguous seq numbers
        // ending at total_recorded - 1.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_recording_never_loses_the_newest_events() {
        let log = Arc::new(LsmEventLog::new(16));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    let tag: Arc<str> = Arc::from(format!("ds/p{t}/<primary>"));
                    for i in 0..100u64 {
                        log.record(&tag, LsmEventKind::MergeEnd, i, 1, i, None);
                    }
                });
            }
        });
        assert_eq!(log.total_recorded(), 400);
        assert_eq!(log.dropped(), 400 - 16);
        let events = log.snapshot();
        assert_eq!(events.len(), 16);
        // Monotone, contiguous, ending at the final sequence number.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, 400 - 16 + i as u64);
        }
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let log = LsmEventLog::new(0);
        let t = tag("x");
        log.record(&t, LsmEventKind::BulkLoadStart, 0, 0, 0, None);
        log.record(&t, LsmEventKind::BulkLoadEnd, 5, 1, 1, None);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].kind, LsmEventKind::BulkLoadEnd);
    }
}
