//! Workload construction: the three paper datasets (Table 3) at laptop
//! scale, loaded into simulated cluster instances with the §6.2 indexes.

use asterix_adm::{IndexKind, Value};
use asterix_core::{IndexBuildStats, Instance, InstanceConfig};
use asterix_datagen::{amazon_reviews, reddit_submissions, tweets};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale/partition settings, overridable via `ASTERIX_SCALE` (record
/// multiplier, default 1.0) and `ASTERIX_PARTITIONS`.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    pub partitions: usize,
    pub amazon_records: usize,
    pub reddit_records: usize,
    pub twitter_records: usize,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        let scale: f64 = std::env::var("ASTERIX_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let partitions: usize = std::env::var("ASTERIX_PARTITIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4);
        WorkloadConfig {
            partitions,
            amazon_records: (20_000.0 * scale) as usize,
            reddit_records: (8_000.0 * scale) as usize,
            twitter_records: (8_000.0 * scale) as usize,
            seed: 2018, // EDBT 2018
        }
    }
}

/// Per-dataset metadata the experiments consult.
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    pub name: &'static str,
    /// Field for edit-distance queries (short strings).
    pub ed_field: &'static str,
    /// Field for Jaccard queries (token-rich text).
    pub jac_field: &'static str,
    pub records: usize,
}

/// A loaded instance plus dataset metadata.
pub struct Workloads {
    pub db: Instance,
    pub datasets: Vec<DatasetInfo>,
    pub config: WorkloadConfig,
}

impl Workloads {
    /// Build an instance with all three datasets loaded (no similarity
    /// indexes yet; call [`Workloads::build_indexes`]).
    pub fn load(config: WorkloadConfig) -> Self {
        let db = Instance::new(InstanceConfig::with_partitions(config.partitions));
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(config.amazon_records, config.seed))
            .unwrap();
        db.create_dataset("Reddit", "id").unwrap();
        db.load("Reddit", reddit_submissions(config.reddit_records, config.seed + 1))
            .unwrap();
        db.create_dataset("Twitter", "id").unwrap();
        db.load("Twitter", tweets(config.twitter_records, config.seed + 2))
            .unwrap();
        let datasets = vec![
            DatasetInfo {
                name: "AmazonReview",
                ed_field: "reviewerName",
                jac_field: "summary",
                records: config.amazon_records,
            },
            DatasetInfo {
                name: "Reddit",
                ed_field: "author",
                jac_field: "title",
                records: config.reddit_records,
            },
            DatasetInfo {
                name: "Twitter",
                ed_field: "user.name",
                jac_field: "text",
                records: config.twitter_records,
            },
        ];
        Workloads {
            db,
            datasets,
            config,
        }
    }

    /// Just the Amazon dataset (most experiments, as in the paper).
    pub fn amazon_only(config: WorkloadConfig) -> Self {
        let db = Instance::new(InstanceConfig::with_partitions(config.partitions));
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(config.amazon_records, config.seed))
            .unwrap();
        let datasets = vec![DatasetInfo {
            name: "AmazonReview",
            ed_field: "reviewerName",
            jac_field: "summary",
            records: config.amazon_records,
        }];
        Workloads {
            db,
            datasets,
            config,
        }
    }

    /// Build the §6.2 similarity indexes on every dataset, returning the
    /// Table-5 statistics.
    pub fn build_indexes(&self) -> Vec<IndexBuildStats> {
        let mut stats = Vec::new();
        for ds in &self.datasets {
            stats.push(
                self.db
                    .create_index(ds.name, &format!("{}_kw", ds.name), ds.jac_field, IndexKind::Keyword)
                    .unwrap(),
            );
            stats.push(
                self.db
                    .create_index(
                        ds.name,
                        &format!("{}_2gram", ds.name),
                        ds.ed_field,
                        IndexKind::NGram(2),
                    )
                    .unwrap(),
            );
        }
        stats
    }

    /// §6.3's search-value sets: random unique values extracted from a
    /// search field (min 3 words for Jaccard probes, min 3 chars for
    /// edit-distance probes).
    pub fn search_values(
        &self,
        dataset: &str,
        field: &str,
        how_many: usize,
        min_words: usize,
        min_chars: usize,
        seed: u64,
    ) -> Vec<String> {
        let r = self
            .db
            .query(&format!("for $t in dataset {dataset} return $t.{field}"))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool: Vec<String> = r
            .rows
            .iter()
            .filter_map(Value::as_str)
            .filter(|s| {
                s.split_whitespace().count() >= min_words && s.chars().count() >= min_chars
            })
            .map(|s| s.replace('\'', ""))
            .collect();
        pool.sort();
        pool.dedup();
        let mut out = Vec::with_capacity(how_many);
        for _ in 0..how_many.min(pool.len().max(1)) {
            if pool.is_empty() {
                break;
            }
            let i = rng.gen_range(0..pool.len());
            out.push(pool.swap_remove(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            partitions: 2,
            amazon_records: 300,
            reddit_records: 100,
            twitter_records: 100,
            seed: 5,
        }
    }

    #[test]
    fn load_all_datasets() {
        let w = Workloads::load(tiny());
        assert_eq!(w.db.count_records("AmazonReview").unwrap(), 300);
        assert_eq!(w.db.count_records("Reddit").unwrap(), 100);
        assert_eq!(w.db.count_records("Twitter").unwrap(), 100);
    }

    #[test]
    fn indexes_build_with_stats() {
        let w = Workloads::amazon_only(tiny());
        let stats = w.build_indexes();
        assert_eq!(stats.len(), 2);
        for s in stats {
            assert_eq!(s.records_indexed, 300);
            assert!(s.size_bytes > 0);
        }
    }

    #[test]
    fn search_values_respect_filters() {
        let w = Workloads::amazon_only(tiny());
        let vals = w.search_values("AmazonReview", "summary", 10, 3, 3, 1);
        assert!(!vals.is_empty());
        for v in &vals {
            assert!(v.split_whitespace().count() >= 3);
        }
        // Deterministic.
        assert_eq!(vals, w.search_values("AmazonReview", "summary", 10, 3, 3, 1));
    }
}
