//! Timing and table-printing helpers for the experiment harness.

use asterix_core::{CoreError, Instance, QueryOptions, QueryResult};
use std::time::Duration;

/// A timed query outcome.
#[derive(Clone, Debug)]
pub struct Timed {
    pub avg: Duration,
    pub runs: usize,
    /// Result cardinality of the last run.
    pub rows: usize,
    /// Index candidates of the last run (0 when no index search ran).
    pub candidates: u64,
}

/// Run a query once, returning the result.
pub fn time_once(
    db: &Instance,
    query: &str,
    options: &QueryOptions,
) -> Result<QueryResult, CoreError> {
    db.query_with(query, options)
}

/// Average execution time across the given query texts (the paper's §6.3
/// methodology: many random search values, averaged).
pub fn avg_time(
    db: &Instance,
    queries: &[String],
    options: &QueryOptions,
) -> Result<Timed, CoreError> {
    assert!(!queries.is_empty());
    let mut total = Duration::ZERO;
    let mut rows = 0;
    let mut candidates = 0;
    for q in queries {
        let r = db.query_with(q, options)?;
        total += r.execution_time;
        rows = r.rows.len();
        candidates = r.index_candidates();
    }
    Ok(Timed {
        avg: total / queries.len() as u32,
        runs: queries.len(),
        rows,
        candidates,
    })
}

/// Human-friendly duration.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Print an aligned ASCII table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(15)), "15.0 s");
    }
}
