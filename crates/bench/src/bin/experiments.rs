//! Regenerate every table and figure of the paper's evaluation (§6) at
//! laptop scale, plus the DESIGN.md ablations.
//!
//! Usage:
//!   cargo run --release -p asterix-bench --bin experiments [-- <which>...]
//!
//! `<which>` ∈ {config, datasets, table5, table6, fig15, fig22a, fig22b,
//! fig24a, fig24b, fig25a, fig25b, fig27a, fig27bc, ablations, profile,
//! hotpath, monitor, observe, concurrency, durability, serve, all}
//! (default: all). Scale via env
//! `ASTERIX_SCALE` (default 1.0 ≈ 20k Amazon records) and
//! `ASTERIX_PARTITIONS` (default 4).
//!
//! `profile` runs representative queries with per-query profiling and
//! writes the full `QueryProfile` of each to `BENCH_profile.json`.
//!
//! `hotpath` measures the index-search hot-path optimizations (postings
//! cache, batched sorted primary lookups, token memoization) against a
//! baseline with all of them disabled, pins result equality, and writes
//! `BENCH_hotpath.json`. `--quick` shrinks it for CI.
//!
//! `monitor` runs the mixed workload (scans, index selections, index
//! joins) on worker threads racing a DML + flush thread while sampling
//! `Instance::metrics_snapshot()`, forces one slow-query capture, then
//! measures telemetry-enabled vs telemetry-disabled overhead on the same
//! workload. Writes `BENCH_telemetry.json` with per-class p50/p95/p99.
//!
//! `observe` starts the admin HTTP endpoint against a loaded instance
//! and exercises live introspection over real TCP: scrapes `/queries`,
//! `/health`, `/metrics`, `/lsm`, and `/slow` while the mixed workload
//! runs, asserts every scraped running-query entry is well-formed and
//! internally consistent (and that the registry drains to empty),
//! watches one long-running query appear with non-zero live operator
//! progress and cancels it via `POST /queries/<id>/cancel`, then
//! measures continuous-polling overhead against an unpolled baseline.
//! Writes `BENCH_observe.json`. `--quick` shrinks it for CI.
//!
//! `concurrency` drives N ∈ {1, 8, 32, 128} concurrent clients of the
//! mixed workload against (a) the pooled executor with admission control
//! (the default scheduler) and (b) the unbounded seed executor
//! (`SchedulerConfig::disabled()`), sampling the process's peak thread
//! count and the client-observed latency distribution at every level.
//! Writes `BENCH_concurrency.json`. `--quick` shrinks to N ∈ {1, 8, 16}
//! for CI.
//!
//! `durability` is the kill -9 torture harness: it spawns child writer
//! processes against a durable data directory and kills them for real —
//! via armed crash points (`ASTERIX_CRASH_POINT` ∈ {flush.mid,
//! merge.mid, manifest.rename}, each an `abort()` indistinguishable from
//! SIGKILL) and via plain `SIGKILL` at random moments mid-stream. After
//! every crash the parent reopens the directory in-process and asserts
//! zero acknowledged-write loss and scan ≡ index. Also measures startup
//! recovery time and WAL group-commit throughput. Writes
//! `BENCH_durability.json`. `--quick` shrinks the round counts for CI.
//!
//! `serve` exercises the `asterix-server` HTTP service end to end: (a)
//! streaming parity + latency — concurrent HTTP clients run the same
//! indexed similarity query as direct library threads at identical
//! concurrency, every streamed result set must match library execution
//! exactly, and the HTTP p95 must stay within 1.2× of the library p95;
//! (b) ingest durability — a child `asterix-server` process is fed
//! `POST /ingest` batches by concurrent feeders and killed with SIGKILL
//! mid-feed, after which the parent reopens the data directory and
//! asserts zero acknowledged-batch loss (a `200` answer means every
//! record in the batch survived the crash). Writes `BENCH_serve.json`.
//! `--quick` shrinks client and round counts for CI.
//!
//! Absolute times are not comparable with the paper's 8-node cluster; the
//! *shapes* (who wins, how ratios move with thresholds and sizes) are the
//! reproduction targets — see EXPERIMENTS.md.

use asterix_adm::IndexKind;
use asterix_algebricks::OptimizerConfig;
use asterix_bench::{avg_time, fmt_duration, print_table, WorkloadConfig, Workloads};
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::{amazon_reviews, profile_field};
use std::time::Instant;

fn options(f: impl FnOnce(&mut OptimizerConfig)) -> QueryOptions {
    let mut cfg = OptimizerConfig::default();
    f(&mut cfg);
    QueryOptions {
        optimizer: Some(cfg),
        ..QueryOptions::default()
    }
}

fn no_index() -> QueryOptions {
    options(|c| {
        c.enable_index_select = false;
        c.enable_index_join = false;
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden mode: the durability torture harness re-execs this binary as
    // a child writer that gets crashed (crash points / SIGKILL).
    if args.first().map(String::as_str) == Some("durability-child") {
        durability_child(&args[1..]);
        return;
    }
    // Hidden mode: the serve torture harness re-execs this binary as a
    // child asterix-server process that gets SIGKILLed mid-ingest.
    if args.first().map(String::as_str) == Some("serve-child") {
        serve_child(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    let which: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let run = |name: &str| which.contains(&"all") || which.contains(&name);

    let cfg = WorkloadConfig::default();
    println!(
        "experiment configuration: partitions={} amazon={} reddit={} twitter={}",
        cfg.partitions, cfg.amazon_records, cfg.reddit_records, cfg.twitter_records
    );

    if run("config") {
        table2(&cfg);
    }
    if run("datasets") {
        tables_3_and_4(&cfg);
    }
    if run("table5") {
        table5(&cfg);
    }
    if run("table6") || run("fig22a") || run("fig22b") || run("fig24a") || run("fig24b") {
        let w = Workloads::amazon_only(cfg.clone());
        w.build_indexes();
        w.db
            .create_index("AmazonReview", "summary_bt", "summary", IndexKind::BTree)
            .unwrap();
        w.db
            .create_index("AmazonReview", "name_bt", "reviewerName", IndexKind::BTree)
            .unwrap();
        if run("table6") {
            table6(&w);
        }
        if run("fig22a") {
            fig22a(&w);
        }
        if run("fig22b") {
            fig22b(&w);
        }
        if run("fig24a") {
            fig24a(&w);
        }
        if run("fig24b") {
            fig24b(&w);
        }
    }
    if run("fig15") {
        fig15(&cfg);
    }
    if run("fig25a") {
        fig25a(&cfg);
    }
    if run("fig25b") {
        fig25b(&cfg);
    }
    if run("fig27a") {
        fig27a(&cfg);
    }
    if run("fig27bc") {
        fig27bc(&cfg);
    }
    if run("ablations") {
        ablation_pk_sort(&cfg);
        ablation_reuse(&cfg);
        ablation_surrogate(&cfg);
        ablation_token_order(&cfg);
    }
    if run("profile") {
        profile_report(&cfg);
    }
    if run("hotpath") {
        hotpath_report(&cfg, quick);
    }
    if run("monitor") {
        monitor_report(&cfg, quick);
    }
    if run("observe") {
        observe_report(&cfg, quick);
    }
    if run("concurrency") {
        concurrency_report(&cfg, quick);
    }
    if run("durability") {
        durability_report(&cfg, quick);
    }
    if run("serve") {
        serve_report(&cfg, quick);
    }
}

/// Per-query profiles (§6's instrumentation story): run representative
/// indexed similarity queries with `profile: true`, print the headline
/// numbers, and dump every full `QueryProfile` to `BENCH_profile.json`.
fn profile_report(cfg: &WorkloadConfig) {
    use asterix_adm::Value;
    let w = Workloads::amazon_only(cfg.clone());
    w.build_indexes();
    // Flush so the profiled queries read disk components through the
    // buffer cache; otherwise the cache/LSM sections stay empty.
    w.db.flush("AmazonReview").unwrap();

    let profiled = QueryOptions {
        profile: true,
        disable_hotpath: false,
        ..QueryOptions::default()
    };
    let jac_probe = w
        .search_values("AmazonReview", "summary", 1, 3, 3, 66)
        .pop()
        .unwrap_or_else(|| "great product value".into());
    let ed_probe = w
        .search_values("AmazonReview", "reviewerName", 1, 1, 3, 67)
        .pop()
        .unwrap_or_else(|| "maria".into());
    let specs: Vec<(&str, String)> = vec![
        ("jac-sel-0.5-index", jaccard_sel_query(&jac_probe, 0.5)),
        ("jac-sel-0.8-index", jaccard_sel_query(&jac_probe, 0.8)),
        ("ed-sel-1-index", ed_sel_query(&ed_probe, 1)),
        ("jac-join-0.8-index", jaccard_join_query(50, 0.8)),
    ];
    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for (name, q) in &specs {
        let r = w.db.query_with(q, &profiled).unwrap();
        let p = r.profile.as_ref().expect("profile was requested");
        rows.push(vec![
            name.to_string(),
            r.count().unwrap_or(0).to_string(),
            format!(
                "{} / {}",
                p.index_search.toccurrence_candidates, p.index_search.post_verification_survivors
            ),
            format!("{:.1}%", p.cache.hit_ratio() * 100.0),
            fmt_duration(p.execution_time),
        ]);
        entries.push(Value::record(vec![
            ("name".to_string(), Value::from(*name)),
            ("query".to_string(), Value::from(q.as_str())),
            ("result_count".to_string(), Value::Int64(r.count().unwrap_or(0))),
            ("profile".to_string(), p.to_json()),
        ]));
    }
    let doc = Value::record(vec![
        ("partitions".to_string(), Value::Int64(cfg.partitions as i64)),
        (
            "amazon_records".to_string(),
            Value::Int64(cfg.amazon_records as i64),
        ),
        ("queries".to_string(), Value::OrderedList(entries)),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_profile.json", &json).unwrap();
    print_table(
        "Per-query profiles (full detail in BENCH_profile.json)",
        &[
            "Query",
            "Results",
            "Candidates / verified",
            "Cache hit ratio",
            "Execution",
        ],
        &rows,
    );
    println!("wrote BENCH_profile.json ({} bytes)", json.len());
}

/// Wall time attributable to the index-plan operators the hot path
/// optimizes: secondary index search plus primary-index lookup.
fn index_ops_us(p: &asterix_core::QueryProfile) -> u64 {
    p.operators
        .iter()
        .filter(|o| o.name == "secondary-index-search" || o.name == "primary-index-lookup")
        .map(|o| o.max_partition_time().as_micros() as u64)
        .sum()
}

/// Hot-path counters and times of one (query, variant) measurement.
struct HotpathVariant {
    execution_time_us: u64,
    index_ops_time_us: u64,
    inverted_elements_read: u64,
    postings_cache_hits: u64,
    postings_cache_misses: u64,
    buffer_cache_hits: u64,
    buffer_cache_misses: u64,
    primary_lookups: u64,
    toccurrence_candidates: u64,
    lsm_components_searched: u64,
    batch_frames: u64,
    bitparallel_ed_calls: u64,
    gallop_probes: u64,
    scancount_fallbacks: u64,
}

impl HotpathVariant {
    fn to_json(&self) -> asterix_adm::Value {
        use asterix_adm::Value;
        let int = |n: u64| Value::Int64(n as i64);
        Value::record(vec![
            ("execution_time_us".into(), int(self.execution_time_us)),
            ("index_ops_time_us".into(), int(self.index_ops_time_us)),
            (
                "inverted_elements_read".into(),
                int(self.inverted_elements_read),
            ),
            ("postings_cache_hits".into(), int(self.postings_cache_hits)),
            (
                "postings_cache_misses".into(),
                int(self.postings_cache_misses),
            ),
            (
                "postings_cache_hit_ratio".into(),
                Value::double(
                    if self.postings_cache_hits + self.postings_cache_misses == 0 {
                        0.0
                    } else {
                        self.postings_cache_hits as f64
                            / (self.postings_cache_hits + self.postings_cache_misses) as f64
                    },
                ),
            ),
            ("buffer_cache_hits".into(), int(self.buffer_cache_hits)),
            ("buffer_cache_misses".into(), int(self.buffer_cache_misses)),
            (
                "buffer_cache_accesses".into(),
                int(self.buffer_cache_hits + self.buffer_cache_misses),
            ),
            ("primary_lookups".into(), int(self.primary_lookups)),
            (
                "toccurrence_candidates".into(),
                int(self.toccurrence_candidates),
            ),
            (
                "lsm_components_searched".into(),
                int(self.lsm_components_searched),
            ),
            ("batch_frames".into(), int(self.batch_frames)),
            (
                "bitparallel_ed_calls".into(),
                int(self.bitparallel_ed_calls),
            ),
            ("gallop_probes".into(), int(self.gallop_probes)),
            (
                "scancount_fallbacks".into(),
                int(self.scancount_fallbacks),
            ),
        ])
    }
}

/// The hot-path before/after benchmark (`hotpath`): every executor
/// optimization (postings cache, batched sorted primary lookups, token
/// memoization, compile-time pre-tokenization, batch-at-a-time execution,
/// bit-parallel/galloping similarity kernels) against a baseline with all
/// of them off, on the same data, plus two middle variants — "row" (hot
/// path on, batching + kernels off) isolating the batching win, and
/// "batched" (kernels off) isolating the kernel win. Results are pinned
/// identical across all four; the numbers go to `BENCH_hotpath.json`.
fn hotpath_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use asterix_bench::workloads::DatasetInfo;

    let records = if quick {
        cfg.amazon_records.min(1_500)
    } else {
        cfg.amazon_records
    };
    let iters: u64 = if quick { 2 } else { 5 };
    let outer = if quick { 50 } else { 200 };

    // Two identically-loaded instances: the baseline one has the postings
    // cache disabled at the storage layer (capacity 0).
    let build = |postings_cache_entries: Option<usize>| -> Workloads {
        let mut ic = InstanceConfig::with_partitions(cfg.partitions);
        if let Some(n) = postings_cache_entries {
            ic.storage.postings_cache_entries = n;
        }
        let db = Instance::new(ic);
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(records, cfg.seed))
            .unwrap();
        let w = Workloads {
            db,
            datasets: vec![DatasetInfo {
                name: "AmazonReview",
                ed_field: "reviewerName",
                jac_field: "summary",
                records,
            }],
            config: cfg.clone(),
        };
        w.build_indexes();
        // Flush so both variants read disk components (the interesting
        // case for the postings cache and the batched lookups).
        w.db.flush("AmazonReview").unwrap();
        w
    };
    let base_w = build(Some(0));
    let opt_w = build(None);

    // Baseline: per-tuple operators, no compile-time tokenization, scalar
    // kernels (plus the disabled postings cache above).
    let mut base_opts = options(|c| c.pre_tokenize = false);
    base_opts.profile = true;
    base_opts.disable_hotpath = true;
    base_opts.disable_batching = true;
    base_opts.disable_kernels = true;
    // Row variant: hot-path optimizations on, but operators exchange row
    // frames, verify per tuple, and use the scalar kernels — isolates the
    // batching win against the next variant.
    let row_opts = QueryOptions {
        profile: true,
        disable_batching: true,
        disable_kernels: true,
        ..QueryOptions::default()
    };
    // Batched variant: batch-at-a-time execution with the scalar kernels
    // pinned — isolates the kernel win against the full variant.
    let batched_opts = QueryOptions {
        profile: true,
        disable_kernels: true,
        ..QueryOptions::default()
    };
    // Kernels variant: everything on (bit-parallel edit distance,
    // galloping T-occurrence intersection).
    let opt_opts = QueryOptions {
        profile: true,
        ..QueryOptions::default()
    };

    let jac_probe = opt_w
        .search_values("AmazonReview", "summary", 1, 3, 3, 66)
        .pop()
        .unwrap_or_else(|| "great product value".into());
    let ed_probe = opt_w
        .search_values("AmazonReview", "reviewerName", 1, 1, 3, 67)
        .pop()
        .unwrap_or_else(|| "maria".into());
    // Row-returning (not count) queries so result equality is pinned at
    // row granularity.
    let specs: Vec<(&str, String)> = vec![
        (
            "jac-sel-0.5-index",
            format!(
                r#"for $o in dataset AmazonReview
                   where similarity-jaccard(word-tokens($o.summary),
                                            word-tokens('{jac_probe}')) >= 0.5
                   return {{"oid": $o.id}}"#
            ),
        ),
        (
            "ed-sel-1-index",
            format!(
                r#"for $o in dataset AmazonReview
                   where edit-distance($o.reviewerName, '{ed_probe}') <= 1
                   return {{"oid": $o.id}}"#
            ),
        ),
        (
            "jac-join-0.8-index",
            format!(
                r#"for $o in dataset AmazonReview
                   for $i in dataset AmazonReview
                   where $o.id < {outer}
                     and similarity-jaccard(word-tokens($o.summary),
                                            word-tokens($i.summary)) >= 0.8
                     and $o.id < $i.id
                   return {{"oid": $o.id, "iid": $i.id}}"#
            ),
        ),
    ];

    // One measurement: a warm-up run, then the best (minimum) of `iters`
    // timed runs. The warm-up populates the buffer and postings caches,
    // so the measured runs are steady state for both variants; taking the
    // minimum rather than the mean makes the report robust against
    // scheduling noise from the host (one descheduled worker thread can
    // double a single run's wall time).
    let measure = |w: &Workloads, opts: &QueryOptions, q: &str| -> (Vec<Value>, HotpathVariant) {
        let warm = w.db.query_with(q, opts).unwrap();
        let mut rows = warm.rows;
        rows.sort();
        let mut exec_us = u64::MAX;
        let mut ops_us = u64::MAX;
        let mut last = None;
        for _ in 0..iters {
            let r = w.db.query_with(q, opts).unwrap();
            exec_us = exec_us.min(r.execution_time.as_micros() as u64);
            ops_us = ops_us.min(index_ops_us(r.profile.as_ref().expect("profile requested")));
            last = Some(r);
        }
        let last = last.expect("at least one iteration");
        let p = last.profile.as_ref().expect("profile requested");
        (
            rows,
            HotpathVariant {
                execution_time_us: exec_us,
                index_ops_time_us: ops_us,
                inverted_elements_read: p.index_search.inverted_elements_read,
                postings_cache_hits: p.index_search.postings_cache_hits,
                postings_cache_misses: p.index_search.postings_cache_misses,
                buffer_cache_hits: p.cache.hits,
                buffer_cache_misses: p.cache.misses,
                primary_lookups: p.index_search.primary_lookups,
                toccurrence_candidates: p.index_search.toccurrence_candidates,
                lsm_components_searched: p.lsm.components_searched,
                batch_frames: p.operators.iter().map(|o| o.batch_frames_emitted).sum(),
                bitparallel_ed_calls: p.kernels.bitparallel_ed_calls,
                gallop_probes: p.kernels.gallop_probes,
                scancount_fallbacks: p.kernels.scancount_fallbacks,
            },
        )
    };

    let mut entries = Vec::new();
    let mut table = Vec::new();
    for (name, q) in &specs {
        let (base_rows, base) = measure(&base_w, &base_opts, q);
        let (row_rows, row) = measure(&opt_w, &row_opts, q);
        let (batched_rows, batched) = measure(&opt_w, &batched_opts, q);
        let (opt_rows, opt) = measure(&opt_w, &opt_opts, q);
        // Property pin: neither the hot path, batching, nor the kernels
        // may change any result row.
        assert_eq!(
            base_rows, opt_rows,
            "hot path changed the results of {name}"
        );
        assert_eq!(row_rows, opt_rows, "batching changed the results of {name}");
        assert_eq!(
            batched_rows, opt_rows,
            "kernels changed the results of {name}"
        );
        let speedup = base.index_ops_time_us as f64 / opt.index_ops_time_us.max(1) as f64;
        let total_speedup =
            base.execution_time_us as f64 / opt.execution_time_us.max(1) as f64;
        let batch_speedup =
            row.execution_time_us as f64 / batched.execution_time_us.max(1) as f64;
        let kernel_speedup =
            batched.execution_time_us as f64 / opt.execution_time_us.max(1) as f64;
        table.push(vec![
            name.to_string(),
            base_rows.len().to_string(),
            format!(
                "{} -> {}",
                fmt_duration(std::time::Duration::from_micros(base.index_ops_time_us)),
                fmt_duration(std::time::Duration::from_micros(opt.index_ops_time_us)),
            ),
            format!("{speedup:.2}x"),
            format!("{total_speedup:.2}x"),
            format!("{batch_speedup:.2}x"),
            format!("{kernel_speedup:.2}x"),
            format!(
                "{} -> {}",
                base.inverted_elements_read, opt.inverted_elements_read
            ),
            format!(
                "{:.1}%",
                100.0 * opt.postings_cache_hits as f64
                    / (opt.postings_cache_hits + opt.postings_cache_misses).max(1) as f64
            ),
        ]);
        entries.push(Value::record(vec![
            ("name".to_string(), Value::from(*name)),
            ("query".to_string(), Value::from(q.as_str())),
            (
                "result_count".to_string(),
                Value::Int64(base_rows.len() as i64),
            ),
            ("results_identical".to_string(), Value::Boolean(true)),
            ("baseline".to_string(), base.to_json()),
            ("row".to_string(), row.to_json()),
            ("batched".to_string(), batched.to_json()),
            ("kernels".to_string(), opt.to_json()),
            ("index_ops_speedup".to_string(), Value::double(speedup)),
            ("total_speedup".to_string(), Value::double(total_speedup)),
            ("batch_speedup".to_string(), Value::double(batch_speedup)),
            ("kernel_speedup".to_string(), Value::double(kernel_speedup)),
        ]));
    }
    let doc = Value::record(vec![
        ("partitions".to_string(), Value::Int64(cfg.partitions as i64)),
        ("amazon_records".to_string(), Value::Int64(records as i64)),
        ("iterations".to_string(), Value::Int64(iters as i64)),
        ("quick".to_string(), Value::Boolean(quick)),
        ("queries".to_string(), Value::OrderedList(entries)),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_hotpath.json", &json).unwrap();
    print_table(
        "Hot path: baseline (no cache, per-tuple ops, scalar kernels) vs optimized",
        &[
            "Query",
            "Rows",
            "Index-ops time",
            "Speedup",
            "Total",
            "Batch",
            "Kernel",
            "Elements read",
            "Postings hit ratio",
        ],
        &table,
    );
    println!("wrote BENCH_hotpath.json ({} bytes)", json.len());
}

/// The telemetry monitor (`monitor`): a mixed workload — scans, index
/// selections, and index joins on worker threads racing a DML + flush
/// thread — sampled live through `Instance::metrics_snapshot()`, with one
/// forced slow-query capture, followed by an enabled-vs-disabled overhead
/// measurement on the same workload. Writes `BENCH_telemetry.json`.
fn monitor_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use asterix_core::{QueryClass, TelemetryConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    let records = if quick {
        cfg.amazon_records.min(1_500)
    } else {
        cfg.amazon_records
    };
    let rounds = if quick { 5 } else { 15 };
    const WORKERS: usize = 3;

    // Seed 42: the generator's Zipfian vocabulary includes the probe
    // terms below ("caho", "gubimo").
    let build = |telemetry_on: bool| -> Instance {
        let mut ic = InstanceConfig::with_partitions(cfg.partitions);
        if !telemetry_on {
            ic.telemetry = TelemetryConfig::off();
        }
        let db = Instance::new(ic);
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(records, 42)).unwrap();
        db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.create_index("AmazonReview", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        db.flush("AmazonReview").unwrap();
        db
    };

    let scan_q = "for $t in dataset AmazonReview where $t.id < 200 return $t.id";
    let sel_q = "for $t in dataset AmazonReview \
         where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.4 \
         return $t.id";
    let join_q = "for $o in dataset AmazonReview \
         for $i in dataset AmazonReview \
         where $o.id < 40 \
           and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
           and $o.id < $i.id \
         return {\"o\": $o.id, \"i\": $i.id}";

    // ---- Phase 1: the monitored mixed workload. ----
    let db = build(true);
    let done = AtomicBool::new(false);
    let samples: Mutex<Vec<Value>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        // Live sampler: a monitoring agent polling the snapshot while the
        // workload runs (bounded; keeps the JSON small).
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                let m = db.metrics();
                let mut guard = samples.lock().unwrap();
                if guard.len() < 32 {
                    guard.push(Value::record(vec![
                        ("uptime_us".to_string(), Value::Int64(m.uptime_us as i64)),
                        (
                            "queries_completed".to_string(),
                            Value::Int64(m.classes.iter().map(|c| c.completed).sum::<u64>() as i64),
                        ),
                        (
                            "events_recorded".to_string(),
                            Value::Int64(m.events_recorded as i64),
                        ),
                    ]));
                }
                drop(guard);
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        std::thread::scope(|inner| {
            for _ in 0..WORKERS {
                inner.spawn(|| {
                    for _ in 0..rounds {
                        db.query(scan_q).unwrap();
                        db.query(sel_q).unwrap();
                        db.query(join_q).unwrap();
                    }
                });
            }
            // DML churn: inserts + flushes emit lifecycle events into the
            // ring while the queries run.
            inner.spawn(|| {
                for i in 0..rounds {
                    db.insert(
                        "AmazonReview",
                        asterix_adm::record! {"id" => 5_000_000 + i as i64,
                            "summary" => "monitor churn row",
                            "reviewerName" => "monitor"},
                    )
                    .unwrap();
                    db.flush("AmazonReview").unwrap();
                }
            });
        });
        done.store(true, Ordering::Relaxed);
    });
    // One forced slow-query capture (threshold zero), as an operator
    // would see for any query over `slow_query_threshold`.
    db.query_with(
        sel_q,
        &QueryOptions {
            slow_query_threshold: Some(Duration::ZERO),
            ..QueryOptions::default()
        },
    )
    .unwrap();

    let metrics = db.metrics();
    let expected = (WORKERS * rounds) as u64;
    let mut class_rows = Vec::new();
    let mut per_class = Vec::new();
    for c in &metrics.classes {
        let want = expected + u64::from(c.class == QueryClass::IndexSelect);
        assert_eq!(
            c.completed, want,
            "{} class must account for every issued query",
            c.class.name()
        );
        assert_eq!(c.latency.count, c.completed);
        let (p50, p95, p99) = (
            c.latency.percentile_us(0.50),
            c.latency.percentile_us(0.95),
            c.latency.percentile_us(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        class_rows.push(vec![
            c.class.name().to_string(),
            c.completed.to_string(),
            fmt_duration(Duration::from_micros(p50)),
            fmt_duration(Duration::from_micros(p95)),
            fmt_duration(Duration::from_micros(p99)),
            fmt_duration(Duration::from_micros(c.latency.mean_us() as u64)),
        ]);
        per_class.push((
            c.class.name().to_string(),
            Value::record(vec![
                ("completed".to_string(), Value::Int64(c.completed as i64)),
                ("p50_us".to_string(), Value::Int64(p50 as i64)),
                ("p95_us".to_string(), Value::Int64(p95 as i64)),
                ("p99_us".to_string(), Value::Int64(p99 as i64)),
                ("mean_us".to_string(), Value::double(c.latency.mean_us())),
            ]),
        ));
    }
    let slow = db.telemetry().expect("telemetry on").slow_queries();
    assert!(
        !slow.is_empty() && !slow[0].plan.is_empty() && !slow[0].profile.operators.is_empty(),
        "the forced slow query must be captured with plan + profile"
    );
    assert!(metrics.events_recorded > 0, "flush churn must emit events");

    // ---- Phase 2: telemetry overhead, enabled vs disabled. ----
    // Fresh identically-loaded instances; best-of-3 timed loops over the
    // same mixed workload (warmed caches) to suppress scheduler noise.
    let iters = if quick { 10 } else { 40 };
    let measure = |db: &Instance| -> u64 {
        for _ in 0..3 {
            db.query(sel_q).unwrap();
            db.query(join_q).unwrap();
        }
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    db.query(scan_q).unwrap();
                    db.query(sel_q).unwrap();
                    db.query(join_q).unwrap();
                }
                t0.elapsed().as_micros() as u64
            })
            .min()
            .expect("three timed repetitions")
    };
    let off_db = build(false);
    let on_db = build(true);
    let disabled_us = measure(&off_db);
    let enabled_us = measure(&on_db);
    let overhead_pct = (enabled_us as f64 - disabled_us as f64) / disabled_us as f64 * 100.0;
    println!(
        "telemetry overhead: enabled {} vs disabled {} over {iters}x3 mixed queries -> {overhead_pct:+.2}%",
        fmt_duration(Duration::from_micros(enabled_us)),
        fmt_duration(Duration::from_micros(disabled_us)),
    );
    if !quick {
        assert!(
            overhead_pct < 5.0,
            "telemetry must stay under the 5% overhead budget, measured {overhead_pct:.2}%"
        );
    }

    let doc = Value::record(vec![
        ("partitions".to_string(), Value::Int64(cfg.partitions as i64)),
        ("amazon_records".to_string(), Value::Int64(records as i64)),
        ("workers".to_string(), Value::Int64(WORKERS as i64)),
        ("rounds".to_string(), Value::Int64(rounds as i64)),
        ("quick".to_string(), Value::Boolean(quick)),
        ("per_class".to_string(), Value::record(per_class)),
        (
            "slow_queries_captured".to_string(),
            Value::Int64(slow.len() as i64),
        ),
        (
            "samples".to_string(),
            Value::OrderedList(samples.into_inner().unwrap()),
        ),
        (
            "overhead".to_string(),
            Value::record(vec![
                ("iterations".to_string(), Value::Int64((iters * 3) as i64)),
                ("enabled_us".to_string(), Value::Int64(enabled_us as i64)),
                ("disabled_us".to_string(), Value::Int64(disabled_us as i64)),
                ("overhead_pct".to_string(), Value::double(overhead_pct)),
                ("budget_pct".to_string(), Value::double(5.0)),
            ]),
        ),
        ("final_snapshot".to_string(), metrics.to_json()),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_telemetry.json", &json).unwrap();
    print_table(
        "Telemetry monitor: per-class latency percentiles",
        &["Class", "Completed", "p50", "p95", "p99", "Mean"],
        &class_rows,
    );
    println!("wrote BENCH_telemetry.json ({} bytes)", json.len());
}

/// The live-introspection harness (`observe`): see the module docs.
/// Everything goes over real TCP against the admin endpoint — no
/// in-process shortcuts — so the numbers include HTTP parse/serialize
/// cost exactly as an operator's scraper would pay it.
fn observe_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use asterix_core::{AdminServer, CoreError};
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Minimal HTTP/1.1 client for the admin endpoint.
    fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect admin endpoint");
        let req = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("admin response status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// Assert one scraped `/queries` body is well-formed and internally
    /// consistent; returns the number of in-flight entries.
    fn check_queries_body(body: &str) -> usize {
        let v = asterix_adm::json::parse(body).expect("/queries must be valid JSON");
        let queries = v.field("queries").as_list().expect("queries list");
        assert_eq!(
            v.field("count").as_i64(),
            Some(queries.len() as i64),
            "count must match the entry list"
        );
        let mut last_id = 0i64;
        for q in queries {
            let id = q.field("query_id").as_i64().expect("query_id");
            assert!(id >= 1, "query ids start at 1");
            assert!(id > last_id, "snapshot must be sorted by query_id");
            last_id = id;
            let state = q.field("state").as_str().expect("state");
            assert!(
                ["queued", "running", "cancelling"].contains(&state),
                "unexpected state {state}"
            );
            assert!(q.field("class").as_str().is_some());
            assert!(q.field("elapsed_us").as_i64().unwrap_or(-1) >= 0);
            let ops = q.field("operators").as_list().expect("operators");
            let op_total: i64 = ops
                .iter()
                .map(|o| {
                    let started = o.field("partitions_started").as_i64().unwrap();
                    let finished = o.field("partitions_finished").as_i64().unwrap();
                    assert!(finished <= started, "finished tasks cannot exceed started");
                    o.field("tuples_out").as_i64().unwrap()
                })
                .sum();
            assert_eq!(
                q.field("tuples_out").as_i64(),
                Some(op_total),
                "per-query total must equal the sum over operators"
            );
        }
        queries.len()
    }

    let records = if quick {
        cfg.amazon_records.min(1_500)
    } else {
        cfg.amazon_records
    };
    let rounds = if quick { 5 } else { 15 };
    const WORKERS: usize = 3;

    // Seed 42: the generator's Zipfian vocabulary includes the probe
    // terms below.
    let build = || -> Instance {
        let db = Instance::new(InstanceConfig::with_partitions(cfg.partitions));
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(records, 42)).unwrap();
        db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.flush("AmazonReview").unwrap();
        db
    };
    let scan_q = "for $t in dataset AmazonReview where $t.id < 200 return $t.id";
    let sel_q = "for $t in dataset AmazonReview \
         where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.4 \
         return $t.id";
    let join_q = "for $o in dataset AmazonReview \
         for $i in dataset AmazonReview \
         where $o.id < 40 \
           and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
           and $o.id < $i.id \
         return {\"o\": $o.id, \"i\": $i.id}";

    // ---- Phase 1: scrape the registry while the workload runs. ----
    let db = Arc::new(build());
    let admin = AdminServer::start(Arc::clone(&db), "127.0.0.1:0").expect("bind admin endpoint");
    let addr = admin.local_addr();
    println!("observe: admin endpoint on {}", admin.url());

    let done = AtomicBool::new(false);
    let scrape = Mutex::new((0u64, 0u64, 0usize)); // polls, entries_seen, max_concurrent
    std::thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                let (status, body) = http(addr, "GET", "/queries");
                assert_eq!(status, 200);
                let inflight = check_queries_body(&body);
                let mut g = scrape.lock().unwrap();
                g.0 += 1;
                g.1 += inflight as u64;
                g.2 = g.2.max(inflight);
                drop(g);
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        std::thread::scope(|inner| {
            for _ in 0..WORKERS {
                inner.spawn(|| {
                    for _ in 0..rounds {
                        db.query(scan_q).unwrap();
                        db.query(sel_q).unwrap();
                        db.query(join_q).unwrap();
                    }
                });
            }
        });
        done.store(true, Ordering::Relaxed);
    });
    let (polls, entries_seen, max_concurrent) = *scrape.lock().unwrap();
    assert!(polls > 0, "the scraper must have run");
    // The registry drains once the workload stops.
    let (status, body) = http(addr, "GET", "/queries");
    assert_eq!(status, 200);
    assert_eq!(
        check_queries_body(&body),
        0,
        "registry must be empty after the workload"
    );
    println!(
        "observe: {polls} scrapes saw {entries_seen} in-flight entries (max {max_concurrent} concurrent)"
    );

    // ---- Phase 2: watch one long query live, then cancel it over HTTP. ----
    let runner = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            // Forced nested-loop self-join: long enough to observe at any
            // scale; cancelled as soon as progress is visible.
            db.query_with(
                "for $a in dataset AmazonReview \
                 for $b in dataset AmazonReview \
                 where similarity-jaccard(word-tokens($a.summary), word-tokens($b.summary)) >= 0.95 \
                 return $a.id",
                &no_index(),
            )
        })
    };
    let mut observed = None;
    let mut polls_until_visible = 0u64;
    for _ in 0..10_000 {
        polls_until_visible += 1;
        let (status, body) = http(addr, "GET", "/queries");
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        let queries = v.field("queries").as_list().unwrap();
        if let Some(q) = queries
            .iter()
            .find(|q| q.field("state").as_str() == Some("running"))
        {
            let tuples = q.field("tuples_out").as_i64().unwrap_or(0);
            if tuples > 0 {
                observed = Some((q.field("query_id").as_i64().unwrap(), tuples));
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let (observed_id, observed_tuples) =
        observed.expect("the long query must appear in /queries with live progress");
    let t0 = Instant::now();
    let (status, body) = http(addr, "POST", &format!("/queries/{observed_id}/cancel"));
    let cancel_roundtrip_us = t0.elapsed().as_micros() as u64;
    assert_eq!(status, 200);
    let v = asterix_adm::json::parse(&body).unwrap();
    assert_eq!(v.field("cancelled").as_bool(), Some(true));
    match runner.join().expect("runner thread") {
        Err(CoreError::Cancelled) => {}
        other => panic!("expected cancelled outcome, got {other:?}"),
    }
    println!(
        "observe: query {observed_id} showed {observed_tuples} live tuples after {polls_until_visible} polls; cancel round-trip {cancel_roundtrip_us} us"
    );

    // ---- Phase 3: the other endpoints answer and agree. ----
    let (status, body) = http(addr, "GET", "/health");
    assert_eq!(status, 200);
    let health = asterix_adm::json::parse(&body).unwrap();
    assert_eq!(health.field("status").as_str(), Some("ok"));
    let (status, prom) = http(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    let metric_families = prom.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert!(metric_families > 10, "prometheus exposition looks empty");
    let (status, body) = http(addr, "GET", "/lsm");
    assert_eq!(status, 200);
    let lsm = asterix_adm::json::parse(&body).unwrap();
    let lsm_datasets = lsm.field("datasets").as_list().unwrap().len();
    assert_eq!(lsm_datasets, 1);
    let (status, body) = http(addr, "GET", "/slow");
    assert_eq!(status, 200);
    let slow = asterix_adm::json::parse(&body).unwrap();
    let slow_entries = slow.field("entries").as_list().unwrap().len();
    drop(admin);

    // ---- Phase 4: polling overhead vs an unpolled baseline. ----
    // Identical instances and workload; the measured side is scraped
    // continuously (/queries every 2 ms, /metrics every 20 ms) while the
    // timed loop runs. Best-of-3 to suppress scheduler noise.
    let iters = if quick { 10 } else { 40 };
    let measure = |db: &Instance| -> u64 {
        for _ in 0..3 {
            db.query(sel_q).unwrap();
            db.query(join_q).unwrap();
        }
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    db.query(scan_q).unwrap();
                    db.query(sel_q).unwrap();
                    db.query(join_q).unwrap();
                }
                t0.elapsed().as_micros() as u64
            })
            .min()
            .expect("three timed repetitions")
    };
    let baseline_db = build();
    let baseline_us = measure(&baseline_db);
    drop(baseline_db);

    let polled_db = Arc::new(build());
    let polled_admin =
        AdminServer::start(Arc::clone(&polled_db), "127.0.0.1:0").expect("bind admin endpoint");
    let polled_addr = polled_admin.local_addr();
    let stop = AtomicBool::new(false);
    let polled_us = std::thread::scope(|s| {
        s.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = if i.is_multiple_of(10) { "/metrics" } else { "/queries" };
                let (status, _) = http(polled_addr, "GET", path);
                assert_eq!(status, 200);
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let us = measure(&polled_db);
        stop.store(true, Ordering::Relaxed);
        us
    });
    drop(polled_admin);
    let overhead_pct = (polled_us as f64 - baseline_us as f64) / baseline_us as f64 * 100.0;
    println!(
        "observe: polled {} vs baseline {} over {iters}x3 mixed queries -> {overhead_pct:+.2}% overhead",
        fmt_duration(Duration::from_micros(polled_us)),
        fmt_duration(Duration::from_micros(baseline_us)),
    );
    if !quick {
        assert!(
            overhead_pct < 5.0,
            "live introspection must stay under the 5% overhead budget, measured {overhead_pct:.2}%"
        );
    }

    let doc = Value::record(vec![
        ("partitions".to_string(), Value::Int64(cfg.partitions as i64)),
        ("amazon_records".to_string(), Value::Int64(records as i64)),
        ("workers".to_string(), Value::Int64(WORKERS as i64)),
        ("rounds".to_string(), Value::Int64(rounds as i64)),
        ("quick".to_string(), Value::Boolean(quick)),
        (
            "registry".to_string(),
            Value::record(vec![
                ("polls".to_string(), Value::Int64(polls as i64)),
                ("entries_seen".to_string(), Value::Int64(entries_seen as i64)),
                (
                    "max_concurrent_seen".to_string(),
                    Value::Int64(max_concurrent as i64),
                ),
                ("drained".to_string(), Value::Boolean(true)),
            ]),
        ),
        (
            "observed_cancel".to_string(),
            Value::record(vec![
                ("query_id".to_string(), Value::Int64(observed_id)),
                (
                    "live_tuples_seen".to_string(),
                    Value::Int64(observed_tuples),
                ),
                (
                    "polls_until_visible".to_string(),
                    Value::Int64(polls_until_visible as i64),
                ),
                (
                    "cancel_roundtrip_us".to_string(),
                    Value::Int64(cancel_roundtrip_us as i64),
                ),
                ("outcome".to_string(), Value::from("cancelled")),
            ]),
        ),
        (
            "endpoints".to_string(),
            Value::record(vec![
                ("health".to_string(), Value::from("ok")),
                (
                    "metric_families".to_string(),
                    Value::Int64(metric_families as i64),
                ),
                ("lsm_datasets".to_string(), Value::Int64(lsm_datasets as i64)),
                ("slow_entries".to_string(), Value::Int64(slow_entries as i64)),
            ]),
        ),
        (
            "overhead".to_string(),
            Value::record(vec![
                ("iterations".to_string(), Value::Int64((iters * 3) as i64)),
                ("baseline_us".to_string(), Value::Int64(baseline_us as i64)),
                ("polled_us".to_string(), Value::Int64(polled_us as i64)),
                ("overhead_pct".to_string(), Value::double(overhead_pct)),
                ("budget_pct".to_string(), Value::double(5.0)),
            ]),
        ),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_observe.json", &json).unwrap();
    println!("wrote BENCH_observe.json ({} bytes)", json.len());
}

/// Current OS thread count of this process (`/proc/self/status`,
/// linux-only; 0 elsewhere).
fn current_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The `q`-quantile of a latency sample (µs), by sorted rank.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// The scheduler bench (`concurrency`): N concurrent clients of the
/// mixed workload against the pooled executor with admission control vs
/// the unbounded seed executor, recording client-observed latency
/// percentiles and the process's peak thread count at every level.
/// Writes `BENCH_concurrency.json`.
fn concurrency_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use asterix_core::SchedulerConfig;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    let records = if quick {
        cfg.amazon_records.min(1_500)
    } else {
        cfg.amazon_records
    };
    let levels: &[usize] = if quick { &[1, 8, 16] } else { &[1, 8, 32, 128] };
    let rounds = if quick { 2 } else { 3 };
    // Deep enough that the largest level queues rather than rejects; the
    // rejection paths have their own tests in tests/scheduler.rs.
    let scheduler_cfg = SchedulerConfig {
        queue_depth: levels.iter().max().unwrap() * 2,
        ..SchedulerConfig::default()
    };

    let build = |sched: SchedulerConfig| -> Instance {
        let mut ic = InstanceConfig::with_partitions(cfg.partitions);
        ic.scheduler = sched;
        let db = Instance::new(ic);
        db.create_dataset("AmazonReview", "id").unwrap();
        db.load("AmazonReview", amazon_reviews(records, 42)).unwrap();
        db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.create_index("AmazonReview", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        db.flush("AmazonReview").unwrap();
        db
    };

    let scan_q = "for $t in dataset AmazonReview where $t.id < 200 return $t.id";
    let sel_q = "for $t in dataset AmazonReview \
         where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.4 \
         return $t.id";
    let join_q = "for $o in dataset AmazonReview \
         for $i in dataset AmazonReview \
         where $o.id < 40 \
           and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
           and $o.id < $i.id \
         return {\"o\": $o.id, \"i\": $i.id}";
    let queries = [scan_q, sel_q, join_q];

    /// One saturation level against one executor: client-observed
    /// latencies, wall time, and thread-count extremes.
    struct LevelRun {
        latencies_us: Vec<u64>,
        wall_us: u64,
        base_threads: u64,
        peak_threads: u64,
    }

    let run_level = |db: &Instance, clients: usize| -> LevelRun {
        // Warm caches so the first client doesn't pay cold-read costs.
        for q in queries {
            db.query(q).unwrap();
        }
        let base_threads = current_threads();
        let done = AtomicBool::new(false);
        let peak = AtomicU64::new(base_threads);
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let started = Instant::now();
        std::thread::scope(|s| {
            s.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    peak.fetch_max(current_threads(), Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
            std::thread::scope(|inner| {
                for _ in 0..clients {
                    inner.spawn(|| {
                        let mut mine = Vec::with_capacity(rounds * queries.len());
                        for _ in 0..rounds {
                            for q in queries {
                                let t0 = Instant::now();
                                db.query(q).unwrap();
                                mine.push(t0.elapsed().as_micros() as u64);
                            }
                        }
                        latencies.lock().unwrap().extend(mine);
                    });
                }
            });
            done.store(true, Ordering::Relaxed);
        });
        let wall_us = started.elapsed().as_micros() as u64;
        let mut latencies_us = latencies.into_inner().unwrap();
        latencies_us.sort_unstable();
        LevelRun {
            latencies_us,
            wall_us,
            base_threads,
            peak_threads: peak.load(Ordering::Relaxed),
        }
    };

    let level_json = |r: &LevelRun| -> Value {
        Value::record(vec![
            ("queries".to_string(), Value::Int64(r.latencies_us.len() as i64)),
            ("wall_us".to_string(), Value::Int64(r.wall_us as i64)),
            (
                "p50_us".to_string(),
                Value::Int64(percentile(&r.latencies_us, 0.50) as i64),
            ),
            (
                "p95_us".to_string(),
                Value::Int64(percentile(&r.latencies_us, 0.95) as i64),
            ),
            (
                "p99_us".to_string(),
                Value::Int64(percentile(&r.latencies_us, 0.99) as i64),
            ),
            (
                "max_us".to_string(),
                Value::Int64(r.latencies_us.last().copied().unwrap_or(0) as i64),
            ),
            (
                "base_threads".to_string(),
                Value::Int64(r.base_threads as i64),
            ),
            (
                "peak_threads".to_string(),
                Value::Int64(r.peak_threads as i64),
            ),
        ])
    };

    // The two executors run in the same process, one phase at a time, so
    // each phase's thread sampling only sees its own instance.
    let mut rows = Vec::new();
    let mut level_docs = Vec::new();
    let mut p95_ratio_at_max = 0.0f64;
    let mut pooled_bounded = true;

    let pooled_db = build(scheduler_cfg.clone());
    let workers = scheduler_cfg.workers as u64;
    let mut pooled_runs = Vec::new();
    for &clients in levels {
        pooled_runs.push(run_level(&pooled_db, clients));
    }
    let sched_snap = pooled_db.metrics().gauges.scheduler.clone();
    assert!(sched_snap.enabled, "pooled instance must report a scheduler");
    assert_eq!(
        sched_snap.rejected_queue_full + sched_snap.rejected_timeout,
        0,
        "the bench queue depth must be deep enough to avoid rejections"
    );
    assert!(
        sched_snap.admitted >= levels.iter().map(|&n| (n * rounds * 3) as u64).sum::<u64>(),
        "every bench query must pass admission"
    );
    drop(pooled_db);

    let unbounded_db = build(SchedulerConfig::disabled());
    let mut unbounded_runs = Vec::new();
    for &clients in levels {
        unbounded_runs.push(run_level(&unbounded_db, clients));
    }
    drop(unbounded_db);

    for ((&clients, pooled), unbounded) in
        levels.iter().zip(&pooled_runs).zip(&unbounded_runs)
    {
        let (pp95, up95) = (
            percentile(&pooled.latencies_us, 0.95),
            percentile(&unbounded.latencies_us, 0.95),
        );
        // Executor threads beyond the clients themselves (each client is
        // one thread; +2 for the main + sampler threads).
        let pooled_extra = pooled
            .peak_threads
            .saturating_sub(clients as u64 + pooled.base_threads);
        if current_threads() > 0 && pooled_extra > workers + 4 {
            pooled_bounded = false;
        }
        if clients == *levels.last().unwrap() && up95 > 0 {
            p95_ratio_at_max = pp95 as f64 / up95 as f64;
        }
        rows.push(vec![
            clients.to_string(),
            fmt_duration(Duration::from_micros(pp95)),
            fmt_duration(Duration::from_micros(up95)),
            pooled.peak_threads.to_string(),
            unbounded.peak_threads.to_string(),
            fmt_duration(Duration::from_micros(pooled.wall_us)),
            fmt_duration(Duration::from_micros(unbounded.wall_us)),
        ]);
        level_docs.push(Value::record(vec![
            ("clients".to_string(), Value::Int64(clients as i64)),
            ("pooled".to_string(), level_json(pooled)),
            ("unbounded".to_string(), level_json(unbounded)),
        ]));
    }

    // Shape pins (all modes): the pool must keep executor threads bounded
    // by workers + a small constant, independent of the client count.
    if current_threads() > 0 {
        assert!(
            pooled_bounded,
            "pooled executor spawned more than workers + constant extra threads"
        );
    }
    // Perf pin (full scale only, with slack): p95 under peak saturation
    // must not regress vs the unbounded baseline.
    if !quick && p95_ratio_at_max > 0.0 {
        assert!(
            p95_ratio_at_max < 1.25,
            "pooled p95 at max concurrency is {p95_ratio_at_max:.2}x the unbounded baseline"
        );
    }

    let doc = Value::record(vec![
        ("partitions".to_string(), Value::Int64(cfg.partitions as i64)),
        ("amazon_records".to_string(), Value::Int64(records as i64)),
        ("quick".to_string(), Value::Boolean(quick)),
        (
            "rounds_per_client".to_string(),
            Value::Int64(rounds as i64),
        ),
        (
            "queries_per_round".to_string(),
            Value::Int64(queries.len() as i64),
        ),
        (
            "scheduler".to_string(),
            Value::record(vec![
                ("workers".to_string(), Value::Int64(scheduler_cfg.workers as i64)),
                (
                    "max_concurrent_queries".to_string(),
                    Value::Int64(scheduler_cfg.max_concurrent_queries as i64),
                ),
                (
                    "queue_depth".to_string(),
                    Value::Int64(scheduler_cfg.queue_depth as i64),
                ),
                (
                    "memory_budget_bytes".to_string(),
                    Value::Int64(scheduler_cfg.memory_budget_bytes as i64),
                ),
            ]),
        ),
        (
            "admission".to_string(),
            Value::record(vec![
                ("admitted".to_string(), Value::Int64(sched_snap.admitted as i64)),
                (
                    "queued_total".to_string(),
                    Value::Int64(sched_snap.queued_total as i64),
                ),
                (
                    "rejected_queue_full".to_string(),
                    Value::Int64(sched_snap.rejected_queue_full as i64),
                ),
                (
                    "rejected_timeout".to_string(),
                    Value::Int64(sched_snap.rejected_timeout as i64),
                ),
                (
                    "queue_wait_p95_us".to_string(),
                    Value::Int64(sched_snap.queue_wait.percentile_us(0.95) as i64),
                ),
                (
                    "queue_wait_count".to_string(),
                    Value::Int64(sched_snap.queue_wait.count as i64),
                ),
            ]),
        ),
        ("levels".to_string(), Value::OrderedList(level_docs)),
        (
            "p95_ratio_at_max".to_string(),
            Value::double(p95_ratio_at_max),
        ),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_concurrency.json", &json).unwrap();
    print_table(
        "Concurrency: pooled + admission vs unbounded seed executor",
        &[
            "Clients",
            "p95 pooled",
            "p95 unbounded",
            "Peak thr pooled",
            "Peak thr unbounded",
            "Wall pooled",
            "Wall unbounded",
        ],
        &rows,
    );
    println!(
        "p95 ratio at max concurrency (pooled/unbounded): {p95_ratio_at_max:.2}"
    );
    println!("wrote BENCH_concurrency.json ({} bytes)", json.len());
}

/// Table 2: configuration parameters.
fn table2(cfg: &WorkloadConfig) {
    let inst = InstanceConfig::with_partitions(cfg.partitions);
    let rows: Vec<Vec<String>> = inst
        .table2()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print_table("Table 2: instance parameters", &["Parameter", "Value"], &rows);
}

/// Tables 3 + 4: dataset properties and field characteristics.
fn tables_3_and_4(cfg: &WorkloadConfig) {
    let w = Workloads::load(cfg.clone());
    let mut t3 = Vec::new();
    let mut t4 = Vec::new();
    for ds in &w.datasets {
        t3.push(vec![
            ds.name.to_string(),
            ds.records.to_string(),
            format!("ed: {}, jaccard: {}", ds.ed_field, ds.jac_field),
        ]);
        for field in [ds.ed_field, ds.jac_field] {
            let r = w
                .db
                .query(&format!("for $t in dataset {} return $t.{}", ds.name, field))
                .unwrap();
            let texts: Vec<&str> = r.rows.iter().filter_map(|v| v.as_str()).collect();
            let p = profile_field(texts.iter().copied());
            t4.push(vec![
                format!("{}.{}", ds.name, field),
                format!("{:.1}", p.avg_chars),
                p.max_chars.to_string(),
                format!("{:.1}", p.avg_words),
                p.max_words.to_string(),
            ]);
        }
    }
    print_table(
        "Table 3: dataset properties (synthetic substitutes)",
        &["Dataset", "Records", "Fields used"],
        &t3,
    );
    print_table(
        "Table 4: field characteristics",
        &["Field", "Avg chars", "Max chars", "Avg words", "Max words"],
        &t4,
    );
}

/// Table 5: index sizes and build times (Amazon reviews).
fn table5(cfg: &WorkloadConfig) {
    let w = Workloads::amazon_only(cfg.clone());
    let mut rows = Vec::new();
    let primary = w.db.index_sizes("AmazonReview").unwrap();
    let primary_size = primary
        .iter()
        .find(|(n, _)| n == "<primary>")
        .map(|(_, b)| *b)
        .unwrap_or(0);
    rows.push(vec![
        "dataset itself".into(),
        "B+ tree".into(),
        format!("{:.2} MB", primary_size as f64 / 1e6),
        "-".into(),
    ]);
    let specs = [
        ("reviewerName", "name_bt", IndexKind::BTree),
        ("reviewerName", "name_2gram", IndexKind::NGram(2)),
        ("summary", "summary_bt", IndexKind::BTree),
        ("summary", "summary_kw", IndexKind::Keyword),
    ];
    for (field, name, kind) in specs {
        let stats = w.db.create_index("AmazonReview", name, field, kind).unwrap();
        rows.push(vec![
            format!("{field} ({name})"),
            kind.name(),
            format!("{:.2} MB", stats.size_bytes as f64 / 1e6),
            fmt_duration(stats.build_time),
        ]);
    }
    print_table(
        "Table 5: index size and build time (AmazonReview)",
        &["Field", "Index type", "Size", "Build time"],
        &rows,
    );
}

fn jaccard_sel_query(value: &str, delta: f64) -> String {
    format!(
        r#"count( for $o in dataset AmazonReview
                 where similarity-jaccard(word-tokens($o.summary),
                                          word-tokens('{value}')) >= {delta}
                 return {{"oid": $o.id, "v": $o.summary}} );"#
    )
}

fn ed_sel_query(value: &str, k: u32) -> String {
    format!(
        r#"count( for $o in dataset AmazonReview
                 where edit-distance($o.reviewerName, '{value}') <= {k}
                 return {{"oid": $o.id, "v": $o.reviewerName}} );"#
    )
}

/// Table 6: candidate set vs final result size for indexed Jaccard
/// selections.
fn table6(w: &Workloads) {
    let probes = w.search_values("AmazonReview", "summary", 8, 3, 3, 61);
    let mut rows = Vec::new();
    for delta in [0.2, 0.5, 0.8] {
        let mut results = 0u64;
        let mut candidates = 0u64;
        for p in &probes {
            let r = w.db.query(&jaccard_sel_query(p, delta)).unwrap();
            results += r.count().unwrap_or(0) as u64;
            candidates += r.index_candidates();
        }
        let ratio = if candidates == 0 {
            0.0
        } else {
            results as f64 / candidates as f64 * 100.0
        };
        rows.push(vec![
            format!("{delta}"),
            results.to_string(),
            candidates.to_string(),
            format!("{ratio:.1}%"),
        ]);
    }
    print_table(
        "Table 6: candidates vs results, indexed Jaccard selection",
        &["Jaccard threshold", "Results (B)", "Candidates (C)", "Ratio (B/C)"],
        &rows,
    );
}

/// Fig 22(a): Jaccard selection times.
fn fig22a(w: &Workloads) {
    let probes = w.search_values("AmazonReview", "summary", 8, 3, 3, 62);
    let mut rows = Vec::new();
    let exact: Vec<String> = probes
        .iter()
        .map(|p| {
            format!(
                r#"count( for $o in dataset AmazonReview where $o.summary = '{p}'
                     return {{"oid": $o.id}} );"#
            )
        })
        .collect();
    let with = avg_time(&w.db, &exact, &QueryOptions::default()).unwrap();
    let without = avg_time(&w.db, &exact, &no_index()).unwrap();
    rows.push(vec![
        "exact match".into(),
        fmt_duration(without.avg),
        fmt_duration(with.avg),
    ]);
    for delta in [0.2, 0.5, 0.8] {
        let queries: Vec<String> = probes.iter().map(|p| jaccard_sel_query(p, delta)).collect();
        let with = avg_time(&w.db, &queries, &QueryOptions::default()).unwrap();
        let without = avg_time(&w.db, &queries, &no_index()).unwrap();
        rows.push(vec![
            format!("jaccard {delta}"),
            fmt_duration(without.avg),
            fmt_duration(with.avg),
        ]);
    }
    print_table(
        "Fig 22(a): selection times, Jaccard (avg over probes)",
        &["Threshold", "Without index", "With index"],
        &rows,
    );
}

/// Fig 22(b): edit-distance selection times.
fn fig22b(w: &Workloads) {
    let probes = w.search_values("AmazonReview", "reviewerName", 8, 1, 3, 63);
    let mut rows = Vec::new();
    let exact: Vec<String> = probes
        .iter()
        .map(|p| {
            format!(
                r#"count( for $o in dataset AmazonReview where $o.reviewerName = '{p}'
                     return {{"oid": $o.id}} );"#
            )
        })
        .collect();
    let with = avg_time(&w.db, &exact, &QueryOptions::default()).unwrap();
    let without = avg_time(&w.db, &exact, &no_index()).unwrap();
    rows.push(vec![
        "exact match".into(),
        fmt_duration(without.avg),
        fmt_duration(with.avg),
    ]);
    for k in [1u32, 2, 3] {
        let queries: Vec<String> = probes.iter().map(|p| ed_sel_query(p, k)).collect();
        let with = avg_time(&w.db, &queries, &QueryOptions::default()).unwrap();
        let without = avg_time(&w.db, &queries, &no_index()).unwrap();
        rows.push(vec![
            format!("edit distance {k}"),
            fmt_duration(without.avg),
            fmt_duration(with.avg),
        ]);
    }
    print_table(
        "Fig 22(b): selection times, edit distance (avg over probes)",
        &["Threshold", "Without index", "With index"],
        &rows,
    );
}

fn jaccard_join_query(outer_limit: usize, delta: f64) -> String {
    format!(
        r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where $o.id < {outer_limit}
                   and similarity-jaccard(word-tokens($o.summary),
                                          word-tokens($i.summary)) >= {delta}
                   and $o.id < $i.id
                 return {{"oid": $o.id}} );"#
    )
}

fn ed_join_query(outer_limit: usize, k: u32) -> String {
    format!(
        r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where $o.id < {outer_limit}
                   and edit-distance($o.reviewerName, $i.reviewerName) <= {k}
                   and $o.id < $i.id
                 return {{"oid": $o.id}} );"#
    )
}

/// Fig 24(a): Jaccard join times (outer limited to 10 records, §6.4.1).
fn fig24a(w: &Workloads) {
    let mut rows = Vec::new();
    let exact = r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where $o.id < 10 and $o.summary = $i.summary and $o.id < $i.id
                 return {"oid": $o.id} );"#
        .to_string();
    let t = avg_time(&w.db, &[exact], &QueryOptions::default()).unwrap();
    rows.push(vec!["exact match".into(), fmt_duration(t.avg), "-".into()]);
    for delta in [0.2, 0.5, 0.8] {
        let q = jaccard_join_query(10, delta);
        let with = avg_time(&w.db, std::slice::from_ref(&q), &QueryOptions::default()).unwrap();
        let without = avg_time(
            &w.db,
            std::slice::from_ref(&q),
            &options(|c| c.enable_index_join = false),
        )
        .unwrap();
        rows.push(vec![
            format!("jaccard {delta}"),
            fmt_duration(without.avg),
            fmt_duration(with.avg),
        ]);
    }
    print_table(
        "Fig 24(a): join times, Jaccard (outer = 10 records)",
        &["Threshold", "Without index (3-stage)", "With index"],
        &rows,
    );
}

/// Fig 24(b): edit-distance join times.
fn fig24b(w: &Workloads) {
    let mut rows = Vec::new();
    for k in [1u32, 2, 3] {
        let q = ed_join_query(10, k);
        let with = avg_time(&w.db, std::slice::from_ref(&q), &QueryOptions::default()).unwrap();
        let without = avg_time(
            &w.db,
            std::slice::from_ref(&q),
            &options(|c| c.enable_index_join = false),
        )
        .unwrap();
        rows.push(vec![
            format!("edit distance {k}"),
            fmt_duration(without.avg),
            fmt_duration(with.avg),
        ]);
    }
    print_table(
        "Fig 24(b): join times, edit distance (outer = 10 records)",
        &["Threshold", "Without index (NL)", "With index"],
        &rows,
    );
}

/// Fig 15: operator counts, nested-loop vs three-stage plan.
fn fig15(cfg: &WorkloadConfig) {
    let db = Instance::new(InstanceConfig::with_partitions(cfg.partitions));
    db.create_dataset("AmazonReview", "id").unwrap();
    db.load("AmazonReview", amazon_reviews(100, cfg.seed)).unwrap();
    let q = r#"
        for $o in dataset AmazonReview
        for $i in dataset AmazonReview
        where similarity-jaccard(word-tokens($o.summary),
                                 word-tokens($i.summary)) >= 0.5
        return {"oid": $o.id, "iid": $i.id}
    "#;
    let nl = db
        .explain_with_options(
            q,
            &options(|c| {
                c.enable_three_stage = false;
                c.enable_index_join = false;
            }),
        )
        .unwrap();
    let ts = db.explain(q).unwrap();
    let collect = |ops: &[(&'static str, usize)]| -> String {
        ops.iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let rows = vec![
        vec![
            "nested-loop plan".into(),
            nl.total_logical_ops_after().to_string(),
            collect(&nl.logical_ops_after),
        ],
        vec![
            "three-stage plan".into(),
            ts.total_logical_ops_after().to_string(),
            collect(&ts.logical_ops_after),
        ],
        vec![
            "paper (Fig 15)".into(),
            "6 vs 77".into(),
            "NL: join:1 select:1 assign:3 ... / 3-stage: join:15 assign:12 select:8 ...".into(),
        ],
    ];
    print_table(
        "Fig 15: logical operator counts for the same query",
        &["Plan", "Total ops", "Breakdown"],
        &rows,
    );
}

/// Fig 25(a): join time vs outer-branch cardinality (crossover).
fn fig25a(cfg: &WorkloadConfig) {
    let w = Workloads::amazon_only(cfg.clone());
    w.build_indexes();
    let mut rows = Vec::new();
    for outer in [200usize, 400, 600, 800, 1000, 1200, 1400] {
        let q = jaccard_join_query(outer, 0.8);
        let index = avg_time(&w.db, std::slice::from_ref(&q), &QueryOptions::default()).unwrap();
        let three = avg_time(
            &w.db,
            std::slice::from_ref(&q),
            &options(|c| c.enable_index_join = false),
        )
        .unwrap();
        // The quadratic nested-loop join is only run for small outers.
        let nl = if outer <= 400 {
            let t = avg_time(
                &w.db,
                std::slice::from_ref(&q),
                &options(|c| {
                    c.enable_index_join = false;
                    c.enable_three_stage = false;
                }),
            )
            .unwrap();
            fmt_duration(t.avg)
        } else {
            "(skipped)".into()
        };
        rows.push(vec![
            outer.to_string(),
            nl,
            fmt_duration(three.avg),
            fmt_duration(index.avg),
        ]);
    }
    print_table(
        "Fig 25(a): Jaccard-0.8 self-join time vs outer cardinality",
        &["Outer records", "Nested-loop", "Three-stage", "Index-NL"],
        &rows,
    );
}

/// Fig 25(b): multi-way queries with two similarity conditions, varying
/// the condition order, on all three datasets.
fn fig25b(cfg: &WorkloadConfig) {
    let w = Workloads::load(cfg.clone());
    w.build_indexes();
    let mut rows = Vec::new();
    for ds in &w.datasets {
        let jac = format!(
            "similarity-jaccard(word-tokens($o.{jf}), word-tokens($i.{jf})) >= 0.8",
            jf = ds.jac_field
        );
        let ed = format!("edit-distance($o.{ef}, $i.{ef}) <= 1", ef = ds.ed_field);
        let query = |first: &str, second: &str| {
            format!(
                r#"count( for $o in dataset {name}
                     for $i in dataset {name}
                     where $o.id < 10 and {first} and {second} and $o.id < $i.id
                     return {{"oid": $o.id, "iid": $i.id}} );"#,
                name = ds.name
            )
        };
        let jac_first = avg_time(&w.db, &[query(&jac, &ed)], &QueryOptions::default()).unwrap();
        let ed_first = avg_time(&w.db, &[query(&ed, &jac)], &QueryOptions::default()).unwrap();
        let both_noindex = avg_time(&w.db, &[query(&jac, &ed)], &no_index()).unwrap();
        rows.push(vec![
            ds.name.to_string(),
            fmt_duration(jac_first.avg),
            fmt_duration(ed_first.avg),
            fmt_duration(both_noindex.avg),
        ]);
    }
    print_table(
        "Fig 25(b): multi-way joins (two similarity conditions)",
        &["Dataset", "Jac-I, ED-NI", "ED-I, Jac-NI", "Jac-NI, ED-NI"],
        &rows,
    );
}

fn scaled_amazon_instance(partitions: usize, records: usize, seed: u64) -> Workloads {
    let cfg = WorkloadConfig {
        partitions,
        amazon_records: records,
        reddit_records: 0,
        twitter_records: 0,
        seed,
    };
    let w = Workloads::amazon_only(cfg);
    w.build_indexes();
    w
}

fn fig27_queries(w: &Workloads) -> [(&'static str, String, QueryOptions); 4] {
    let probe = w
        .search_values("AmazonReview", "summary", 1, 3, 3, 64)
        .pop()
        .unwrap_or_else(|| "great product value".into());
    [
        (
            "Jac-Sel-0.8-Index",
            jaccard_sel_query(&probe, 0.8),
            QueryOptions::default(),
        ),
        (
            "Jac-Sel-0.8-NoIndex",
            jaccard_sel_query(&probe, 0.8),
            no_index(),
        ),
        (
            "Jac-Join-0.8-Index",
            jaccard_join_query(200, 0.8),
            QueryOptions::default(),
        ),
        (
            "Jac-Join-0.8-NoIndex",
            jaccard_join_query(200, 0.8),
            options(|c| c.enable_index_join = false),
        ),
    ]
}

/// Fig 27(a): scale-out — data grows with the partition count. The
/// per-partition critical-path work (max tuples through the busiest
/// partition, summed over operators) is the hardware-independent metric:
/// on a single-core host the wall times of the simulated partitions
/// serialize, but the work column shows what an 8-node cluster would see.
fn fig27a(cfg: &WorkloadConfig) {
    let base = cfg.amazon_records;
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let records = (base * p / 8).max(100);
        let w = scaled_amazon_instance(p, records, cfg.seed);
        let mut row = vec![format!("{p} ({records} recs)")];
        for (_, q, opts) in fig27_queries(&w) {
            let r = w.db.query_with(&q, &opts).unwrap();
            row.push(format!(
                "{} / {}t",
                fmt_duration(r.execution_time),
                r.stats.critical_path_tuples()
            ));
        }
        rows.push(row);
    }
    print_table(
        "Fig 27(a): scale-out (wall / per-partition work; flat work is ideal)",
        &[
            "Partitions",
            "Jac-Sel-Index",
            "Jac-Sel-NoIndex",
            "Jac-Join-Index",
            "Jac-Join-NoIndex(3stage)",
        ],
        &rows,
    );
}

/// Fig 27(b,c): speed-up — fixed data, growing partitions. Speed-up is
/// reported on the per-partition critical-path work (see fig27a): on an
/// ideal cluster wall time tracks that work, and on a single-core host
/// only the work column is meaningful.
fn fig27bc(cfg: &WorkloadConfig) {
    let mut rows = Vec::new();
    let mut base_work: Option<Vec<u64>> = None;
    for p in [1usize, 2, 4, 8] {
        let w = scaled_amazon_instance(p, cfg.amazon_records, cfg.seed);
        let mut work = Vec::new();
        let mut wall = Vec::new();
        for (_, q, opts) in fig27_queries(&w) {
            let r = w.db.query_with(&q, &opts).unwrap();
            work.push(r.stats.critical_path_tuples().max(1));
            wall.push(r.execution_time);
        }
        let mut row = vec![p.to_string()];
        match &base_work {
            None => {
                for (t, wk) in wall.iter().zip(&work) {
                    row.push(format!("1.00x ({}, {wk}t)", fmt_duration(*t)));
                }
                base_work = Some(work);
            }
            Some(base) => {
                for ((b, wk), t) in base.iter().zip(&work).zip(&wall) {
                    row.push(format!(
                        "{:.2}x ({}, {wk}t)",
                        *b as f64 / *wk as f64,
                        fmt_duration(*t)
                    ));
                }
            }
        }
        rows.push(row);
    }
    print_table(
        "Fig 27(b,c): speed-up on per-partition work (fixed data; linear is ideal)",
        &[
            "Partitions",
            "Jac-Sel-Index",
            "Jac-Sel-NoIndex",
            "Jac-Join-Index",
            "Jac-Join-NoIndex(3stage)",
        ],
        &rows,
    );
}

/// Ablation: sorting primary keys before the primary-index lookup
/// (§4.1.1) — measured through buffer-cache hit ratios.
fn ablation_pk_sort(cfg: &WorkloadConfig) {
    // A dedicated instance with a *small* buffer cache (and a small page
    // size so the primary index spans many pages): without cache
    // pressure, every lookup hits and the sort cannot matter.
    let mut inst_cfg = InstanceConfig::with_partitions(cfg.partitions);
    inst_cfg.storage.page_size = 4 * 1024;
    inst_cfg.storage.buffer_cache_pages = 8;
    let db = Instance::new(inst_cfg);
    db.create_dataset("AmazonReview", "id").unwrap();
    db.load("AmazonReview", amazon_reviews(cfg.amazon_records, cfg.seed))
        .unwrap();
    db.create_index("AmazonReview", "summary_kw", "summary", IndexKind::Keyword)
        .unwrap();
    db.flush("AmazonReview").unwrap();
    let w = Workloads {
        db,
        datasets: vec![],
        config: cfg.clone(),
    };
    let probes = w.search_values("AmazonReview", "summary", 6, 3, 3, 65);
    let queries: Vec<String> = probes.iter().map(|p| jaccard_sel_query(p, 0.2)).collect();
    let mut rows = Vec::new();
    for sort in [true, false] {
        w.db.reset_cache_stats();
        let t = avg_time(&w.db, &queries, &options(|c| c.sort_pks = sort)).unwrap();
        let stats = w.db.cache_stats();
        rows.push(vec![
            if sort { "sorted pks" } else { "unsorted pks" }.into(),
            fmt_duration(t.avg),
            format!("{:.1}%", stats.hit_ratio() * 100.0),
        ]);
    }
    print_table(
        "Ablation: pk sorting before primary lookup (§4.1.1)",
        &["Variant", "Avg time", "Cache hit ratio"],
        &rows,
    );
}

/// Ablation: materialize/reuse of shared subplans (Fig 20).
fn ablation_reuse(cfg: &WorkloadConfig) {
    let w = Workloads::amazon_only(cfg.clone());
    let q = jaccard_join_query(2_000, 0.8);
    let mut rows = Vec::new();
    for reuse in [true, false] {
        let r = w
            .db
            .query_with(
                &q,
                &options(|c| {
                    c.enable_index_join = false;
                    c.enable_subplan_reuse = reuse;
                }),
            )
            .unwrap();
        let scans = r
            .plan
            .physical_ops
            .iter()
            .find(|(n, _)| *n == "dataset-scan")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        rows.push(vec![
            if reuse {
                "reuse shared subplans"
            } else {
                "recompute"
            }
            .into(),
            fmt_duration(r.execution_time),
            scans.to_string(),
        ]);
    }
    print_table(
        "Ablation: shared-subplan reuse in the three-stage self join (Fig 20)",
        &["Variant", "Time", "Physical scans"],
        &rows,
    );
}

/// Ablation: surrogate index-nested-loop join (Fig 19).
fn ablation_surrogate(cfg: &WorkloadConfig) {
    let w = Workloads::amazon_only(cfg.clone());
    w.build_indexes();
    let q = jaccard_join_query(1_000, 0.8);
    let mut rows = Vec::new();
    for surrogate in [false, true] {
        let t = avg_time(
            &w.db,
            std::slice::from_ref(&q),
            &options(|c| c.enable_surrogate = surrogate),
        )
        .unwrap();
        rows.push(vec![
            if surrogate {
                "surrogate join"
            } else {
                "full-record broadcast"
            }
            .into(),
            fmt_duration(t.avg),
        ]);
    }
    print_table(
        "Ablation: surrogate index-nested-loop join (Fig 19)",
        &["Variant", "Time"],
        &rows,
    );
}

/// Ablation: global token order — increasing frequency vs arbitrary
/// (§4.2.2's claim that frequency order generates fewer candidate pairs).
fn ablation_token_order(cfg: &WorkloadConfig) {
    use asterix_simfn::prefix::TokenOrder;
    use asterix_simfn::tokenize::word_tokens_distinct;
    use std::collections::HashMap;
    let records = amazon_reviews(cfg.amazon_records.min(5_000), cfg.seed);
    let token_sets: Vec<Vec<String>> = records
        .iter()
        .filter_map(|r| r.field("summary").as_str().map(word_tokens_distinct))
        .collect();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for ts in &token_sets {
        for t in ts {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
    }
    let freq_order = TokenOrder::from_counts(counts.clone());
    let arbitrary = TokenOrder::arbitrary(counts.keys().cloned());
    let delta = 0.8;
    let candidate_pairs = |order: &TokenOrder<String>| -> u64 {
        // Sum over prefix tokens of C(n, 2): the pairs a prefix join
        // would generate.
        let mut by_token: HashMap<u32, u64> = HashMap::new();
        for ts in &token_sets {
            for tok in order.prefix(ts, delta) {
                *by_token.entry(tok).or_insert(0) += 1;
            }
        }
        by_token.values().map(|n| n * n.saturating_sub(1) / 2).sum()
    };
    let started = Instant::now();
    let freq_pairs = candidate_pairs(&freq_order);
    let freq_time = started.elapsed();
    let started = Instant::now();
    let arb_pairs = candidate_pairs(&arbitrary);
    let arb_time = started.elapsed();
    print_table(
        "Ablation: global token order (candidate pairs at δ=0.8)",
        &["Order", "Candidate pairs", "Prefix-extraction time"],
        &[
            vec![
                "increasing frequency (paper)".into(),
                freq_pairs.to_string(),
                fmt_duration(freq_time),
            ],
            vec![
                "arbitrary".into(),
                arb_pairs.to_string(),
                fmt_duration(arb_time),
            ],
        ],
    );
}

// ---------------------------------------------------------------------------
// durability: kill -9 torture harness + WAL group-commit throughput
// ---------------------------------------------------------------------------

/// Partitions for the torture rounds. Kept small so per-partition WALs
/// and manifests all see traffic even in `--quick` runs.
const TORTURE_PARTITIONS: usize = 2;
/// The child issues an explicit `flush()` this often, so flush / merge /
/// manifest-commit crash points are reached within a few dozen inserts.
const TORTURE_FLUSH_EVERY: i64 = 25;

/// A scratch directory under the system tempdir, removed on drop. The
/// torture rounds each get a fresh one so crashes cannot contaminate
/// each other.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "asterix-bench-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The durable configuration shared by the torture child and the
/// parent's recovery verification — both sides must agree on page size
/// and partition count for the on-disk files to be readable.
fn torture_config(dir: &std::path::Path) -> InstanceConfig {
    use asterix_core::DurabilityConfig;
    let mut ic = InstanceConfig::tiny(TORTURE_PARTITIONS);
    ic.durability = DurabilityConfig::at(dir);
    // Short group-commit window: the torture child fsyncs on every
    // insert anyway, and the rounds should finish quickly.
    ic.durability.wal_commit_interval = std::time::Duration::from_micros(200);
    ic
}

/// Deterministic record for id `id` whose summary is drawn from a small
/// vocabulary, so the similarity query below always has matches.
fn torture_record(id: i64) -> asterix_adm::Value {
    const WORDS: [&str; 8] = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    let summary = format!(
        "{} {}",
        WORDS[(id.rem_euclid(8)) as usize],
        WORDS[((id / 8).rem_euclid(8)) as usize]
    );
    asterix_adm::record! {"id" => id, "summary" => summary.as_str()}
}

/// A similarity selection that the keyword index can answer; used for
/// the scan ≡ index consistency check after every crash.
const TORTURE_SIM_Q: &str = "for $t in dataset ARevs \
     where similarity-jaccard(word-tokens($t.summary), word-tokens('alpha beta')) >= 0.3 \
     return $t.id";

/// Hidden child mode: open the durable instance at `args[0]`, create the
/// dataset + keyword index if this is a fresh directory, then insert
/// records from `args[1]` onward, printing `ACK <id>` after each insert
/// returns `Ok` (i.e. after the WAL group commit made it durable) and
/// flushing every `args[3]` inserts. The parent crashes this process via
/// `ASTERIX_CRASH_POINT` aborts or a raw SIGKILL; every id this process
/// ACKed must survive recovery.
fn durability_child(args: &[String]) {
    use std::io::Write;
    let dir = std::path::PathBuf::from(args.first().expect("durability-child: data dir"));
    let start_id: i64 = args[1].parse().expect("durability-child: start id");
    let count: i64 = args[2].parse().expect("durability-child: count");
    let flush_every: i64 = args[3].parse().expect("durability-child: flush interval");

    let db = Instance::open(torture_config(&dir)).expect("durability-child: open");
    if db.count_records("ARevs").is_err() {
        db.create_dataset("ARevs", "id").expect("durability-child: create dataset");
        db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
            .expect("durability-child: create index");
    }
    let mut out = std::io::stdout().lock();
    for i in 0..count {
        let id = start_id + i;
        db.insert("ARevs", torture_record(id)).expect("durability-child: insert");
        // The ACK line *is* the acknowledgment the harness checks for —
        // only printed after insert() returned, i.e. after the WAL fsync.
        writeln!(out, "ACK {id}").expect("durability-child: ack");
        out.flush().expect("durability-child: ack flush");
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            db.flush("ARevs").expect("durability-child: flush");
        }
    }
}

/// Spawn the torture child against `dir` and return `(acked ids,
/// crashed)`. With `crash_point` set the child aborts at that point; with
/// `kill_after` the parent SIGKILLs it once that many ACKs arrived. ACKs
/// already in the pipe when the child dies still count — the child only
/// writes them after the insert was acknowledged durable.
fn spawn_torture_child(
    dir: &std::path::Path,
    start_id: i64,
    count: i64,
    crash_point: Option<&str>,
    kill_after: Option<usize>,
) -> (Vec<i64>, bool) {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("durability-child")
        .arg(dir)
        .arg(start_id.to_string())
        .arg(count.to_string())
        .arg(TORTURE_FLUSH_EVERY.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .env_remove("ASTERIX_CRASH_POINT");
    if let Some(point) = crash_point {
        cmd.env("ASTERIX_CRASH_POINT", point);
    }
    let mut child = cmd.spawn().expect("spawn durability child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut acked = Vec::new();
    let mut killed = false;
    for line in std::io::BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        if let Some(id) = line.strip_prefix("ACK ").and_then(|s| s.trim().parse::<i64>().ok()) {
            acked.push(id);
            if !killed && kill_after.is_some_and(|k| acked.len() >= k) {
                let _ = child.kill();
                killed = true;
                // Keep reading: ACKs the child wrote before dying are
                // real acknowledgments and must survive recovery.
            }
        }
    }
    let status = child.wait().expect("wait for durability child");
    (acked, !status.success())
}

/// Reopen `dir` in-process and check the recovery invariants: every
/// acked id is present and the similarity query answers identically with
/// and without the index. Returns the per-round measurements.
struct TortureVerify {
    recovered: u64,
    missing: usize,
    scan_eq_index: bool,
    replayed: u64,
    wal_truncated: u64,
    orphans_removed: u64,
    recovery_us: u64,
}

fn verify_torture_round(dir: &std::path::Path, acked: &[i64]) -> TortureVerify {
    use asterix_adm::Value;
    let db = Instance::open(torture_config(dir)).expect("reopen after crash");
    let stats = db.recovery_stats().expect("durable instance reports recovery stats");
    let (replayed, wal_truncated, orphans_removed, recovery_us) = (
        stats.wal_records_replayed,
        stats.wal_bytes_truncated,
        stats.orphan_files_removed,
        stats.recovery_time.as_micros() as u64,
    );
    let ids: std::collections::HashSet<i64> = db
        .query("for $t in dataset ARevs return $t.id")
        .expect("id scan after recovery")
        .rows
        .into_iter()
        .filter_map(|v| match v {
            Value::Int64(i) => Some(i),
            _ => None,
        })
        .collect();
    let missing = acked.iter().filter(|id| !ids.contains(id)).count();
    let collect = |r: Result<asterix_core::QueryResult, asterix_core::CoreError>| {
        let mut ids: Vec<i64> = r
            .expect("similarity query after recovery")
            .rows
            .into_iter()
            .filter_map(|v| match v {
                Value::Int64(i) => Some(i),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids
    };
    let with_index = collect(db.query(TORTURE_SIM_Q));
    let without_index = collect(db.query_with(TORTURE_SIM_Q, &no_index()));
    // The recovered instance must also accept new writes.
    db.insert("ARevs", torture_record(9_999_999)).expect("post-recovery insert");
    db.flush("ARevs").expect("post-recovery flush");
    TortureVerify {
        recovered: ids.len() as u64,
        missing,
        scan_eq_index: with_index == without_index && !with_index.is_empty(),
        replayed,
        wal_truncated,
        orphans_removed,
        recovery_us,
    }
}

fn durability_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use std::time::Duration;

    println!("\nDurability: kill -9 torture + crash points + WAL group commit");
    let crash_rounds = if quick { 1 } else { 3 };
    let kill_rounds = if quick { 2 } else { 5 };
    let seed_records: i64 = if quick { 120 } else { 400 };
    let child_records: i64 = if quick { 400 } else { 1_200 };

    // --- torture rounds -------------------------------------------------
    let mut scenarios: Vec<(String, Option<&'static str>, Option<usize>)> = Vec::new();
    for _ in 0..crash_rounds {
        for point in ["flush.mid", "merge.mid", "manifest.rename"] {
            scenarios.push((format!("crash:{point}"), Some(point), None));
        }
    }
    for round in 0..kill_rounds {
        scenarios.push(("sigkill".to_string(), None, Some(40 + round * 61)));
    }

    let mut rows = Vec::new();
    let mut round_docs = Vec::new();
    for (mode, crash_point, kill_after) in &scenarios {
        let scratch = ScratchDir::new("durability");
        // Seed in-process so the dataset + index exist and sealed
        // components are on disk before the crash round begins.
        let mut acked: Vec<i64> = {
            let db = Instance::open(torture_config(scratch.path())).expect("seed open");
            db.create_dataset("ARevs", "id").expect("seed dataset");
            db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
                .expect("seed index");
            let loaded = db
                .load("ARevs", (0..seed_records).map(torture_record))
                .expect("seed load");
            assert_eq!(loaded, seed_records as u64);
            db.flush("ARevs").expect("seed flush");
            (0..seed_records).collect()
        };

        let (child_acked, crashed) = spawn_torture_child(
            scratch.path(),
            seed_records,
            child_records,
            *crash_point,
            *kill_after,
        );
        assert!(
            crashed,
            "{mode}: the torture child must die mid-stream, not exit cleanly \
             (it acked {} of {child_records})",
            child_acked.len()
        );
        acked.extend(&child_acked);

        let v = verify_torture_round(scratch.path(), &acked);
        assert_eq!(
            v.missing, 0,
            "{mode}: {} acknowledged writes lost after recovery",
            v.missing
        );
        assert!(
            v.scan_eq_index,
            "{mode}: scan and index disagree after recovery"
        );
        println!(
            "  {mode}: acked={} recovered={} replayed={} wal_truncated={}B \
             orphans={} recovery={}",
            acked.len(),
            v.recovered,
            v.replayed,
            v.wal_truncated,
            v.orphans_removed,
            fmt_duration(Duration::from_micros(v.recovery_us)),
        );
        rows.push(vec![
            mode.clone(),
            acked.len().to_string(),
            v.recovered.to_string(),
            "0".to_string(),
            v.replayed.to_string(),
            v.wal_truncated.to_string(),
            v.orphans_removed.to_string(),
            fmt_duration(Duration::from_micros(v.recovery_us)),
        ]);
        round_docs.push(Value::record(vec![
            ("mode".to_string(), Value::String(mode.clone())),
            ("acked".to_string(), Value::Int64(acked.len() as i64)),
            ("recovered".to_string(), Value::Int64(v.recovered as i64)),
            ("lost".to_string(), Value::Int64(v.missing as i64)),
            (
                "scan_eq_index".to_string(),
                Value::Boolean(v.scan_eq_index),
            ),
            ("replayed_records".to_string(), Value::Int64(v.replayed as i64)),
            (
                "wal_bytes_truncated".to_string(),
                Value::Int64(v.wal_truncated as i64),
            ),
            (
                "orphan_files_removed".to_string(),
                Value::Int64(v.orphans_removed as i64),
            ),
            ("recovery_us".to_string(), Value::Int64(v.recovery_us as i64)),
        ]));
    }
    print_table(
        "Durability torture: zero acked-write loss across crashes",
        &[
            "crash", "acked", "recovered", "lost", "replayed", "wal trunc B", "orphans",
            "recovery",
        ],
        &rows,
    );

    // --- WAL group-commit throughput ------------------------------------
    // Concurrent writers against one durable instance: each insert blocks
    // until its WAL record is fsynced, so throughput beyond
    // 1/commit_interval per partition is group commit at work. The
    // batching factor is appends per fsync batch.
    let per_writer: i64 = if quick { 150 } else { 600 };
    let writer_levels: &[usize] = &[1, 8];
    let mut gc_rows = Vec::new();
    let mut gc_docs = Vec::new();
    let mut replay_doc = Value::record(vec![]);
    for (li, &writers) in writer_levels.iter().enumerate() {
        let scratch = ScratchDir::new("groupcommit");
        let mut ic = InstanceConfig::with_partitions(cfg.partitions);
        ic.durability = asterix_core::DurabilityConfig::at(scratch.path());
        ic.durability.wal_commit_interval = Duration::from_micros(500);
        let db = Instance::open(ic.clone()).expect("group-commit open");
        db.create_dataset("ARevs", "id").expect("group-commit dataset");
        let before = db.metrics().gauges.durability.clone();
        let started = Instant::now();
        std::thread::scope(|s| {
            for w in 0..writers {
                let db = &db;
                s.spawn(move || {
                    let base = (w as i64 + 1) * 1_000_000;
                    for i in 0..per_writer {
                        db.insert("ARevs", torture_record(base + i))
                            .expect("group-commit insert");
                    }
                });
            }
        });
        let wall_us = started.elapsed().as_micros().max(1) as u64;
        let after = db.metrics().gauges.durability.clone();
        let total = (writers as i64 * per_writer) as u64;
        let per_sec = total as f64 * 1e6 / wall_us as f64;
        let appends = after.wal_appends - before.wal_appends;
        let commits = (after.wal_group_commits - before.wal_group_commits).max(1);
        let batching = appends as f64 / commits as f64;
        println!(
            "  group commit: writers={writers} inserts={total} wall={} \
             rate={per_sec:.0}/s appends={appends} fsync_batches={commits} \
             batching={batching:.2}x",
            fmt_duration(Duration::from_micros(wall_us)),
        );
        gc_rows.push(vec![
            writers.to_string(),
            total.to_string(),
            fmt_duration(Duration::from_micros(wall_us)),
            format!("{per_sec:.0}"),
            format!("{batching:.2}"),
        ]);
        gc_docs.push(Value::record(vec![
            ("writers".to_string(), Value::Int64(writers as i64)),
            ("inserts".to_string(), Value::Int64(total as i64)),
            ("wall_us".to_string(), Value::Int64(wall_us as i64)),
            ("inserts_per_sec".to_string(), Value::from(per_sec)),
            ("wal_appends".to_string(), Value::Int64(appends as i64)),
            ("wal_group_commits".to_string(), Value::Int64(commits as i64)),
            (
                "wal_fsyncs".to_string(),
                Value::Int64((after.wal_fsyncs - before.wal_fsyncs) as i64),
            ),
            ("batching_factor".to_string(), Value::from(batching)),
        ]));

        // After the widest level, measure cold-start recovery of the
        // whole unflushed WAL — drop, reopen, time the replay.
        if li == writer_levels.len() - 1 {
            drop(db);
            let t0 = Instant::now();
            let db = Instance::open(ic).expect("replay reopen");
            let open_us = t0.elapsed().as_micros().max(1) as u64;
            let stats = db.recovery_stats().expect("replay stats");
            let replayed = stats.wal_records_replayed;
            let recovery_us = stats.recovery_time.as_micros() as u64;
            assert_eq!(
                db.count_records("ARevs").expect("replay count"),
                total,
                "WAL replay must restore every unflushed insert"
            );
            let rate = replayed as f64 * 1e6 / recovery_us.max(1) as f64;
            println!(
                "  recovery: replayed={replayed} records in {} ({rate:.0}/s, open {} total)",
                fmt_duration(Duration::from_micros(recovery_us)),
                fmt_duration(Duration::from_micros(open_us)),
            );
            replay_doc = Value::record(vec![
                ("records_replayed".to_string(), Value::Int64(replayed as i64)),
                ("recovery_us".to_string(), Value::Int64(recovery_us as i64)),
                ("open_us".to_string(), Value::Int64(open_us as i64)),
                ("replay_per_sec".to_string(), Value::from(rate)),
            ]);
        }
    }
    print_table(
        "WAL group commit: concurrent writers, fsync batching",
        &["writers", "inserts", "wall", "inserts/s", "batching"],
        &gc_rows,
    );

    // --- bulk load: one group commit per WAL batch ----------------------
    let bulk_records: i64 = if quick { 2_000 } else { 10_000 };
    let bulk_doc = {
        let scratch = ScratchDir::new("bulkload");
        let mut ic = InstanceConfig::with_partitions(cfg.partitions);
        ic.durability = asterix_core::DurabilityConfig::at(scratch.path());
        let db = Instance::open(ic).expect("bulk open");
        db.create_dataset("ARevs", "id").expect("bulk dataset");
        let started = Instant::now();
        let loaded = db
            .load("ARevs", (0..bulk_records).map(torture_record))
            .expect("bulk load");
        let wall_us = started.elapsed().as_micros().max(1) as u64;
        assert_eq!(loaded, bulk_records as u64);
        let g = db.metrics().gauges.durability.clone();
        let per_sec = bulk_records as f64 * 1e6 / wall_us as f64;
        println!(
            "  bulk load: {bulk_records} records in {} ({per_sec:.0}/s, \
             {} WAL group commits)",
            fmt_duration(Duration::from_micros(wall_us)),
            g.wal_group_commits,
        );
        Value::record(vec![
            ("records".to_string(), Value::Int64(bulk_records)),
            ("wall_us".to_string(), Value::Int64(wall_us as i64)),
            ("records_per_sec".to_string(), Value::from(per_sec)),
            ("wal_appends".to_string(), Value::Int64(g.wal_appends as i64)),
            (
                "wal_group_commits".to_string(),
                Value::Int64(g.wal_group_commits as i64),
            ),
        ])
    };

    let doc = Value::record(vec![
        ("quick".to_string(), Value::Boolean(quick)),
        (
            "torture_partitions".to_string(),
            Value::Int64(TORTURE_PARTITIONS as i64),
        ),
        (
            "group_commit_partitions".to_string(),
            Value::Int64(cfg.partitions as i64),
        ),
        ("seed_records".to_string(), Value::Int64(seed_records)),
        ("child_records".to_string(), Value::Int64(child_records)),
        ("torture".to_string(), Value::OrderedList(round_docs)),
        ("group_commit".to_string(), Value::OrderedList(gc_docs)),
        ("wal_replay".to_string(), replay_doc),
        ("bulk_load".to_string(), bulk_doc),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}

// --------------------------------------------------------------------
// serve: the asterix-server HTTP service — streaming parity, latency
// under concurrency, and zero acked-ingest loss across kill -9.
// --------------------------------------------------------------------

/// Minimal HTTP/1.1 client exchange (`Connection: close`); decodes a
/// chunked body when the server streamed one. Errors are connection
/// failures — expected while the torture child is being killed.
fn http_exchange(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).to_string();
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no head"))?;
    let head = &text[..head_end];
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body_raw = &text[head_end + 4..];
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let mut out = String::new();
        let mut rest = body_raw;
        while let Some(line_end) = rest.find("\r\n") {
            let size = usize::from_str_radix(rest[..line_end].trim(), 16).unwrap_or(0);
            if size == 0 || rest.len() < line_end + 2 + size + 2 {
                break;
            }
            out.push_str(&rest[line_end + 2..line_end + 2 + size]);
            rest = &rest[line_end + 2 + size + 2..];
        }
        out
    } else {
        body_raw.to_string()
    };
    Ok((status, body))
}

/// Run `statement` over `POST /query` and return the sorted serialized
/// result rows (the canonical form the parity check compares).
fn http_query_rows(addr: std::net::SocketAddr, statement: &str) -> (Vec<String>, u64) {
    use asterix_adm::Value;
    let body = format!(
        "{{\"statement\": {}}}",
        asterix_adm::json::to_string(&Value::from(statement))
    );
    // Time only the wire exchange (request out, full stream back);
    // client-side NDJSON parsing is not server overhead.
    let started = Instant::now();
    let (status, text) = http_exchange(addr, "POST", "/query", &body).expect("query exchange");
    let exchange_us = started.elapsed().as_micros() as u64;
    assert_eq!(status, 200, "query over HTTP failed: {text}");
    let mut rows = Vec::new();
    let mut done = false;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = asterix_adm::json::parse(line).expect("NDJSON line");
        if !matches!(v.field("row"), Value::Missing) {
            rows.push(asterix_adm::json::to_string(v.field("row")));
        } else if !matches!(v.field("done"), Value::Missing) {
            done = true;
        } else {
            panic!("in-band query error: {line}");
        }
    }
    assert!(done, "stream ended without a done line");
    rows.sort();
    (rows, exchange_us)
}

/// Deterministic review record for the serve workload.
fn serve_record(id: i64) -> asterix_adm::Value {
    const ADJ: [&str; 8] = [
        "great", "awful", "decent", "fantastic", "cheap", "sturdy", "fragile", "reliable",
    ];
    const NOUN: [&str; 8] = [
        "product", "charger", "cable", "speaker", "keyboard", "monitor", "backpack", "bottle",
    ];
    let summary = format!(
        "{} {} {} number {}",
        ADJ[(id.rem_euclid(8)) as usize],
        ADJ[((id / 8).rem_euclid(8)) as usize],
        NOUN[((id / 64).rem_euclid(8)) as usize],
        id
    );
    asterix_adm::record! {"id" => id, "summary" => summary.as_str()}
}

/// Hidden child mode: open the durable instance at `args[0]` (creating
/// the torture dataset + index on a fresh directory), start a full
/// `asterix-server` on an OS-assigned port, publish the bound address
/// atomically at `args[1]`, and serve until killed. The parent SIGKILLs
/// this process mid-ingest; every batch it answered `200` must survive.
fn serve_child(args: &[String]) {
    let dir = std::path::PathBuf::from(args.first().expect("serve-child: data dir"));
    let addr_file = std::path::PathBuf::from(args.get(1).expect("serve-child: addr file"));
    let db = Instance::open(torture_config(&dir)).expect("serve-child: open");
    if db.count_records("ARevs").is_err() {
        db.create_dataset("ARevs", "id").expect("serve-child: create dataset");
        db.create_index("ARevs", "sum_kw", "summary", IndexKind::Keyword)
            .expect("serve-child: create index");
    }
    let server = asterix_server::AsterixServer::start(
        std::sync::Arc::new(db),
        asterix_server::ServerConfig::ephemeral(),
    )
    .expect("serve-child: bind");
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("serve-child: addr write");
    std::fs::rename(&tmp, &addr_file).expect("serve-child: addr publish");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Spawn a serve child on a fresh scratch dir and wait for its address.
fn spawn_serve_child(
    dir: &std::path::Path,
    addr_file: &std::path::Path,
) -> (std::process::Child, std::net::SocketAddr) {
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .arg("serve-child")
        .arg(dir)
        .arg(addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .env_remove("ASTERIX_CRASH_POINT")
        .spawn()
        .expect("spawn serve child");
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "serve child did not publish its address in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    (child, addr)
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn serve_report(cfg: &WorkloadConfig, quick: bool) {
    use asterix_adm::Value;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    println!("\nServe: HTTP streaming parity, latency, and ingest durability");
    let records: i64 = if quick { 1_500 } else { 8_000 };
    let clients: usize = if quick { 8 } else { 64 };
    let per_client: usize = if quick { 3 } else { 8 };
    let torture_rounds: usize = if quick { 1 } else { 3 };
    let feeders: usize = if quick { 2 } else { 4 };
    let kill_after_acks: usize = if quick { 150 } else { 600 };

    // --- streaming parity + latency under concurrency -------------------
    let db = Instance::new(InstanceConfig::with_partitions(cfg.partitions));
    db.create_dataset("Reviews", "id").expect("serve dataset");
    for i in 0..records {
        db.insert("Reviews", serve_record(i)).expect("serve seed");
    }
    db.create_index("Reviews", "smix", "summary", IndexKind::Keyword)
        .expect("serve index");
    let db = Arc::new(db);
    let query = "for $r in dataset Reviews \
                 where similarity-jaccard(word-tokens($r.summary), \
                                          word-tokens('great fantastic product number')) >= 0.4 \
                 return $r.id";

    let canonical: Vec<String> = {
        let mut rows: Vec<String> = db
            .query(query)
            .expect("library baseline")
            .rows
            .iter()
            .map(asterix_adm::json::to_string)
            .collect();
        rows.sort();
        rows
    };
    assert!(!canonical.is_empty(), "serve parity query returned no rows");

    // Library execution at the same concurrency as the HTTP clients, so
    // the ratio isolates the HTTP + streaming overhead rather than
    // admission queueing (both paths share the scheduler).
    let library_lat: Vec<u64> = {
        let lat = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    for _ in 0..per_client {
                        let started = Instant::now();
                        let result = db.query(query).expect("library query");
                        let us = started.elapsed().as_micros() as u64;
                        assert_eq!(result.rows.len(), canonical.len());
                        lat.lock().unwrap().push(us);
                    }
                });
            }
        });
        let mut lat = lat.into_inner().unwrap();
        lat.sort_unstable();
        lat
    };

    let server = asterix_server::AsterixServer::start(
        Arc::clone(&db),
        asterix_server::ServerConfig::ephemeral(),
    )
    .expect("start serve server");
    let addr = server.local_addr();
    let parity;
    let http_lat: Vec<u64> = {
        let lat = Mutex::new(Vec::new());
        let all_match = AtomicBool::new(true);
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    for _ in 0..per_client {
                        let (rows, us) = http_query_rows(addr, query);
                        if rows != canonical {
                            all_match.store(false, Ordering::SeqCst);
                        }
                        lat.lock().unwrap().push(us);
                    }
                });
            }
        });
        parity = all_match.load(Ordering::SeqCst);
        let mut lat = lat.into_inner().unwrap();
        lat.sort_unstable();
        lat
    };
    assert!(parity, "a streamed HTTP result diverged from library execution");

    let lib_p50 = percentile_us(&library_lat, 0.50);
    let lib_p95 = percentile_us(&library_lat, 0.95);
    let http_p50 = percentile_us(&http_lat, 0.50);
    let http_p95 = percentile_us(&http_lat, 0.95);
    let p95_ratio = http_p95 as f64 / lib_p95.max(1) as f64;
    print_table(
        &format!(
            "Streaming over HTTP vs direct library at {clients} concurrent clients \
             ({} queries each, {} rows per result)",
            per_client,
            canonical.len()
        ),
        &["path", "p50", "p95"],
        &[
            vec![
                "library".to_string(),
                fmt_duration(std::time::Duration::from_micros(lib_p50)),
                fmt_duration(std::time::Duration::from_micros(lib_p95)),
            ],
            vec![
                "http".to_string(),
                fmt_duration(std::time::Duration::from_micros(http_p50)),
                fmt_duration(std::time::Duration::from_micros(http_p95)),
            ],
        ],
    );
    println!("  parity: all {} HTTP results identical to library execution", clients * per_client);
    println!("  p95 ratio (http/library): {p95_ratio:.3}");
    assert!(
        p95_ratio <= 1.2,
        "HTTP streaming p95 exceeded 1.2x the library p95 ({p95_ratio:.3})"
    );
    drop(server);

    // --- ingest durability across kill -9 --------------------------------
    let mut round_docs = Vec::new();
    let mut rows = Vec::new();
    for round in 0..torture_rounds {
        let scratch = ScratchDir::new("serve");
        let addr_file = scratch.path().with_extension(format!("addr{round}"));
        let (mut child, addr) = spawn_serve_child(scratch.path(), &addr_file);

        let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for f in 0..feeders {
                let acked = Arc::clone(&acked);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut next = (f as i64 + 1) * 1_000_000;
                    while !stop.load(Ordering::SeqCst) {
                        let ids: Vec<i64> = (next..next + 10).collect();
                        let batch: String = ids
                            .iter()
                            .map(|id| {
                                let mut line =
                                    asterix_adm::json::to_string(&torture_record(*id));
                                line.push('\n');
                                line
                            })
                            .collect();
                        match http_exchange(addr, "POST", "/ingest/ARevs", &batch) {
                            Ok((200, _)) => {
                                // 200 means every record in the batch is
                                // durable — these ids must survive SIGKILL.
                                acked.lock().unwrap().extend(&ids);
                                next += 10;
                            }
                            Ok((429, _)) => {
                                // Feed saturated: retry the same batch.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                            }
                            Ok((status, body)) => {
                                panic!("unexpected ingest status {status}: {body}")
                            }
                            Err(_) => {
                                // Connection failure: the child is being
                                // (or has been) killed. Nothing from this
                                // batch was acknowledged.
                                std::thread::sleep(std::time::Duration::from_millis(10));
                            }
                        }
                    }
                });
            }
            // Kill the server for real once enough batches are acked.
            while acked.lock().unwrap().len() < kill_after_acks {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            child.kill().expect("SIGKILL serve child");
            let _ = child.wait();
            stop.store(true, Ordering::SeqCst);
        });

        let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
        assert!(acked.len() >= kill_after_acks);
        let v = verify_torture_round(scratch.path(), &acked);
        assert_eq!(
            v.missing, 0,
            "round {round}: {} HTTP-acked records lost after kill -9",
            v.missing
        );
        assert!(
            v.scan_eq_index,
            "round {round}: scan and index disagree after recovery"
        );
        println!(
            "  round {round}: acked={} recovered={} lost=0 replayed={} recovery={}",
            acked.len(),
            v.recovered,
            v.replayed,
            fmt_duration(std::time::Duration::from_micros(v.recovery_us)),
        );
        rows.push(vec![
            round.to_string(),
            acked.len().to_string(),
            v.recovered.to_string(),
            "0".to_string(),
            v.replayed.to_string(),
            fmt_duration(std::time::Duration::from_micros(v.recovery_us)),
        ]);
        round_docs.push(Value::record(vec![
            ("round".to_string(), Value::Int64(round as i64)),
            ("acked".to_string(), Value::Int64(acked.len() as i64)),
            ("recovered".to_string(), Value::Int64(v.recovered as i64)),
            ("lost".to_string(), Value::Int64(v.missing as i64)),
            ("replayed_records".to_string(), Value::Int64(v.replayed as i64)),
            ("recovery_us".to_string(), Value::Int64(v.recovery_us as i64)),
        ]));
    }
    print_table(
        "Ingest-over-HTTP torture: zero acked-batch loss across kill -9",
        &["round", "acked", "recovered", "lost", "replayed", "recovery"],
        &rows,
    );

    let doc = Value::record(vec![
        ("quick".to_string(), Value::Boolean(quick)),
        ("records".to_string(), Value::Int64(records)),
        ("clients".to_string(), Value::Int64(clients as i64)),
        ("queries_per_client".to_string(), Value::Int64(per_client as i64)),
        ("rows_per_query".to_string(), Value::Int64(canonical.len() as i64)),
        (
            "streaming".to_string(),
            Value::record(vec![
                ("parity".to_string(), Value::Boolean(parity)),
                ("library_p50_us".to_string(), Value::Int64(lib_p50 as i64)),
                ("library_p95_us".to_string(), Value::Int64(lib_p95 as i64)),
                ("http_p50_us".to_string(), Value::Int64(http_p50 as i64)),
                ("http_p95_us".to_string(), Value::Int64(http_p95 as i64)),
                ("p95_ratio".to_string(), Value::from(p95_ratio)),
            ]),
        ),
        (
            "ingest".to_string(),
            Value::record(vec![
                ("feeders".to_string(), Value::Int64(feeders as i64)),
                ("kill_after_acks".to_string(), Value::Int64(kill_after_acks as i64)),
                ("rounds".to_string(), Value::OrderedList(round_docs)),
                ("zero_loss".to_string(), Value::Boolean(true)),
            ]),
        ),
    ]);
    let json = asterix_adm::json::to_string(&doc);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} bytes)", json.len());
}
