//! # asterix-bench
//!
//! The experiment harness: workload construction, query templates, and
//! timing utilities used by the `experiments` binary (which regenerates
//! every table and figure of the paper's §6 at laptop scale) and by the
//! Criterion micro/ablation benches.

pub mod harness;
pub mod workloads;

pub use harness::{avg_time, fmt_duration, print_table, time_once, Timed};
pub use workloads::{WorkloadConfig, Workloads};
