//! Scratch profiler for the hotpath jac-join query (not part of the
//! benchmark suite): prints the per-operator breakdown of the fully
//! optimized variant so kernel work can be targeted.

use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;

fn main() {
    let records = 20_000;
    let outer = 200;
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("AmazonReview", "id").unwrap();
    db.load("AmazonReview", amazon_reviews(records, 42)).unwrap();
    db.create_index(
        "AmazonReview",
        "summary_kw",
        "summary",
        asterix_adm::IndexKind::Keyword,
    )
    .unwrap();
    db.flush("AmazonReview").unwrap();

    let q = format!(
        r#"for $o in dataset AmazonReview
           for $i in dataset AmazonReview
           where $o.id < {outer}
             and similarity-jaccard(word-tokens($o.summary),
                                    word-tokens($i.summary)) >= 0.8
             and $o.id < $i.id
           return {{"oid": $o.id, "iid": $i.id}}"#
    );
    let opts = QueryOptions {
        profile: true,
        ..QueryOptions::default()
    };
    db.query_with(&q, &opts).unwrap(); // warm
    let r = db.query_with(&q, &opts).unwrap();
    let p = r.profile.unwrap();
    println!("execution: {:?}", r.execution_time);
    println!("{}", p.render_text());
}
