//! Microbenchmarks for the similarity-function library: exact functions
//! vs their early-terminating threshold checks (§6.3.1's "optimizations
//! such as early termination and pruning based on string lengths"), and
//! the tokenizers.

use asterix_simfn::{
    edit_distance, edit_distance_check, gram_tokens, jaccard, jaccard_check, word_tokens,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_edit_distance(c: &mut Criterion) {
    let a = "the quick brown fox jumps over the lazy dog";
    let b = "the quick browm fox jumped over a lazy dog";
    let far = "completely unrelated text with nothing in common at all";
    let mut g = c.benchmark_group("edit_distance");
    g.bench_function("full_dp_similar", |bench| {
        bench.iter(|| edit_distance(black_box(a), black_box(b)))
    });
    g.bench_function("check_k2_similar", |bench| {
        bench.iter(|| edit_distance_check(black_box(a), black_box(b), 2))
    });
    g.bench_function("full_dp_dissimilar", |bench| {
        bench.iter(|| edit_distance(black_box(a), black_box(far)))
    });
    // Early termination shines on dissimilar strings: the band exceeds k
    // after a few rows.
    g.bench_function("check_k2_dissimilar", |bench| {
        bench.iter(|| edit_distance_check(black_box(a), black_box(far), 2))
    });
    g.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    let r: Vec<String> = (0..40).map(|i| format!("tok{i}")).collect();
    let s: Vec<String> = (20..60).map(|i| format!("tok{i}")).collect();
    let far: Vec<String> = (100..140).map(|i| format!("tok{i}")).collect();
    let mut g = c.benchmark_group("jaccard");
    g.bench_function("full", |bench| {
        bench.iter(|| jaccard(black_box(&r), black_box(&s)))
    });
    g.bench_function("check_0.5_overlapping", |bench| {
        bench.iter(|| jaccard_check(black_box(&r), black_box(&s), 0.5))
    });
    // The length filter + early termination reject dissimilar pairs fast.
    g.bench_function("check_0.5_disjoint", |bench| {
        bench.iter(|| jaccard_check(black_box(&r), black_box(&far), 0.5))
    });
    g.finish();
}

fn bench_tokenizers(c: &mut Criterion) {
    let text = "Better ever than I expected - great product, fantastic gift idea for the family";
    let mut g = c.benchmark_group("tokenize");
    g.bench_function("word_tokens", |bench| {
        bench.iter(|| word_tokens(black_box(text)))
    });
    g.bench_function("gram_tokens_2", |bench| {
        bench.iter(|| gram_tokens(black_box("reviewer name text"), 2))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_edit_distance,
    bench_jaccard,
    bench_tokenizers
);
criterion_main!(benches);
