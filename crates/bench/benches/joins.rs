//! Engine-level join benchmarks: nested-loop vs index-nested-loop vs the
//! three-stage similarity join (Figs 24/25 at criterion scale).

use asterix_algebricks::OptimizerConfig;
use asterix_bench::{WorkloadConfig, Workloads};
use asterix_core::QueryOptions;
use criterion::{criterion_group, criterion_main, Criterion};

fn options(f: impl FnOnce(&mut OptimizerConfig)) -> QueryOptions {
    let mut cfg = OptimizerConfig::default();
    f(&mut cfg);
    QueryOptions {
        optimizer: Some(cfg),
        ..QueryOptions::default()
    }
}

fn bench_joins(c: &mut Criterion) {
    let w = Workloads::amazon_only(WorkloadConfig {
        partitions: 2,
        amazon_records: 800,
        reddit_records: 0,
        twitter_records: 0,
        seed: 11,
    });
    w.build_indexes();
    let q = r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where $o.id < 100
                   and similarity-jaccard(word-tokens($o.summary),
                                          word-tokens($i.summary)) >= 0.8
                   and $o.id < $i.id
                 return {"oid": $o.id} );"#;
    let mut g = c.benchmark_group("jaccard_join_0.8_outer100");
    g.sample_size(10);
    g.bench_function("index_nested_loop", |b| {
        b.iter(|| w.db.query(q).unwrap())
    });
    g.bench_function("three_stage", |b| {
        b.iter(|| w.db.query_with(q, &options(|c| c.enable_index_join = false)).unwrap())
    });
    g.bench_function("nested_loop", |b| {
        b.iter(|| {
            w.db.query_with(
                q,
                &options(|c| {
                    c.enable_index_join = false;
                    c.enable_three_stage = false;
                }),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
