//! T-occurrence merge-algorithm ablation (DESIGN.md): ScanCount vs the
//! heap merge, across inverted-list shapes.

use asterix_simfn::{t_occurrence_divide_skip, t_occurrence_heap, t_occurrence_scan_count};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `lists` sorted inverted lists of ~`len` ids drawn from `universe`.
fn make_lists(num: usize, len: usize, universe: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num)
        .map(|_| {
            let mut l: Vec<u64> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect()
}

fn bench_tocc(c: &mut Criterion) {
    let mut g = c.benchmark_group("t_occurrence");
    for (num, len) in [(4usize, 200usize), (8, 1000), (16, 5000)] {
        let lists = make_lists(num, len, (len * 4) as u64, 42);
        let refs: Vec<&[u64]> = lists.iter().map(|l| l.as_slice()).collect();
        let t = num / 2;
        g.bench_with_input(
            BenchmarkId::new("scan_count", format!("{num}x{len}")),
            &refs,
            |b, refs| b.iter(|| t_occurrence_scan_count(black_box(refs), t)),
        );
        g.bench_with_input(
            BenchmarkId::new("heap", format!("{num}x{len}")),
            &refs,
            |b, refs| b.iter(|| t_occurrence_heap(black_box(refs), t)),
        );
        g.bench_with_input(
            BenchmarkId::new("divide_skip", format!("{num}x{len}")),
            &refs,
            |b, refs| b.iter(|| t_occurrence_divide_skip(black_box(refs), t)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tocc);
criterion_main!(benches);
