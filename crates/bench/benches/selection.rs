//! Engine-level selection benchmarks: the Fig 22 comparison (index vs
//! scan for Jaccard and edit distance) at criterion scale.

use asterix_algebricks::OptimizerConfig;
use asterix_bench::{WorkloadConfig, Workloads};
use asterix_core::QueryOptions;
use criterion::{criterion_group, criterion_main, Criterion};

fn small_workload() -> Workloads {
    let w = Workloads::amazon_only(WorkloadConfig {
        partitions: 2,
        amazon_records: 2_000,
        reddit_records: 0,
        twitter_records: 0,
        seed: 7,
    });
    w.build_indexes();
    w
}

fn no_index() -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        ..QueryOptions::default()
    }
}

fn bench_selection(c: &mut Criterion) {
    let w = small_workload();
    let probe = w
        .search_values("AmazonReview", "summary", 1, 3, 3, 3)
        .pop()
        .unwrap();
    let name = w
        .search_values("AmazonReview", "reviewerName", 1, 1, 4, 4)
        .pop()
        .unwrap();
    let jac = format!(
        r#"count( for $o in dataset AmazonReview
             where similarity-jaccard(word-tokens($o.summary),
                                      word-tokens('{probe}')) >= 0.8
             return {{"oid": $o.id}} );"#
    );
    let ed = format!(
        r#"count( for $o in dataset AmazonReview
             where edit-distance($o.reviewerName, '{name}') <= 1
             return {{"oid": $o.id}} );"#
    );
    let mut g = c.benchmark_group("selection");
    g.sample_size(20);
    g.bench_function("jaccard_0.8_index", |b| {
        b.iter(|| w.db.query(&jac).unwrap())
    });
    g.bench_function("jaccard_0.8_scan", |b| {
        b.iter(|| w.db.query_with(&jac, &no_index()).unwrap())
    });
    g.bench_function("edit_distance_1_index", |b| {
        b.iter(|| w.db.query(&ed).unwrap())
    });
    g.bench_function("edit_distance_1_scan", |b| {
        b.iter(|| w.db.query_with(&ed, &no_index()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
