//! Ablation benches for the design choices DESIGN.md calls out:
//! pk-sorting before primary lookups (§4.1.1), shared-subplan reuse
//! (Fig 20), the surrogate join (Fig 19), and the global token order
//! (§4.2.2).

use asterix_algebricks::OptimizerConfig;
use asterix_bench::{WorkloadConfig, Workloads};
use asterix_core::QueryOptions;
use asterix_simfn::prefix::TokenOrder;
use asterix_simfn::tokenize::word_tokens_distinct;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::collections::HashMap;

fn options(f: impl FnOnce(&mut OptimizerConfig)) -> QueryOptions {
    let mut cfg = OptimizerConfig::default();
    f(&mut cfg);
    QueryOptions {
        optimizer: Some(cfg),
        ..QueryOptions::default()
    }
}

fn workload(n: usize) -> Workloads {
    let w = Workloads::amazon_only(WorkloadConfig {
        partitions: 2,
        amazon_records: n,
        reddit_records: 0,
        twitter_records: 0,
        seed: 21,
    });
    w.build_indexes();
    w
}

fn bench_pk_sort(c: &mut Criterion) {
    let w = workload(2_000);
    let probe = w
        .search_values("AmazonReview", "summary", 1, 3, 3, 5)
        .pop()
        .unwrap();
    let q = format!(
        r#"count( for $o in dataset AmazonReview
             where similarity-jaccard(word-tokens($o.summary),
                                      word-tokens('{probe}')) >= 0.2
             return {{"oid": $o.id}} );"#
    );
    let mut g = c.benchmark_group("pk_sort_before_lookup");
    g.sample_size(20);
    g.bench_function("sorted", |b| {
        b.iter(|| w.db.query_with(&q, &options(|c| c.sort_pks = true)).unwrap())
    });
    g.bench_function("unsorted", |b| {
        b.iter(|| w.db.query_with(&q, &options(|c| c.sort_pks = false)).unwrap())
    });
    g.finish();
}

fn bench_reuse(c: &mut Criterion) {
    let w = workload(800);
    let q = r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where similarity-jaccard(word-tokens($o.summary),
                                          word-tokens($i.summary)) >= 0.8
                   and $o.id < $i.id
                 return {"oid": $o.id} );"#;
    let mut g = c.benchmark_group("subplan_reuse_three_stage");
    g.sample_size(10);
    g.bench_function("reuse", |b| {
        b.iter(|| {
            w.db.query_with(
                q,
                &options(|c| {
                    c.enable_index_join = false;
                    c.enable_subplan_reuse = true;
                }),
            )
            .unwrap()
        })
    });
    g.bench_function("recompute", |b| {
        b.iter(|| {
            w.db.query_with(
                q,
                &options(|c| {
                    c.enable_index_join = false;
                    c.enable_subplan_reuse = false;
                }),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_surrogate(c: &mut Criterion) {
    let w = workload(1_500);
    let q = r#"count( for $o in dataset AmazonReview
                 for $i in dataset AmazonReview
                 where $o.id < 300
                   and similarity-jaccard(word-tokens($o.summary),
                                          word-tokens($i.summary)) >= 0.8
                   and $o.id < $i.id
                 return {"oid": $o.id} );"#;
    let mut g = c.benchmark_group("surrogate_index_join");
    g.sample_size(10);
    g.bench_function("full_record_broadcast", |b| {
        b.iter(|| w.db.query_with(q, &options(|c| c.enable_surrogate = false)).unwrap())
    });
    g.bench_function("surrogate", |b| {
        b.iter(|| w.db.query_with(q, &options(|c| c.enable_surrogate = true)).unwrap())
    });
    g.finish();
}

fn bench_token_order(c: &mut Criterion) {
    let records = asterix_datagen::amazon_reviews(2_000, 31);
    let token_sets: Vec<Vec<String>> = records
        .iter()
        .filter_map(|r| r.field("summary").as_str().map(word_tokens_distinct))
        .collect();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for ts in &token_sets {
        for t in ts {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
    }
    let freq = TokenOrder::from_counts(counts.clone());
    let arb = TokenOrder::arbitrary(counts.keys().cloned());
    // The work per order is identical; what differs downstream is the
    // candidate-pair count (reported by the `experiments` binary). Here we
    // measure prefix extraction itself and then generating the pairs.
    let pairs = |order: &TokenOrder<String>| -> u64 {
        let mut by_token: HashMap<u32, u64> = HashMap::new();
        for ts in &token_sets {
            for tok in order.prefix(ts, 0.8) {
                *by_token.entry(tok).or_insert(0) += 1;
            }
        }
        by_token.values().map(|n| n * n.saturating_sub(1) / 2).sum()
    };
    let mut g = c.benchmark_group("token_order_candidates");
    g.sample_size(20);
    g.bench_function("frequency_order", |b| b.iter(|| pairs(black_box(&freq))));
    g.bench_function("arbitrary_order", |b| b.iter(|| pairs(black_box(&arb))));
    g.finish();
}

criterion_group!(
    benches,
    bench_pk_sort,
    bench_reuse,
    bench_surrogate,
    bench_token_order
);
criterion_main!(benches);
