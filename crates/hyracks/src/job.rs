//! Job specification: the DAG of physical operators and connectors that
//! the executor instantiates per partition.

use crate::expr::Expr;
use crate::tuple::SortKey;
use asterix_adm::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Operator identifier within a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// How tuples travel from a producer's partitions to a consumer's.
#[derive(Clone, Debug, PartialEq)]
pub enum ConnectorKind {
    /// Partition-local pipeline edge ("Local").
    OneToOne,
    /// Replicate every producer partition's stream to all consumer
    /// partitions ("Broadcast to all nodes").
    Broadcast,
    /// Route each tuple by the stable hash of the given columns ("Hash
    /// repartition").
    Hash(Vec<usize>),
    /// Gather everything at consumer partition 0 (coordinator collection).
    ToOne,
}

/// Aggregate functions for group-by.
#[derive(Clone, Debug, PartialEq)]
pub enum AggSpec {
    /// COUNT(*)
    Count,
    /// SUM of an integer/double column.
    Sum(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
    /// First value seen (used to pick a representative, e.g. `$sim[0]` in
    /// Fig 11 line 49).
    First(usize),
    /// Collect the distinct values of a column into a sorted ordered list
    /// (used to assemble ranked token lists in the three-stage join).
    CollectSortedSet(usize),
}

/// What a secondary-index search verifies enough of to emit candidates
/// (the residual SELECT removes false positives, §4.1.1).
#[derive(Clone, Debug, PartialEq)]
pub enum SearchMeasure {
    /// Jaccard with threshold δ: tokenize the key, T = ceil(δ·|tokens|).
    Jaccard {
        /// Similarity threshold δ ∈ (0, 1].
        delta: f64,
    },
    /// Edit distance with threshold k on an `ngram(n)` index:
    /// T = |grams| − k·n. Corner-case keys (T ≤ 0) emit nothing here —
    /// plans route them to a scan path (Fig 14).
    EditDistance {
        /// Maximum edit distance.
        k: u32,
    },
    /// Exact lookup against a secondary B+-tree (the baseline).
    Exact,
    /// Substring containment on an `ngram(n)` index: a string containing
    /// the pattern must contain every distinct gram of the pattern
    /// (T = number of distinct pattern grams). Fig 13 lists `contains()`
    /// as the second function an n-gram index supports.
    Contains,
}

/// A search key tokenized once at job-build time (§3.3's tokenizers run at
/// compile time for query *constants*): when a probe tuple's key equals
/// `key`, the search uses `tokens` instead of re-tokenizing per partition
/// per tuple. Tokens are produced by `asterix_storage::index_tokens`, the
/// same function the runtime fallback uses, so the two can never disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct PreTokenized {
    /// The constant search key the tokens were derived from.
    pub key: Value,
    /// Its index tokens, shared without copying across partitions.
    pub tokens: Arc<[Value]>,
}

/// How a [`PhysicalOp::FaultInject`] operator fails (test support for the
/// fault-tolerance matrix: both paths must surface as typed errors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// `panic!` inside the operator body; the executor must catch it.
    Panic,
    /// Return an operator error through the normal error path.
    Error,
}

/// A physical operator. Column indices refer to the operator's input
/// tuple; operators that add columns append them on the right.
#[derive(Clone, Debug)]
pub enum PhysicalOp {
    /// Emit a single empty tuple on partition 0 (the constant source that
    /// starts selection plans).
    EmptySource,
    /// Scan the local partition of a dataset → `[pk, record]`.
    DatasetScan {
        /// Dataset to scan.
        dataset: String,
    },
    /// Keep tuples whose predicate is true.
    Select {
        /// Filter predicate over the input tuple.
        predicate: Expr,
    },
    /// Append one computed column per expression.
    Assign {
        /// One appended column per expression, in order.
        exprs: Vec<Expr>,
    },
    /// Keep only the given columns, in order.
    Project {
        /// Input column indices to keep.
        cols: Vec<usize>,
    },
    /// Partition-local sort.
    Sort {
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Hash join: input 0 is built, input 1 probes. Output = left ++ right
    /// (left = input 0).
    HashJoin {
        /// Join-key columns of the build (left) input.
        left_keys: Vec<usize>,
        /// Join-key columns of the probe (right) input.
        right_keys: Vec<usize>,
    },
    /// Nested-loop join: input 0 is materialized, input 1 streams; the
    /// predicate sees left ++ right.
    NestedLoopJoin {
        /// Join predicate over the concatenated tuple.
        predicate: Expr,
    },
    /// Hash group-by: output = group columns ++ aggregate columns.
    HashGroupBy {
        /// Grouping columns.
        keys: Vec<usize>,
        /// Aggregates computed per group.
        aggs: Vec<AggSpec>,
    },
    /// For each input tuple, evaluate `expr` to a list and emit one output
    /// tuple per element: input ++ `[element]` (++ `[position]` if requested —
    /// AQL's `at $i`, 0-based).
    Unnest {
        /// List-valued expression to flatten.
        expr: Expr,
        /// Also append the element's 0-based position.
        with_pos: bool,
    },
    /// Append a running 0-based position per partition (meaningful after a
    /// `ToOne` gather: a global rank).
    StreamPos,
    /// Search a secondary index of `dataset` with the key taken from
    /// `key_col` of each input tuple; emits input ++ `[candidate pk]` per
    /// candidate.
    SecondaryIndexSearch {
        /// Dataset that owns the index.
        dataset: String,
        /// Name of the secondary index to search.
        index: String,
        /// Input column holding the search key.
        key_col: usize,
        /// What the index search verifies before emitting candidates.
        measure: SearchMeasure,
        /// Compile-time tokenization of a constant search key, when the
        /// optimizer could prove the key constant (selection plans).
        pre_tokens: Option<PreTokenized>,
    },
    /// Look up `pk_col` in the dataset's primary index; emits input ++
    /// `[record]` for found keys.
    PrimaryIndexLookup {
        /// Dataset whose primary index is probed.
        dataset: String,
        /// Input column holding the primary key.
        pk_col: usize,
    },
    /// Concatenate all input streams (same arity).
    Union,
    /// Buffer the whole input, then emit (used to materialize shared
    /// subplans, §5.4.2).
    Materialize,
    /// Keep the first `n` tuples per partition.
    Limit {
        /// Per-partition tuple cap.
        n: usize,
    },
    /// Test support: forward tuples, sleeping `micros_per_tuple` per tuple
    /// (a deterministic slow operator for deadline/cancellation tests).
    Throttle {
        /// Sleep per forwarded tuple, in microseconds.
        micros_per_tuple: u64,
    },
    /// Test support: forward tuples, except on `partition`, which fails
    /// (per `mode`) after forwarding at most `after_tuples` tuples.
    FaultInject {
        /// Partition index that fails.
        partition: usize,
        /// Tuples forwarded before the failure triggers.
        after_tuples: u64,
        /// Whether the failure is a panic or a typed error.
        mode: FaultMode,
    },
    /// Collect tuples at the coordinator; a job has exactly one sink.
    ResultSink,
}

impl PhysicalOp {
    /// Short name used in explain output and stats.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::EmptySource => "empty-source",
            PhysicalOp::DatasetScan { .. } => "dataset-scan",
            PhysicalOp::Select { .. } => "select",
            PhysicalOp::Assign { .. } => "assign",
            PhysicalOp::Project { .. } => "project",
            PhysicalOp::Sort { .. } => "sort",
            PhysicalOp::HashJoin { .. } => "hash-join",
            PhysicalOp::NestedLoopJoin { .. } => "nested-loop-join",
            PhysicalOp::HashGroupBy { .. } => "hash-group-by",
            PhysicalOp::Unnest { .. } => "unnest",
            PhysicalOp::StreamPos => "stream-pos",
            PhysicalOp::SecondaryIndexSearch { .. } => "secondary-index-search",
            PhysicalOp::PrimaryIndexLookup { .. } => "primary-index-lookup",
            PhysicalOp::Union => "union",
            PhysicalOp::Materialize => "materialize",
            PhysicalOp::Limit { .. } => "limit",
            PhysicalOp::Throttle { .. } => "throttle",
            PhysicalOp::FaultInject { .. } => "fault-inject",
            PhysicalOp::ResultSink => "result-sink",
        }
    }

    /// How many inputs this operator requires (`None` = one or more).
    pub fn arity(&self) -> Option<usize> {
        match self {
            PhysicalOp::EmptySource | PhysicalOp::DatasetScan { .. } => Some(0),
            PhysicalOp::HashJoin { .. } | PhysicalOp::NestedLoopJoin { .. } => Some(2),
            PhysicalOp::Union => None,
            _ => Some(1),
        }
    }
}

/// An edge: producer → consumer through a connector.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Producer operator.
    pub from: OpId,
    /// Consumer operator.
    pub to: OpId,
    /// Input slot on the consumer (0 = left/build, 1 = right/probe).
    pub input: usize,
    /// How tuples are routed between partitions along this edge.
    pub connector: ConnectorKind,
}

/// A complete job DAG.
#[derive(Clone, Debug, Default)]
pub struct JobSpec {
    /// Operators in insertion order, keyed by id.
    pub ops: Vec<(OpId, PhysicalOp)>,
    /// Edges connecting producers to consumer input slots.
    pub edges: Vec<Edge>,
}

impl JobSpec {
    /// An empty job DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an operator, returning its id.
    pub fn add(&mut self, op: PhysicalOp) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push((id, op));
        id
    }

    /// Connect `from` to input slot `input` of `to`.
    pub fn connect(&mut self, from: OpId, to: OpId, input: usize, connector: ConnectorKind) {
        self.edges.push(Edge {
            from,
            to,
            input,
            connector,
        });
    }

    /// Convenience: one-to-one local edge into slot 0.
    pub fn pipe(&mut self, from: OpId, to: OpId) {
        self.connect(from, to, 0, ConnectorKind::OneToOne);
    }

    /// The operator with id `id`.
    pub fn op(&self, id: OpId) -> &PhysicalOp {
        &self.ops[id.0].1
    }

    /// Incoming edges of `id`, sorted by input slot.
    pub fn inputs_of(&self, id: OpId) -> Vec<&Edge> {
        let mut edges: Vec<&Edge> = self.edges.iter().filter(|e| e.to == id).collect();
        edges.sort_by_key(|e| e.input);
        edges
    }

    /// Outgoing edges of `id`.
    pub fn outputs_of(&self, id: OpId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.from == id).collect()
    }

    /// The single result sink.
    pub fn sink(&self) -> Option<OpId> {
        self.ops
            .iter()
            .find(|(_, op)| matches!(op, PhysicalOp::ResultSink))
            .map(|(id, _)| *id)
    }

    /// Validate the DAG: one sink, correct input arities, contiguous input
    /// slots, acyclicity.
    pub fn validate(&self) -> Result<(), String> {
        let sinks = self
            .ops
            .iter()
            .filter(|(_, op)| matches!(op, PhysicalOp::ResultSink))
            .count();
        if sinks != 1 {
            return Err(format!("job must have exactly one result sink, found {sinks}"));
        }
        // Two edges feeding the same (consumer, slot) would contend for one
        // receiver at runtime; reject the plan up front.
        let mut seen_slots: HashMap<(OpId, usize), ()> = HashMap::new();
        for e in &self.edges {
            if seen_slots.insert((e.to, e.input), ()).is_some() {
                return Err(format!(
                    "{} input slot {} is fed by more than one edge",
                    e.to, e.input
                ));
            }
        }
        for (id, op) in &self.ops {
            let inputs = self.inputs_of(*id);
            match op.arity() {
                Some(n) if inputs.len() != n => {
                    return Err(format!(
                        "{} ({}) requires {n} inputs, has {}",
                        id,
                        op.name(),
                        inputs.len()
                    ))
                }
                None if inputs.is_empty() => {
                    return Err(format!("{} ({}) requires at least one input", id, op.name()))
                }
                _ => {}
            }
            for (slot, e) in inputs.iter().enumerate() {
                if e.input != slot {
                    return Err(format!(
                        "{} input slots must be contiguous from 0, got {}",
                        id, e.input
                    ));
                }
            }
            if !matches!(op, PhysicalOp::ResultSink) && self.outputs_of(*id).is_empty() {
                return Err(format!("{} ({}) output is not consumed", id, op.name()));
            }
        }
        // Cycle check via Kahn's algorithm.
        let mut indeg: HashMap<OpId, usize> = self.ops.iter().map(|(id, _)| (*id, 0)).collect();
        for e in &self.edges {
            *indeg.get_mut(&e.to).ok_or("edge to unknown op")? += 1;
            if !indeg.contains_key(&e.from) {
                return Err("edge from unknown op".into());
            }
        }
        let mut queue: Vec<OpId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut seen = 0;
        while let Some(id) = queue.pop() {
            seen += 1;
            for e in self.outputs_of(id) {
                let d = indeg.get_mut(&e.to).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(e.to);
                }
            }
        }
        if seen != self.ops.len() {
            return Err("job graph contains a cycle".into());
        }
        Ok(())
    }

    /// Count operators by name (Fig 15's operator-count comparison).
    pub fn operator_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for (_, op) in &self.ops {
            *counts.entry(op.name()).or_insert(0) += 1;
        }
        let mut out: Vec<(&'static str, usize)> = counts.into_iter().collect();
        out.sort();
        out
    }
}

/// Build the constant tuple source for selection plans: EmptySource →
/// Assign(constants). Returns (source id, assign id).
pub fn constant_source(job: &mut JobSpec, constants: Vec<Value>) -> (OpId, OpId) {
    let src = job.add(PhysicalOp::EmptySource);
    let assign = job.add(PhysicalOp::Assign {
        exprs: constants.into_iter().map(Expr::Const).collect(),
    });
    job.pipe(src, assign);
    (src, assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_job() -> JobSpec {
        let mut j = JobSpec::new();
        let scan = j.add(PhysicalOp::DatasetScan {
            dataset: "d".into(),
        });
        let sink = j.add(PhysicalOp::ResultSink);
        j.connect(scan, sink, 0, ConnectorKind::ToOne);
        j
    }

    #[test]
    fn valid_minimal_job() {
        assert_eq!(mini_job().validate(), Ok(()));
    }

    #[test]
    fn missing_sink_rejected() {
        let mut j = JobSpec::new();
        j.add(PhysicalOp::EmptySource);
        assert!(j.validate().is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut j = JobSpec::new();
        let scan = j.add(PhysicalOp::DatasetScan {
            dataset: "d".into(),
        });
        let join = j.add(PhysicalOp::HashJoin {
            left_keys: vec![0],
            right_keys: vec![0],
        });
        let sink = j.add(PhysicalOp::ResultSink);
        j.pipe(scan, join);
        j.connect(join, sink, 0, ConnectorKind::ToOne);
        assert!(j.validate().unwrap_err().contains("requires 2 inputs"));
    }

    #[test]
    fn unconsumed_output_rejected() {
        let mut j = mini_job();
        j.add(PhysicalOp::EmptySource);
        assert!(j.validate().unwrap_err().contains("not consumed"));
    }

    #[test]
    fn cycle_rejected() {
        let mut j = JobSpec::new();
        let a = j.add(PhysicalOp::Select {
            predicate: Expr::lit(true),
        });
        let b = j.add(PhysicalOp::Select {
            predicate: Expr::lit(true),
        });
        let sink = j.add(PhysicalOp::ResultSink);
        j.pipe(a, b);
        j.pipe(b, a);
        j.connect(b, sink, 0, ConnectorKind::ToOne);
        assert!(j.validate().is_err());
    }

    #[test]
    fn double_consumed_slot_rejected() {
        let mut j = JobSpec::new();
        let a = j.add(PhysicalOp::EmptySource);
        let b = j.add(PhysicalOp::EmptySource);
        let sink = j.add(PhysicalOp::ResultSink);
        j.connect(a, sink, 0, ConnectorKind::ToOne);
        j.connect(b, sink, 0, ConnectorKind::ToOne);
        assert!(j.validate().unwrap_err().contains("more than one edge"));
    }

    #[test]
    fn operator_counts() {
        let j = mini_job();
        let counts = j.operator_counts();
        assert!(counts.contains(&("dataset-scan", 1)));
        assert!(counts.contains(&("result-sink", 1)));
    }
}
