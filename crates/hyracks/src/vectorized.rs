//! Vectorized verification kernels for the batch-at-a-time SELECT path.
//!
//! The verify step of an index-accelerated similarity query evaluates the
//! *same* predicate over every candidate row: `similarity-jaccard(
//! word-tokens(a), word-tokens(b)) >= δ` or `edit-distance(a, b) <= k`.
//! The row path re-tokenizes, re-sorts and re-compares [`Value`] trees per
//! candidate. This module compiles those predicate shapes once per
//! operator instance into a [`VerifyKernel`] that:
//!
//! * interns word tokens into dense `u32` ids and caches the token *set*
//!   per distinct input string, so a probe string that fans out to many
//!   candidates is tokenized once,
//! * counts set intersections with a cached [`TokenBitset`] for the
//!   repeating (probe) side and galloping merge otherwise,
//! * runs the banded edit-distance check over cached pre-decoded char
//!   buffers with one reusable [`EdScratch`] per instance.
//!
//! Conjunctions compile too: `And(sim >= δ, residual…)` vectorizes the
//! similarity conjunct and evaluates the residual conjuncts with a
//! column-aware mirror of [`Expr::eval`] (`eval_batch_expr`) that reads
//! cells in place instead of materializing (deep-cloning) each row — the
//! shape index-nested-loop join verifies take after predicate pushdown.
//!
//! Every row whose argument types fall outside the vectorized fast path
//! (lists, mixed types, out-of-bounds columns) is re-evaluated through the
//! interpreted expression path, so acceptance, `NULL` semantics and
//! *errors* are bit-identical to the scalar implementation. A kernel only
//! compiles for the recognized shapes; anything else stays on the row
//! path entirely.

use crate::error::OpError;
use crate::expr::{sql_compare, CmpOp, Expr};
use crate::tuple::{Batch, BatchSlice, Column};
use asterix_adm::Value;
use asterix_simfn::{
    edit_distance_check_chars, edit_distance_check_chars_scalar, intersection_size_u32,
    jaccard_from_counts, word_tokens, EdScratch, FunctionRegistry, FxHashMap, TokenBitset,
};
use std::sync::Arc;

/// Distinct input strings whose token sets / char buffers one kernel
/// instance caches (LRU).
const KERNEL_CACHE_CAPACITY: usize = 4096;

/// A verify-predicate argument: a column, a field path rooted at a
/// column, or a literal.
enum ArgExpr {
    Col(usize),
    Path(usize, Vec<String>),
    Lit(Value),
}

/// One evaluated argument cell, borrowed from the batch when possible.
enum Cell<'a> {
    Str(&'a str),
    Val(&'a Value),
    Owned(Value),
    /// Column index beyond the batch width: the row path reports a typed
    /// error for this, so the kernel must fall back.
    OutOfBounds,
}

impl ArgExpr {
    fn compile(e: &Expr) -> Option<ArgExpr> {
        match e {
            Expr::Column(i) => Some(ArgExpr::Col(*i)),
            Expr::Const(v) => Some(ArgExpr::Lit(v.clone())),
            Expr::Field(inner, name) => {
                let mut path = vec![name.clone()];
                let mut cur = inner.as_ref();
                loop {
                    match cur {
                        Expr::Field(e2, n2) => {
                            path.push(n2.clone());
                            cur = e2.as_ref();
                        }
                        Expr::Column(i) => {
                            path.reverse();
                            return Some(ArgExpr::Path(*i, path));
                        }
                        _ => return None,
                    }
                }
            }
            _ => None,
        }
    }

    fn cell<'a>(&'a self, batch: &'a Batch, row: usize) -> Cell<'a> {
        match self {
            ArgExpr::Col(i) => match batch.col(*i) {
                None => Cell::OutOfBounds,
                Some(col @ Column::Str { .. }) => match col.get_str(row) {
                    Some(s) => Cell::Str(s),
                    None => Cell::OutOfBounds,
                },
                Some(col @ Column::Int64(_)) => Cell::Owned(col.value(row)),
                Some(col @ (Column::Values(_) | Column::Shared(_))) => match col.get_value(row) {
                    Some(v) => Cell::Val(v),
                    None => Cell::OutOfBounds,
                },
            },
            ArgExpr::Path(i, path) => match batch.col(*i) {
                None => Cell::OutOfBounds,
                Some(col @ (Column::Values(_) | Column::Shared(_))) => {
                    let Some(mut cur) = col.get_value(row) else {
                        return Cell::OutOfBounds;
                    };
                    for p in path {
                        cur = cur.field_path(p);
                    }
                    Cell::Val(cur)
                }
                Some(other) => {
                    // Field access on a scalar base yields Missing, exactly
                    // as the row path's open-record semantics do.
                    let mut cur = other.value(row);
                    for p in path {
                        cur = cur.field_path(p).clone();
                    }
                    Cell::Owned(cur)
                }
            },
            ArgExpr::Lit(v) => Cell::Val(v),
        }
    }
}

/// The compiled shape of a recognized verify predicate.
enum VerifyPlan {
    /// `similarity-jaccard(word-tokens(a), word-tokens(b)) >=|> δ`
    Jaccard {
        a: ArgExpr,
        b: ArgExpr,
        op: CmpOp,
        delta: f64,
    },
    /// `edit-distance(a, b) <=|< k`
    EditDistance {
        a: ArgExpr,
        b: ArgExpr,
        op: CmpOp,
        k: i64,
    },
    /// `edit-distance-check(a, b, k)` used directly as the predicate.
    EdCheck { a: ArgExpr, b: ArgExpr, k: u32 },
}

/// Word-token sets interned to dense `u32` ids, cached per input string.
#[derive(Default)]
struct TokenInterner {
    ids: FxHashMap<String, u32>,
    sets: FxHashMap<String, (Arc<[u32]>, u64)>,
    clock: u64,
}

impl TokenInterner {
    /// The distinct, sorted token-id set of `s` (cached).
    fn token_set(&mut self, s: &str) -> Arc<[u32]> {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(slot) = self.sets.get_mut(s) {
            slot.1 = stamp;
            return slot.0.clone();
        }
        let mut ids: Vec<u32> = Vec::new();
        for tok in word_tokens(s) {
            let next = self.ids.len() as u32;
            ids.push(*self.ids.entry(tok).or_insert(next));
        }
        ids.sort_unstable();
        ids.dedup();
        let set: Arc<[u32]> = ids.into();
        if self.sets.len() >= KERNEL_CACHE_CAPACITY {
            evict_lru(&mut self.sets);
        }
        self.sets.insert(s.to_string(), (set.clone(), stamp));
        set
    }

    /// Current id universe (bitsets built now cover every interned id).
    fn universe(&self) -> usize {
        self.ids.len()
    }
}

/// Evict the least-recently-stamped entry of an LRU map.
fn evict_lru<V>(map: &mut FxHashMap<String, (V, u64)>) {
    if let Some(victim) = map
        .iter()
        .min_by_key(|(_, (_, stamp))| *stamp)
        .map(|(k, _)| k.clone())
    {
        map.remove(&victim);
    }
}

/// Three-valued result of one conjunct, mirroring what [`Expr::eval`]
/// would have produced (`Boolean(true)` / `Boolean(false)` / unknown).
#[derive(Clone, Copy, PartialEq)]
enum Tri {
    True,
    False,
    Null,
}

fn tri_of(v: &Value) -> Tri {
    match v {
        Value::Boolean(true) => Tri::True,
        Value::Boolean(false) => Tri::False,
        _ => Tri::Null,
    }
}

/// One conjunct of the compiled predicate: vectorized when its shape is
/// recognized (keeping the original expression for per-row fallback),
/// interpreted in place otherwise.
enum Conjunct {
    Fast { plan: VerifyPlan, expr: Expr },
    Slow(Expr),
}

/// A compiled verify predicate plus its per-instance caches. Conjuncts
/// and caches are separate fields so evaluating a plan that borrows its
/// literal arguments can still update the caches.
pub struct VerifyKernel {
    conjuncts: Vec<Conjunct>,
    state: KernelState,
}

/// The mutable caches of one kernel instance.
#[derive(Default)]
struct KernelState {
    interner: TokenInterner,
    /// Bitset of the last probe-side token set, reused while consecutive
    /// rows share the same (Arc-identical) probe set.
    probe: Option<(Arc<[u32]>, TokenBitset)>,
    /// Previous row's token sets, used to detect which side repeats (the
    /// probe constant in selections, the outer key in joins).
    prev_a: Option<Arc<[u32]>>,
    prev_b: Option<Arc<[u32]>>,
    /// Decoded char buffers per distinct input string (LRU).
    chars: FxHashMap<String, (Arc<[char]>, u64)>,
    chars_clock: u64,
    scratch: EdScratch,
    /// Allow the Myers bit-parallel edit-distance dispatch; `false` pins
    /// the scalar banded DP (the `disable_kernels` switch).
    use_bitparallel: bool,
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// `word-tokens(inner)` → compiled `inner`.
fn tokens_arg(e: &Expr) -> Option<ArgExpr> {
    match e {
        Expr::Call(name, args) if name == "word-tokens" && args.len() == 1 => {
            ArgExpr::compile(&args[0])
        }
        _ => None,
    }
}

fn compile_cmp(op: CmpOp, call: &Expr, konst: &Expr) -> Option<VerifyPlan> {
    let Expr::Const(cv) = konst else { return None };
    let Expr::Call(name, args) = call else {
        return None;
    };
    match name.as_str() {
        "similarity-jaccard" if args.len() == 2 && matches!(op, CmpOp::Ge | CmpOp::Gt) => {
            Some(VerifyPlan::Jaccard {
                a: tokens_arg(&args[0])?,
                b: tokens_arg(&args[1])?,
                op,
                delta: cv.as_f64()?,
            })
        }
        "edit-distance" if args.len() == 2 && matches!(op, CmpOp::Le | CmpOp::Lt) => {
            let Value::Int64(k) = cv else { return None };
            Some(VerifyPlan::EditDistance {
                a: ArgExpr::compile(&args[0])?,
                b: ArgExpr::compile(&args[1])?,
                op,
                k: *k,
            })
        }
        _ => None,
    }
}

/// Compile one expression into a vectorized plan when it matches a
/// recognized bare verify shape.
fn compile_plan(pred: &Expr) -> Option<VerifyPlan> {
    match pred {
        Expr::Cmp(op, l, r) => {
            compile_cmp(*op, l, r).or_else(|| compile_cmp(flip(*op), r, l))
        }
        Expr::Call(name, args) if name == "edit-distance-check" && args.len() == 3 => {
            let Expr::Const(Value::Int64(k)) = &args[2] else {
                return None;
            };
            if *k < 0 || *k > u32::MAX as i64 {
                return None;
            }
            Some(VerifyPlan::EdCheck {
                a: ArgExpr::compile(&args[0])?,
                b: ArgExpr::compile(&args[1])?,
                k: *k as u32,
            })
        }
        _ => None,
    }
}

impl VerifyKernel {
    /// Compile `pred` when it is a recognized verify shape, or a
    /// conjunction containing at least one. Bit-parallel edit-distance
    /// dispatch is enabled; use [`VerifyKernel::compile_with`] to pin the
    /// scalar kernels.
    pub fn compile(pred: &Expr) -> Option<VerifyKernel> {
        Self::compile_with(pred, true)
    }

    /// [`VerifyKernel::compile`] with the Myers bit-parallel edit-distance
    /// dispatch switchable: `use_bitparallel = false` pins the scalar
    /// banded DP (the `disable_kernels` benchmark baseline). Acceptance is
    /// identical either way.
    pub fn compile_with(pred: &Expr, use_bitparallel: bool) -> Option<VerifyKernel> {
        let conjuncts = match pred {
            Expr::And(parts) => {
                let cs: Vec<Conjunct> = parts
                    .iter()
                    .map(|p| match compile_plan(p) {
                        Some(plan) => Conjunct::Fast {
                            plan,
                            expr: p.clone(),
                        },
                        None => Conjunct::Slow(p.clone()),
                    })
                    .collect();
                if !cs.iter().any(|c| matches!(c, Conjunct::Fast { .. })) {
                    return None;
                }
                cs
            }
            _ => vec![Conjunct::Fast {
                plan: compile_plan(pred)?,
                expr: pred.clone(),
            }],
        };
        Some(VerifyKernel {
            conjuncts,
            state: KernelState {
                use_bitparallel,
                ..KernelState::default()
            },
        })
    }

    /// Evaluate the predicate over every visible row of `slice`, returning
    /// the accepted positions (indices into the slice) in order.
    pub fn eval_slice(
        &mut self,
        slice: &BatchSlice,
        reg: &FunctionRegistry,
    ) -> Result<Vec<u32>, OpError> {
        let batch = slice.batch.as_ref();
        let bp_before = self.state.scratch.bitparallel_calls();
        let mut keep = Vec::new();
        for pos in 0..slice.len() {
            let row = slice.row_index(pos);
            // Mirror `Expr::eval`'s And loop exactly: evaluate conjuncts
            // left to right, short-circuit on the first false, track
            // unknowns, and propagate the first error eagerly.
            let mut accept = true;
            for c in &self.conjuncts {
                let tri = match c {
                    Conjunct::Fast { plan, expr } => {
                        match self.state.eval_plan(plan, batch, row) {
                            Some(t) => t,
                            // Outside the vectorized domain: the
                            // interpreted path decides (and reports
                            // errors) exactly as the scalar operator
                            // would.
                            None => tri_of(eval_batch_expr(expr, batch, row, reg)?.as_value()),
                        }
                    }
                    Conjunct::Slow(e) => tri_of(eval_batch_expr(e, batch, row, reg)?.as_value()),
                };
                match tri {
                    Tri::True => {}
                    Tri::False => {
                        accept = false;
                        break;
                    }
                    Tri::Null => accept = false,
                }
            }
            if accept {
                keep.push(pos as u32);
            }
        }
        asterix_storage::profile::record_bitparallel_ed_calls(
            self.state.scratch.bitparallel_calls() - bp_before,
        );
        Ok(keep)
    }
}

impl KernelState {
    /// Vectorized per-row decision; `None` means "fall back to the
    /// interpreted path". The returned [`Tri`] matches the three-valued
    /// result the interpreter would compute for the same conjunct.
    fn eval_plan(&mut self, plan: &VerifyPlan, batch: &Batch, row: usize) -> Option<Tri> {
        match plan {
            VerifyPlan::Jaccard { a, b, op, delta } => {
                let (op, delta) = (*op, *delta);
                let sa = side_str(a.cell(batch, row))?;
                let sb = side_str(b.cell(batch, row))?;
                let set_a = match sa {
                    Some(s) => self.interner.token_set(s),
                    None => Arc::from(Vec::new()),
                };
                let set_b = match sb {
                    Some(s) => self.interner.token_set(s),
                    None => Arc::from(Vec::new()),
                };
                let inter = self.intersection(&set_a, &set_b);
                let sim = jaccard_from_counts(set_a.len(), set_b.len(), inter);
                // `sql_compare` on two doubles is `partial_cmp`; None
                // (NaN) makes the comparison unknown.
                Some(match sim.partial_cmp(&delta) {
                    Some(ord) if op.test(ord) => Tri::True,
                    Some(_) => Tri::False,
                    None => Tri::Null,
                })
            }
            VerifyPlan::EditDistance { a, b, op, k } => {
                // `< k` means `<= k - 1`; saturate so `< i64::MIN` simply
                // stays an always-false threshold instead of overflowing.
                let threshold = if *op == CmpOp::Lt {
                    k.saturating_sub(1)
                } else {
                    *k
                };
                let sa = side_str(a.cell(batch, row))?;
                let sb = side_str(b.cell(batch, row))?;
                let (Some(sa), Some(sb)) = (sa, sb) else {
                    // edit-distance(unknown, _) is NULL; NULL <= k is
                    // unknown.
                    return Some(Tri::Null);
                };
                if threshold < 0 {
                    return Some(Tri::False);
                }
                let ca = self.cached_chars(sa);
                let cb = self.cached_chars(sb);
                // Any actual edit distance fits u32 (it is bounded by the
                // char lengths), so clamping an enormous threshold keeps
                // the check's outcome unchanged.
                let t = threshold.min(u32::MAX as i64) as u32;
                let within = self.ed_check(&ca, &cb, t).is_some();
                Some(if within { Tri::True } else { Tri::False })
            }
            VerifyPlan::EdCheck { a, b, k } => {
                let k = *k;
                let sa = side_str(a.cell(batch, row))?;
                let sb = side_str(b.cell(batch, row))?;
                let (Some(sa), Some(sb)) = (sa, sb) else {
                    // edit-distance-check(unknown, _, k) is false.
                    return Some(Tri::False);
                };
                let ca = self.cached_chars(sa);
                let cb = self.cached_chars(sb);
                let within = self.ed_check(&ca, &cb, k).is_some();
                Some(if within { Tri::True } else { Tri::False })
            }
        }
    }

    /// Threshold-checked edit distance through the instance scratch,
    /// honouring the bit-parallel switch.
    fn ed_check(&mut self, a: &[char], b: &[char], k: u32) -> Option<u32> {
        if self.use_bitparallel {
            edit_distance_check_chars(a, b, k, &mut self.scratch)
        } else {
            edit_distance_check_chars_scalar(a, b, k, &mut self.scratch)
        }
    }

    /// Distinct-token intersection size. The side that repeated from the
    /// previous row (the probe constant in selections, the outer key in
    /// joins) gets a cached bitset; without a repeating side, a galloping
    /// merge answers directly.
    fn intersection(&mut self, a: &Arc<[u32]>, b: &Arc<[u32]>) -> usize {
        let a_repeats = self.prev_a.as_ref().is_some_and(|p| Arc::ptr_eq(p, a));
        let b_repeats = self.prev_b.as_ref().is_some_and(|p| Arc::ptr_eq(p, b));
        self.prev_a = Some(Arc::clone(a));
        self.prev_b = Some(Arc::clone(b));
        let (probe, scan) = if a_repeats {
            (a, b)
        } else if b_repeats {
            (b, a)
        } else {
            return intersection_size_u32(a, b);
        };
        let cached = matches!(&self.probe, Some((p, _)) if Arc::ptr_eq(p, probe));
        if !cached {
            // Ids past the build-time universe cannot be members of the
            // probe set, so a bitset built against today's universe stays
            // correct as the interner grows: `contains` is simply false.
            let bits = TokenBitset::build(probe, self.interner.universe().max(1));
            self.probe = Some((Arc::clone(probe), bits));
        }
        match &self.probe {
            Some((_, bits)) => scan.iter().filter(|&&id| bits.contains(id)).count(),
            None => 0,
        }
    }

    /// Decoded chars of `s`, cached per distinct string (LRU).
    fn cached_chars(&mut self, s: &str) -> Arc<[char]> {
        self.chars_clock += 1;
        let stamp = self.chars_clock;
        if let Some(slot) = self.chars.get_mut(s) {
            slot.1 = stamp;
            return slot.0.clone();
        }
        let decoded: Arc<[char]> = s.chars().collect();
        if self.chars.len() >= KERNEL_CACHE_CAPACITY {
            evict_lru(&mut self.chars);
        }
        self.chars.insert(s.to_string(), (decoded.clone(), stamp));
        decoded
    }
}

/// Result of [`eval_batch_expr`]: borrowed straight from the batch (or
/// the expression's constants) when possible, owned otherwise.
enum EvalOut<'a> {
    Ref(&'a Value),
    Owned(Value),
}

impl EvalOut<'_> {
    fn as_value(&self) -> &Value {
        match self {
            EvalOut::Ref(v) => v,
            EvalOut::Owned(v) => v,
        }
    }

    fn into_value(self) -> Value {
        match self {
            EvalOut::Ref(v) => v.clone(),
            EvalOut::Owned(v) => v,
        }
    }
}

/// Evaluate one expression against one row of a [`Batch`], returning an
/// owned value. Thin wrapper over [`eval_batch_expr`] for operators
/// (assign) that need the result as a cell rather than a predicate.
pub(crate) fn eval_expr_on_batch(
    e: &Expr,
    batch: &Batch,
    row: usize,
    reg: &FunctionRegistry,
) -> Result<Value, String> {
    Ok(eval_batch_expr(e, batch, row, reg)?.into_value())
}

/// Column-aware mirror of [`Expr::eval`]: evaluates `e` against one row
/// of a [`Batch`] without materializing the row as a tuple, borrowing
/// record cells in place so field access never deep-clones the record.
/// Results and errors are identical to `e.eval(&batch.row(row), reg)`
/// for every expression shape (pinned by the parity tests below).
fn eval_batch_expr<'a>(
    e: &'a Expr,
    batch: &'a Batch,
    row: usize,
    reg: &FunctionRegistry,
) -> Result<EvalOut<'a>, String> {
    Ok(match e {
        Expr::Column(i) => match batch.col(*i) {
            None => {
                return Err(format!(
                    "column {i} out of range (width {})",
                    batch.width()
                ))
            }
            Some(Column::Values(vs)) => EvalOut::Ref(&vs[row]),
            Some(Column::Shared(vs)) => EvalOut::Ref(&vs[row]),
            Some(col) => EvalOut::Owned(col.value(row)),
        },
        Expr::Const(v) => EvalOut::Ref(v),
        Expr::Field(inner, name) => match eval_batch_expr(inner, batch, row, reg)? {
            EvalOut::Ref(v) => EvalOut::Ref(v.field_path(name)),
            EvalOut::Owned(v) => EvalOut::Owned(v.field_path(name).clone()),
        },
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_batch_expr(a, batch, row, reg)?.into_value());
            }
            EvalOut::Owned(reg.call(name, &vals)?)
        }
        Expr::Cmp(op, a, b) => {
            let va = eval_batch_expr(a, batch, row, reg)?;
            let vb = eval_batch_expr(b, batch, row, reg)?;
            EvalOut::Owned(match sql_compare(va.as_value(), vb.as_value()) {
                Some(ord) => Value::Boolean(op.test(ord)),
                None => Value::Null,
            })
        }
        Expr::And(parts) => {
            let mut saw_null = false;
            for p in parts {
                match eval_batch_expr(p, batch, row, reg)?.as_value() {
                    Value::Boolean(false) => return Ok(EvalOut::Owned(Value::Boolean(false))),
                    Value::Boolean(true) => {}
                    _ => saw_null = true,
                }
            }
            EvalOut::Owned(if saw_null {
                Value::Null
            } else {
                Value::Boolean(true)
            })
        }
        Expr::Or(parts) => {
            let mut saw_null = false;
            for p in parts {
                match eval_batch_expr(p, batch, row, reg)?.as_value() {
                    Value::Boolean(true) => return Ok(EvalOut::Owned(Value::Boolean(true))),
                    Value::Boolean(false) => {}
                    _ => saw_null = true,
                }
            }
            EvalOut::Owned(if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            })
        }
        Expr::Not(inner) => EvalOut::Owned(
            match eval_batch_expr(inner, batch, row, reg)?.as_value() {
                Value::Boolean(b) => Value::Boolean(!b),
                _ => Value::Null,
            },
        ),
        Expr::RecordCtor(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (k, fe) in fields {
                out.push((k.clone(), eval_batch_expr(fe, batch, row, reg)?.into_value()));
            }
            EvalOut::Owned(Value::record(out))
        }
        Expr::ListCtor(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval_batch_expr(item, batch, row, reg)?.into_value());
            }
            EvalOut::Owned(Value::OrderedList(out))
        }
    })
}

/// Classify one side for the string kernels: `Some(Some(s))` = a string,
/// `Some(None)` = null/missing (handled in-kernel), `None` = fall back.
fn side_str(cell: Cell<'_>) -> Option<Option<&str>> {
    match cell {
        Cell::Str(s) => Some(Some(s)),
        Cell::Val(Value::String(s)) => Some(Some(s)),
        Cell::Val(v) if v.is_unknown() => Some(None),
        Cell::Owned(v) if v.is_unknown() => Some(None),
        // Owned strings would dangle a borrow; they only arise from field
        // paths over scalar columns, which produce Missing anyway. Any
        // other type (lists, records, ints) goes through the row path.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use asterix_adm::record;
    use std::sync::Arc;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    fn jaccard_pred(op: CmpOp, delta: f64) -> Expr {
        Expr::cmp(
            op,
            Expr::call(
                "similarity-jaccard",
                vec![
                    Expr::call("word-tokens", vec![Expr::col(0).field("summary")]),
                    Expr::call("word-tokens", vec![Expr::lit("great product value")]),
                ],
            ),
            Expr::lit(delta),
        )
    }

    fn ed_pred(op: CmpOp, k: i64) -> Expr {
        Expr::cmp(
            op,
            Expr::call("edit-distance", vec![Expr::col(1), Expr::lit("marla")]),
            Expr::lit(k),
        )
    }

    fn sample_slice() -> BatchSlice {
        let rows: Vec<Tuple> = vec![
            vec![record! {"summary" => "great product"}, Value::from("maria")],
            vec![record! {"summary" => "bad value"}, Value::from("carla")],
            vec![record! {"summary" => "great product value"}, Value::from("x")],
            vec![Value::Null, Value::Null],
            vec![record! {"other" => 1i64}, Value::from("marla")],
        ];
        match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            crate::tuple::Frame::Rows(_) => panic!("expected batch"),
        }
    }

    fn row_path(pred: &Expr, slice: &BatchSlice) -> Vec<u32> {
        let reg = reg();
        (0..slice.len())
            .filter(|&p| pred.eval(&slice.row(p), &reg).unwrap().is_true())
            .map(|p| p as u32)
            .collect()
    }

    #[test]
    fn jaccard_kernel_matches_row_path() {
        let slice = sample_slice();
        for (op, delta) in [
            (CmpOp::Ge, 0.5),
            (CmpOp::Ge, 0.0),
            (CmpOp::Gt, 0.0),
            (CmpOp::Ge, 1.0),
        ] {
            let pred = jaccard_pred(op, delta);
            let mut k = VerifyKernel::compile(&pred).expect("compiles");
            let got = k.eval_slice(&slice, &reg()).unwrap();
            assert_eq!(got, row_path(&pred, &slice), "op {op:?} delta {delta}");
        }
    }

    #[test]
    fn edit_distance_kernel_matches_row_path() {
        let slice = sample_slice();
        for (op, k) in [
            (CmpOp::Le, 2),
            (CmpOp::Le, 0),
            (CmpOp::Lt, 3),
            (CmpOp::Lt, 0),
            (CmpOp::Le, -1),
        ] {
            let pred = ed_pred(op, k);
            let mut kern = VerifyKernel::compile(&pred).expect("compiles");
            let got = kern.eval_slice(&slice, &reg()).unwrap();
            assert_eq!(got, row_path(&pred, &slice), "op {op:?} k {k}");
        }
    }

    #[test]
    fn mirrored_constant_on_left_compiles_and_matches() {
        // `0.5 <= similarity-jaccard(...)` is the same predicate mirrored.
        let slice = sample_slice();
        let pred = Expr::cmp(
            CmpOp::Le,
            Expr::lit(0.5),
            Expr::call(
                "similarity-jaccard",
                vec![
                    Expr::call("word-tokens", vec![Expr::col(0).field("summary")]),
                    Expr::call("word-tokens", vec![Expr::lit("great product value")]),
                ],
            ),
        );
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&pred, &slice));
    }

    #[test]
    fn edit_distance_check_call_matches_row_path() {
        let slice = sample_slice();
        let pred = Expr::call(
            "edit-distance-check",
            vec![Expr::col(1), Expr::lit("marla"), Expr::lit(1i64)],
        );
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&pred, &slice));
        // Negative k must NOT compile: the row path reports a typed error.
        let bad = Expr::call(
            "edit-distance-check",
            vec![Expr::col(1), Expr::lit("marla"), Expr::lit(-1i64)],
        );
        assert!(VerifyKernel::compile(&bad).is_none());
    }

    #[test]
    fn conjunction_with_residual_matches_row_path() {
        // The index-NL join verify shape after pushdown: And(sim >= δ,
        // residual cmp). The sim conjunct vectorizes, the residual is
        // interpreted per row over the batch.
        let slice = sample_slice();
        for residual in [
            Expr::cmp(CmpOp::Ne, Expr::col(1), Expr::lit("maria")),
            Expr::cmp(CmpOp::Lt, Expr::col(0).field("nosuch"), Expr::lit(1i64)), // NULL cmp
            Expr::lit(true),
            Expr::lit(false),
        ] {
            let pred = Expr::And(vec![jaccard_pred(CmpOp::Ge, 0.3), residual.clone()]);
            let mut k = VerifyKernel::compile(&pred).expect("conjunction compiles");
            let got = k.eval_slice(&slice, &reg()).unwrap();
            assert_eq!(got, row_path(&pred, &slice), "residual {residual:?}");
            // Mirror order: residual first, kernel conjunct second.
            let pred = Expr::And(vec![residual.clone(), jaccard_pred(CmpOp::Ge, 0.3)]);
            let mut k = VerifyKernel::compile(&pred).expect("conjunction compiles");
            let got = k.eval_slice(&slice, &reg()).unwrap();
            assert_eq!(got, row_path(&pred, &slice), "residual-first {residual:?}");
        }
    }

    #[test]
    fn conjunction_short_circuits_errors_like_interpreter() {
        // Row 0 fails the sim conjunct; the erroring residual after it
        // must NOT run for that row (And short-circuits on false), but
        // must error on rows that pass the sim conjunct — exactly the
        // interpreter's behaviour.
        let rows: Vec<Tuple> = vec![
            vec![record! {"summary" => "zzz"}, Value::from("x")],
            vec![record! {"summary" => "great product value"}, Value::from("y")],
        ];
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let erroring = Expr::call("edit-distance", vec![Expr::col(1), Expr::col(99)]);
        let pred = Expr::And(vec![jaccard_pred(CmpOp::Ge, 0.9), erroring]);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let kernel_result = k.eval_slice(&slice, &reg());
        let mut interp_result = Ok(Vec::new());
        for p in 0..slice.len() {
            match pred.eval(&slice.row(p), &reg()) {
                Ok(v) => {
                    if v.is_true() {
                        interp_result.as_mut().unwrap().push(p as u32);
                    }
                }
                Err(e) => {
                    interp_result = Err(e);
                    break;
                }
            }
        }
        match (kernel_result, interp_result) {
            (Err(_), Err(_)) => {}
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (a, b) => panic!("kernel {a:?} vs interpreter {b:?}"),
        }
        // Only the narrowed first row: the false sim conjunct short
        // circuits, so no error at all.
        let only_first = sample_slice(); // fresh kernel state per slice
        let _ = only_first;
        let rows: Vec<Tuple> = vec![vec![record! {"summary" => "zzz"}, Value::from("x")]];
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let erroring = Expr::call("edit-distance", vec![Expr::col(1), Expr::col(99)]);
        let pred = Expr::And(vec![jaccard_pred(CmpOp::Ge, 0.9), erroring]);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        assert_eq!(k.eval_slice(&slice, &reg()).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn all_slow_conjunctions_do_not_compile() {
        let pred = Expr::And(vec![
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64)),
            Expr::lit(true),
        ]);
        assert!(VerifyKernel::compile(&pred).is_none());
    }

    #[test]
    fn eval_batch_expr_mirrors_interpreter() {
        // Every Expr variant over every row: the column-aware evaluator
        // must agree with Expr::eval on the materialized tuple, errors
        // included.
        let slice = sample_slice();
        let registry = reg();
        let exprs = vec![
            Expr::col(0),
            Expr::col(1),
            Expr::col(7), // out of range → error
            Expr::lit("const"),
            Expr::col(0).field("summary"),
            Expr::col(0).field("summary").field("deeper"), // field of scalar → Missing
            Expr::col(1).field("nosuch"),
            Expr::call("word-tokens", vec![Expr::col(0).field("summary")]),
            Expr::call("edit-distance", vec![Expr::col(1), Expr::lit("maria")]),
            Expr::call("no-such-fn", vec![]), // unknown function → error
            Expr::cmp(CmpOp::Le, Expr::col(1), Expr::lit("m")),
            Expr::cmp(CmpOp::Eq, Expr::col(0).field("nosuch"), Expr::lit(1i64)),
            Expr::And(vec![
                Expr::cmp(CmpOp::Ne, Expr::col(1), Expr::lit("x")),
                Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::lit("a")),
            ]),
            Expr::Or(vec![
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit("maria")),
                Expr::cmp(CmpOp::Eq, Expr::col(0).field("nosuch"), Expr::lit(1i64)),
            ]),
            Expr::Not(Box::new(Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit("x")))),
            Expr::RecordCtor(vec![
                ("a".into(), Expr::col(1)),
                ("b".into(), Expr::col(0).field("summary")),
            ]),
            Expr::ListCtor(vec![Expr::col(1), Expr::lit(1i64)]),
        ];
        for e in &exprs {
            for pos in 0..slice.len() {
                let row = slice.row_index(pos);
                let batch_result =
                    eval_batch_expr(e, slice.batch.as_ref(), row, &registry).map(|o| o.into_value());
                let interp_result = e.eval(&slice.row(pos), &registry);
                assert_eq!(
                    batch_result, interp_result,
                    "divergence for {e:?} at row {row}"
                );
            }
        }
    }

    #[test]
    fn unrecognized_predicates_do_not_compile() {
        assert!(VerifyKernel::compile(&Expr::lit(true)).is_none());
        assert!(VerifyKernel::compile(&Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::lit(1i64)
        ))
        .is_none());
        // Jaccard needs word-tokens() wrapping on both sides.
        assert!(VerifyKernel::compile(&Expr::cmp(
            CmpOp::Ge,
            Expr::call("similarity-jaccard", vec![Expr::col(0), Expr::col(1)]),
            Expr::lit(0.5)
        ))
        .is_none());
    }

    #[test]
    fn mixed_type_rows_fall_back_to_row_errors() {
        // An int where a string is expected: the row path errors; the
        // kernel must surface the same error, not silently reject.
        let rows: Vec<Tuple> = vec![vec![Value::Null, Value::Int64(7)]];
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let pred = ed_pred(CmpOp::Le, 1);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        assert!(k.eval_slice(&slice, &reg()).is_err());
    }

    #[test]
    fn probe_bitset_reuse_across_rows() {
        // Many rows sharing the probe constant: one tokenization, one
        // bitset, identical acceptance.
        let rows: Vec<Tuple> = (0..200)
            .map(|i| {
                vec![
                    record! {"summary" => format!("great product number {i}")},
                    Value::from("x"),
                ]
            })
            .collect();
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let pred = jaccard_pred(CmpOp::Ge, 0.5);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&pred, &slice));
    }

    #[test]
    fn narrowed_slice_positions_are_slice_relative() {
        let slice = sample_slice().narrow(vec![2, 4]);
        let pred = jaccard_pred(CmpOp::Ge, 0.5);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&pred, &slice));
        assert_eq!(got, vec![0]); // row 2 accepted, now at position 0
    }

    #[test]
    fn arc_from_empty_set_is_safe() {
        // Null summary → empty token set on one side; jaccard(∅, S) = 0,
        // jaccard(∅, ∅) = 1 — same as the interpreted path (word-tokens of
        // null/missing is the empty list).
        let rows: Vec<Tuple> = vec![vec![Value::Null, Value::from("x")]];
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let both_null = Expr::cmp(
            CmpOp::Ge,
            Expr::call(
                "similarity-jaccard",
                vec![
                    Expr::call("word-tokens", vec![Expr::col(0)]),
                    Expr::call("word-tokens", vec![Expr::Const(Value::Missing)]),
                ],
            ),
            Expr::lit(0.5),
        );
        let mut k = VerifyKernel::compile(&both_null).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&both_null, &slice));
    }

    #[test]
    fn interner_universe_growth_keeps_probe_bitset_correct() {
        // First rows establish a small universe; later rows introduce new
        // tokens (larger ids) while the probe bitset was built small. The
        // stale bitset must still answer correctly (out-of-universe ids
        // are simply absent).
        let mut rows: Vec<Tuple> = vec![vec![
            record! {"summary" => "great product"},
            Value::from("x"),
        ]];
        rows.extend((0..50).map(|i| {
            vec![
                record! {"summary" => format!("novel token{i} stream")},
                Value::from("x"),
            ]
        }));
        let slice = match crate::tuple::Frame::batch_from_rows(rows) {
            crate::tuple::Frame::Batch(s) => s,
            _ => panic!(),
        };
        let pred = jaccard_pred(CmpOp::Ge, 0.1);
        let mut k = VerifyKernel::compile(&pred).expect("compiles");
        let got = k.eval_slice(&slice, &reg()).unwrap();
        assert_eq!(got, row_path(&pred, &slice));
        let _ = Arc::strong_count(&slice.batch);
    }
}
