//! The runtime expression language evaluated by SELECT / ASSIGN / UNNEST
//! operators over tuples.
//!
//! Function calls resolve through the [`FunctionRegistry`], so similarity
//! built-ins and user-defined functions (§3.1) are equally available in any
//! operator.

use asterix_adm::Value;
use asterix_simfn::FunctionRegistry;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does an [`Ordering`] satisfy this comparison?
    pub(crate) fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression over a tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Positional column reference.
    Column(usize),
    /// Literal value.
    Const(Value),
    /// Field access on a record-valued expression (dotted paths allowed).
    Field(Box<Expr>, String),
    /// Function call resolved through the registry.
    Call(String, Vec<Expr>),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (empty = `true`).
    And(Vec<Expr>),
    /// Logical disjunction (empty = `false`).
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `{ 'k': e, ... }`
    RecordCtor(Vec<(String, Expr)>),
    /// `[ e, ... ]`
    ListCtor(Vec<Expr>),
}

impl Expr {
    /// Shorthand for [`Expr::Column`].
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Shorthand for [`Expr::Const`].
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Shorthand for [`Expr::Field`] on `self`.
    pub fn field(self, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self), name.into())
    }

    /// Shorthand for [`Expr::Call`].
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Shorthand for [`Expr::Cmp`].
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for an equality comparison.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, a, b)
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &[Value], registry: &FunctionRegistry) -> Result<Value, String> {
        match self {
            Expr::Column(i) => tuple
                .get(*i)
                .cloned()
                .ok_or_else(|| format!("column {i} out of range (width {})", tuple.len())),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Field(e, name) => Ok(e.eval(tuple, registry)?.field_path(name).clone()),
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(tuple, registry)?);
                }
                registry.call(name, &vals)
            }
            Expr::Cmp(op, a, b) => {
                let va = a.eval(tuple, registry)?;
                let vb = b.eval(tuple, registry)?;
                Ok(match sql_compare(&va, &vb) {
                    Some(ord) => Value::Boolean(op.test(ord)),
                    None => Value::Null,
                })
            }
            Expr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(tuple, registry)? {
                        Value::Boolean(false) => return Ok(Value::Boolean(false)),
                        Value::Boolean(true) => {}
                        _ => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(true)
                })
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(tuple, registry)? {
                        Value::Boolean(true) => return Ok(Value::Boolean(true)),
                        Value::Boolean(false) => {}
                        _ => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(false)
                })
            }
            Expr::Not(e) => Ok(match e.eval(tuple, registry)? {
                Value::Boolean(b) => Value::Boolean(!b),
                _ => Value::Null,
            }),
            Expr::RecordCtor(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, e) in fields {
                    out.push((k.clone(), e.eval(tuple, registry)?));
                }
                Ok(Value::record(out))
            }
            Expr::ListCtor(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(e.eval(tuple, registry)?);
                }
                Ok(Value::OrderedList(out))
            }
        }
    }

    /// Columns referenced by this expression (for projection pushing and
    /// plan validation).
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Const(_) => {}
            Expr::Field(e, _) | Expr::Not(e) => e.referenced_columns(out),
            Expr::Call(_, args) | Expr::And(args) | Expr::Or(args) | Expr::ListCtor(args) => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Cmp(_, a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::RecordCtor(fields) => {
                for (_, e) in fields {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite every column reference through `map` (used when an operator
    /// is moved across projections during plan rewriting).
    pub fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        match self {
            Expr::Column(i) => *i = map(*i),
            Expr::Const(_) => {}
            Expr::Field(e, _) | Expr::Not(e) => e.remap_columns(map),
            Expr::Call(_, args) | Expr::And(args) | Expr::Or(args) | Expr::ListCtor(args) => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            Expr::Cmp(_, a, b) => {
                a.remap_columns(map);
                b.remap_columns(map);
            }
            Expr::RecordCtor(fields) => {
                for (_, e) in fields {
                    e.remap_columns(map);
                }
            }
        }
    }
}

/// SQL-style comparison: `None` (unknown) when either side is
/// null/missing, when numeric comparison hits NaN, or when kinds are
/// incomparable; numeric cross-type pairs compare by value.
pub fn sql_compare(a: &Value, b: &Value) -> Option<Ordering> {
    if a.is_unknown() || b.is_unknown() {
        return None;
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => return x.partial_cmp(&y),
        (None, None) => {}
        _ => return None, // numeric vs non-numeric
    }
    if a.kind() == b.kind() {
        Some(a.cmp(b))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::record;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    #[test]
    fn column_and_const() {
        let t = vec![Value::Int64(5), Value::from("x")];
        assert_eq!(Expr::col(0).eval(&t, &reg()), Ok(Value::Int64(5)));
        assert_eq!(Expr::lit(9i64).eval(&t, &reg()), Ok(Value::Int64(9)));
        assert!(Expr::col(7).eval(&t, &reg()).is_err());
    }

    #[test]
    fn field_access() {
        let t = vec![record! {"user" => record!{"name" => "ada"}}];
        let e = Expr::col(0).field("user.name");
        assert_eq!(e.eval(&t, &reg()), Ok(Value::from("ada")));
    }

    #[test]
    fn call_similarity() {
        let t = vec![Value::from("james"), Value::from("jamie")];
        let e = Expr::call("edit-distance", vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(e.eval(&t, &reg()), Ok(Value::Int64(2)));
    }

    #[test]
    fn comparison_numeric_cross_type() {
        let t = vec![Value::Int64(2), Value::double(2.0)];
        let e = Expr::eq(Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&t, &reg()), Ok(Value::Boolean(true)));
    }

    #[test]
    fn comparison_with_null_is_null() {
        let t = vec![Value::Null, Value::Int64(1)];
        let e = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&t, &reg()), Ok(Value::Null));
    }

    #[test]
    fn mismatched_kinds_unknown() {
        let t = vec![Value::from("a"), Value::Int64(1)];
        let e = Expr::eq(Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&t, &reg()), Ok(Value::Null));
    }

    #[test]
    fn three_valued_and_or() {
        let r = reg();
        let t: Vec<Value> = vec![];
        let tru = Expr::lit(true);
        let fls = Expr::lit(false);
        let unk = Expr::Const(Value::Null);
        assert_eq!(
            Expr::And(vec![tru.clone(), unk.clone()]).eval(&t, &r),
            Ok(Value::Null)
        );
        assert_eq!(
            Expr::And(vec![fls.clone(), unk.clone()]).eval(&t, &r),
            Ok(Value::Boolean(false))
        );
        assert_eq!(
            Expr::Or(vec![tru, unk.clone()]).eval(&t, &r),
            Ok(Value::Boolean(true))
        );
        assert_eq!(Expr::Or(vec![fls, unk]).eval(&t, &r), Ok(Value::Null));
    }

    #[test]
    fn record_and_list_ctors() {
        let t = vec![Value::Int64(1)];
        let e = Expr::RecordCtor(vec![
            ("id".into(), Expr::col(0)),
            ("tag".into(), Expr::lit("x")),
        ]);
        let v = e.eval(&t, &reg()).unwrap();
        assert_eq!(v.field("id"), &Value::Int64(1));
        let l = Expr::ListCtor(vec![Expr::col(0), Expr::col(0)]);
        assert_eq!(
            l.eval(&t, &reg()),
            Ok(Value::OrderedList(vec![Value::Int64(1), Value::Int64(1)]))
        );
    }

    #[test]
    fn referenced_and_remap() {
        let mut e = Expr::And(vec![
            Expr::eq(Expr::col(1), Expr::col(3)),
            Expr::call("len", vec![Expr::col(0)]),
        ]);
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        cols.sort();
        assert_eq!(cols, vec![0, 1, 3]);
        e.remap_columns(&|c| c + 10);
        let mut cols2 = vec![];
        e.referenced_columns(&mut cols2);
        cols2.sort();
        assert_eq!(cols2, vec![10, 11, 13]);
    }

    #[test]
    fn udf_via_registry() {
        let mut r = reg();
        r.register("double-it", |args| {
            Ok(Value::Int64(args[0].as_i64().unwrap_or(0) * 2))
        });
        let e = Expr::call("double-it", vec![Expr::lit(21i64)]);
        assert_eq!(e.eval(&[], &r), Ok(Value::Int64(42)));
    }
}
