//! Live per-operator progress for a running job.
//!
//! A [`JobProgress`] is one relaxed-atomic counter block per operator of
//! a [`crate::JobSpec`], shared between the executor (which increments)
//! and observers such as a running-query registry (which sample). All
//! counters are `Relaxed`: a sample is a consistent-enough point-in-time
//! view and never pauses execution — the executor side pays one
//! `fetch_add` per pushed tuple (or per batch slice), which is noise
//! next to the channel send it accompanies.

use crate::job::{JobSpec, OpId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters for one operator of a running job. Written by every
/// partition instance of the operator, read by observers at any time.
#[derive(Debug)]
pub struct OpProgress {
    op: OpId,
    name: &'static str,
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    partitions_started: AtomicU64,
    partitions_finished: AtomicU64,
}

impl OpProgress {
    fn new(op: OpId, name: &'static str) -> OpProgress {
        OpProgress {
            op,
            name,
            tuples_in: AtomicU64::new(0),
            tuples_out: AtomicU64::new(0),
            partitions_started: AtomicU64::new(0),
            partitions_finished: AtomicU64::new(0),
        }
    }

    /// Count `n` tuples pushed downstream by one partition instance.
    /// Called from the operator's hot loop; relaxed on purpose.
    pub fn add_out(&self, n: u64) {
        self.tuples_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Mark one partition instance as started.
    pub fn task_started(&self) {
        self.partitions_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark one partition instance as finished, folding in the tuples it
    /// consumed (input counts are only known at task end).
    pub fn task_finished(&self, tuples_in: u64) {
        self.tuples_in.fetch_add(tuples_in, Ordering::Relaxed);
        self.partitions_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of this operator's counters.
    pub fn sample(&self) -> OpProgressSnapshot {
        OpProgressSnapshot {
            op: self.op.0,
            name: self.name,
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            partitions_started: self.partitions_started.load(Ordering::Relaxed),
            partitions_finished: self.partitions_finished.load(Ordering::Relaxed),
        }
    }
}

/// One sampled row of [`JobProgress::snapshot`].
#[derive(Clone, Debug)]
pub struct OpProgressSnapshot {
    /// Operator id within the job (stable across samples).
    pub op: usize,
    /// Operator name (e.g. `"dataset-scan"`, `"similarity-join"`).
    pub name: &'static str,
    /// Tuples consumed by finished partition instances so far.
    pub tuples_in: u64,
    /// Tuples pushed downstream so far — live, mid-execution.
    pub tuples_out: u64,
    /// Partition instances that have started.
    pub partitions_started: u64,
    /// Partition instances that have finished.
    pub partitions_finished: u64,
}

/// Shared live progress of one job: a counter block per operator, in
/// the job's operator order.
#[derive(Debug)]
pub struct JobProgress {
    ops: Vec<Arc<OpProgress>>,
}

impl JobProgress {
    /// Allocate one counter block per operator of `job`.
    pub fn for_job(job: &JobSpec) -> Arc<JobProgress> {
        Arc::new(JobProgress {
            ops: job
                .ops
                .iter()
                .map(|(id, op)| Arc::new(OpProgress::new(*id, op.name())))
                .collect(),
        })
    }

    /// The counter block of one operator, for the executor to thread
    /// into that operator's tasks.
    pub fn slot(&self, op: OpId) -> Option<&Arc<OpProgress>> {
        self.ops.iter().find(|p| p.op == op)
    }

    /// Sample every operator's counters (a consistent-enough live view;
    /// execution is never paused).
    pub fn snapshot(&self) -> Vec<OpProgressSnapshot> {
        self.ops.iter().map(|p| p.sample()).collect()
    }

    /// Total tuples pushed downstream across all operators so far — a
    /// cheap scalar "is it moving?" signal.
    pub fn total_tuples_out(&self) -> u64 {
        self.ops
            .iter()
            .map(|p| p.tuples_out.load(Ordering::Relaxed))
            .sum()
    }
}
