//! Cluster execution context: the simulated shared-nothing cluster.
//!
//! Each partition owns its own [`PartitionStore`]s (one per dataset), just
//! as each AsterixDB node controller owns local LSM partitions (§2.3).
//! Operators only ever touch the stores of *their own* partition; data
//! crosses partitions exclusively through connectors — preserving the
//! shared-nothing discipline the paper's plans are designed around.

use crate::error::CancelToken;
use asterix_simfn::FunctionRegistry;
use asterix_storage::PartitionStore;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// The datasets of one partition.
#[derive(Debug, Default)]
pub struct PartitionSet {
    stores: HashMap<String, PartitionStore>,
}

impl PartitionSet {
    /// An empty partition with no dataset stores yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) this partition's store for `store.dataset`.
    pub fn insert_store(&mut self, store: PartitionStore) {
        self.stores.insert(store.dataset.name.clone(), store);
    }

    /// This partition's store for `dataset`, if the dataset exists.
    pub fn store(&self, dataset: &str) -> Option<&PartitionStore> {
        self.stores.get(dataset)
    }

    /// Mutable access to this partition's store for `dataset`.
    pub fn store_mut(&mut self, dataset: &str) -> Option<&mut PartitionStore> {
        self.stores.get_mut(dataset)
    }

    /// Names of every dataset with a store on this partition.
    pub fn dataset_names(&self) -> impl Iterator<Item = &str> {
        self.stores.keys().map(|s| s.as_str())
    }

    /// Every dataset store on this partition.
    pub fn stores(&self) -> impl Iterator<Item = &PartitionStore> {
        self.stores.values()
    }

    /// Mutable access to every dataset store on this partition (used by
    /// durable instances to drain files awaiting deferred reclamation).
    pub fn stores_mut(&mut self) -> impl Iterator<Item = &mut PartitionStore> {
        self.stores.values_mut()
    }
}

/// The whole simulated cluster, shared read-only during query execution.
pub struct ClusterContext {
    /// One entry per partition; `RwLock` because loads mutate and queries
    /// read concurrently across operator threads.
    pub partitions: Vec<RwLock<PartitionSet>>,
    /// Similarity functions and UDFs callable from scalar expressions.
    pub registry: FunctionRegistry,
    /// Cancel token of the job currently running on this context, if any;
    /// installed by the executor for the duration of a run so that
    /// [`ClusterContext::cancel_active`] can stop it from outside. When
    /// several jobs share a context concurrently, the slot tracks the most
    /// recently started one (each job's own token still governs it).
    active_cancel: Mutex<Option<Arc<CancelToken>>>,
}

impl ClusterContext {
    /// A cluster of `num_partitions` empty partitions sharing `registry`.
    pub fn new(num_partitions: usize, registry: FunctionRegistry) -> Self {
        assert!(num_partitions > 0);
        ClusterContext {
            partitions: (0..num_partitions)
                .map(|_| RwLock::new(PartitionSet::new()))
                .collect(),
            registry,
            active_cancel: Mutex::new(None),
        }
    }

    /// Number of partitions in the simulated cluster.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Install `token` as the context's active cancel target. The executor
    /// does this for every run; callers that create the token themselves
    /// (e.g. to allow cancelling a query that is still waiting for
    /// admission) may install it earlier — installing the same `Arc` twice
    /// is harmless.
    pub fn install_cancel(&self, token: Arc<CancelToken>) {
        *self.active_cancel.lock() = Some(token);
    }

    /// Clear the active cancel slot, but only if it still holds `token`.
    /// An unconditional clear would clobber the token of a job that
    /// started concurrently and installed itself after us.
    pub fn clear_cancel_if(&self, token: &Arc<CancelToken>) {
        let mut slot = self.active_cancel.lock();
        if slot.as_ref().is_some_and(|t| Arc::ptr_eq(t, token)) {
            *slot = None;
        }
    }

    /// Request cooperative cancellation of the job currently running on
    /// this context. Returns whether a job was active.
    pub fn cancel_active(&self) -> bool {
        match &*self.active_cancel.lock() {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::DatasetDef;
    use asterix_storage::{BufferCache, Disk, StorageConfig};
    use std::sync::Arc;

    #[test]
    fn partition_set_store_access() {
        let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 16));
        let store = PartitionStore::new(
            DatasetDef::new("d", "id"),
            0,
            cache,
            StorageConfig::tiny(),
        );
        let mut set = PartitionSet::new();
        set.insert_store(store);
        assert!(set.store("d").is_some());
        assert!(set.store("other").is_none());
        assert_eq!(set.dataset_names().collect::<Vec<_>>(), vec!["d"]);
    }

    #[test]
    fn context_partition_count() {
        let ctx = ClusterContext::new(4, FunctionRegistry::with_builtins());
        assert_eq!(ctx.num_partitions(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_partitions_rejected() {
        ClusterContext::new(0, FunctionRegistry::with_builtins());
    }
}
