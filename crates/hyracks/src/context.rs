//! Cluster execution context: the simulated shared-nothing cluster.
//!
//! Each partition owns its own [`PartitionStore`]s (one per dataset), just
//! as each AsterixDB node controller owns local LSM partitions (§2.3).
//! Operators only ever touch the stores of *their own* partition; data
//! crosses partitions exclusively through connectors — preserving the
//! shared-nothing discipline the paper's plans are designed around.

use asterix_simfn::FunctionRegistry;
use asterix_storage::PartitionStore;
use parking_lot::RwLock;
use std::collections::HashMap;

/// The datasets of one partition.
#[derive(Debug, Default)]
pub struct PartitionSet {
    stores: HashMap<String, PartitionStore>,
}

impl PartitionSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert_store(&mut self, store: PartitionStore) {
        self.stores.insert(store.dataset.name.clone(), store);
    }

    pub fn store(&self, dataset: &str) -> Option<&PartitionStore> {
        self.stores.get(dataset)
    }

    pub fn store_mut(&mut self, dataset: &str) -> Option<&mut PartitionStore> {
        self.stores.get_mut(dataset)
    }

    pub fn dataset_names(&self) -> impl Iterator<Item = &str> {
        self.stores.keys().map(|s| s.as_str())
    }
}

/// The whole simulated cluster, shared read-only during query execution.
pub struct ClusterContext {
    /// One entry per partition; `RwLock` because loads mutate and queries
    /// read concurrently across operator threads.
    pub partitions: Vec<RwLock<PartitionSet>>,
    pub registry: FunctionRegistry,
}

impl ClusterContext {
    pub fn new(num_partitions: usize, registry: FunctionRegistry) -> Self {
        assert!(num_partitions > 0);
        ClusterContext {
            partitions: (0..num_partitions)
                .map(|_| RwLock::new(PartitionSet::new()))
                .collect(),
            registry,
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::DatasetDef;
    use asterix_storage::{BufferCache, Disk, StorageConfig};
    use std::sync::Arc;

    #[test]
    fn partition_set_store_access() {
        let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 16));
        let store = PartitionStore::new(
            DatasetDef::new("d", "id"),
            0,
            cache,
            StorageConfig::tiny(),
        );
        let mut set = PartitionSet::new();
        set.insert_store(store);
        assert!(set.store("d").is_some());
        assert!(set.store("other").is_none());
        assert_eq!(set.dataset_names().collect::<Vec<_>>(), vec!["d"]);
    }

    #[test]
    fn context_partition_count() {
        let ctx = ClusterContext::new(4, FunctionRegistry::with_builtins());
        assert_eq!(ctx.num_partitions(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_partitions_rejected() {
        ClusterContext::new(0, FunctionRegistry::with_builtins());
    }
}
