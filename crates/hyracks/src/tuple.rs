//! Tuples, frames, and sort-key comparison.

use asterix_adm::Value;
use std::cmp::Ordering;

/// A tuple is a row of positional columns.
pub type Tuple = Vec<Value>;

/// A frame is a batch of tuples moved over a connector in one send.
pub type Frame = Vec<Tuple>;

/// Tuples per frame. Small enough to keep pipelines responsive, large
/// enough to amortize channel overhead.
pub const FRAME_CAPACITY: usize = 256;

/// One sort key: a column index and a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Column index to compare.
    pub col: usize,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// Compare two tuples under a sort-key list.
pub fn compare_tuples(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.col].cmp(&b[k.col]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_compare() {
        let a = vec![Value::Int64(1), Value::from("b")];
        let b = vec![Value::Int64(1), Value::from("a")];
        assert_eq!(compare_tuples(&a, &b, &[SortKey::asc(0)]), Ordering::Equal);
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::asc(1)]),
            Ordering::Greater
        );
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::desc(1)]),
            Ordering::Less
        );
    }
}
