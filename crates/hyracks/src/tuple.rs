//! Tuples, frames, batches, and sort-key comparison.
//!
//! The seed runtime moved `Vec<Tuple>` frames tuple-at-a-time. This module
//! adds the batch-at-a-time representation behind the same [`Frame`]
//! channel payload:
//!
//! * [`Batch`] — a rectangular, immutable chunk of rows stored as column
//!   vectors. Fixed-width `Int64` columns and string columns (one shared
//!   arena plus `(start, end)` spans) are stored natively; anything else
//!   falls back to a plain [`Value`] vector per column.
//! * [`BatchSlice`] — an `Arc<Batch>` plus an optional selection vector.
//!   Operators that filter or route rows build a new selection over the
//!   *same* shared batch, so connectors move batches downstream without
//!   copying tuple data.
//! * [`Frame`] — the unit moved over a connector in one send: either a
//!   plain row vector (the seed representation, still used by sorting and
//!   aggregation boundaries) or a batch slice.
//!
//! Row-at-a-time consumers iterate any frame via [`Frame::into_rows`], so
//! operators that were not vectorized keep working unchanged.

use asterix_adm::{stable_hash_many, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A tuple is a row of positional columns.
pub type Tuple = Vec<Value>;

/// Tuples per frame. Small enough to keep pipelines responsive, large
/// enough to amortize channel overhead.
pub const FRAME_CAPACITY: usize = 256;

/// One column of a [`Batch`].
#[derive(Clone, Debug)]
pub enum Column {
    /// Every value in the column is `Value::Int64`.
    Int64(Vec<i64>),
    /// Every value in the column is `Value::String`; the bytes live in one
    /// shared arena and each row is a `(start, end)` byte span into it.
    Str {
        /// Concatenated UTF-8 bytes of all rows.
        arena: String,
        /// Per-row `(start, end)` byte offsets into `arena`.
        spans: Vec<(u32, u32)>,
    },
    /// Mixed or non-scalar column; rows are stored as plain values.
    Values(Vec<Value>),
    /// Rows share ownership of their values. Built by operators that fan
    /// one resolved value out to many rows (the primary-index lookup
    /// attaches each fetched record to every candidate row that asked for
    /// its key): rows cost one `Arc` clone instead of a deep record copy,
    /// and downstream batch consumers borrow the cell in place.
    Shared(Vec<Arc<Value>>),
}

impl Column {
    fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Str { spans, .. } => spans.len(),
            Column::Values(v) => v.len(),
            Column::Shared(v) => v.len(),
        }
    }

    /// Materialize one cell as an owned [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Str { arena, spans } => {
                let (a, b) = spans[row];
                Value::String(arena[a as usize..b as usize].to_string())
            }
            Column::Values(v) => v[row].clone(),
            Column::Shared(v) => (*v[row]).clone(),
        }
    }

    /// Borrow one cell as `&str` (only for string-typed columns).
    pub fn get_str(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str { arena, spans } => {
                let (a, b) = *spans.get(row)?;
                Some(&arena[a as usize..b as usize])
            }
            Column::Values(v) => v.get(row)?.as_str(),
            Column::Shared(v) => v.get(row)?.as_str(),
            Column::Int64(_) => None,
        }
    }

    /// Borrow one cell as `&Value` (for [`Column::Values`] and
    /// [`Column::Shared`] columns).
    pub fn get_value(&self, row: usize) -> Option<&Value> {
        match self {
            Column::Values(v) => v.get(row),
            Column::Shared(v) => v.get(row).map(Arc::as_ref),
            _ => None,
        }
    }

    fn heap_bytes(&self) -> u64 {
        match self {
            Column::Int64(v) => 9 * v.len() as u64,
            Column::Str { arena, spans } => arena.len() as u64 + 8 * spans.len() as u64,
            Column::Values(v) => v.iter().map(|x| x.heap_size() as u64).sum(),
            // Conservative: charge every row its full value size, as if the
            // rows were deep copies — sharing is a memory win the budget
            // does not rely on.
            Column::Shared(v) => v.iter().map(|x| x.heap_size() as u64).sum(),
        }
    }

    /// Gather picked rows of aligned source columns (one per source
    /// batch) into one compact column. `picks` entries are pre-validated
    /// `(source, row)` pairs. Column storage is preserved when every
    /// source stores this column the same way; otherwise the gather
    /// degrades to a plain value column.
    fn gather(sources: &[&Column], picks: &[(u32, u32)]) -> Column {
        if sources.iter().all(|c| matches!(c, Column::Int64(_))) {
            let mut out = Vec::with_capacity(picks.len());
            for &(s, r) in picks {
                if let Column::Int64(xs) = sources[s as usize] {
                    out.push(xs[r as usize]);
                }
            }
            return Column::Int64(out);
        }
        if sources.iter().all(|c| matches!(c, Column::Str { .. })) {
            let total: usize = picks
                .iter()
                .map(|&(s, r)| match sources[s as usize] {
                    Column::Str { spans, .. } => {
                        let (a, b) = spans[r as usize];
                        (b - a) as usize
                    }
                    _ => 0,
                })
                .sum();
            if total <= u32::MAX as usize {
                let mut arena = String::with_capacity(total);
                let mut spans = Vec::with_capacity(picks.len());
                for &(s, r) in picks {
                    if let Column::Str {
                        arena: src,
                        spans: sp,
                    } = sources[s as usize]
                    {
                        let (a, b) = sp[r as usize];
                        let start = arena.len() as u32;
                        arena.push_str(&src[a as usize..b as usize]);
                        spans.push((start, arena.len() as u32));
                    }
                }
                return Column::Str { arena, spans };
            }
        }
        if sources.iter().all(|c| matches!(c, Column::Shared(_))) {
            let mut out = Vec::with_capacity(picks.len());
            for &(s, r) in picks {
                if let Column::Shared(xs) = sources[s as usize] {
                    out.push(Arc::clone(&xs[r as usize]));
                }
            }
            return Column::Shared(out);
        }
        Column::Values(
            picks
                .iter()
                .map(|&(s, r)| sources[s as usize].value(r as usize))
                .collect(),
        )
    }

    /// Pick the storage for one column of moved values.
    pub(crate) fn from_values(vals: Vec<Value>) -> Column {
        if vals.iter().all(|v| matches!(v, Value::Int64(_))) {
            return Column::Int64(
                vals.iter()
                    .map(|v| match v {
                        Value::Int64(i) => *i,
                        _ => 0,
                    })
                    .collect(),
            );
        }
        if vals.iter().all(|v| matches!(v, Value::String(_))) {
            let total: usize = vals.iter().map(|v| v.as_str().map_or(0, str::len)).sum();
            if total <= u32::MAX as usize {
                let mut arena = String::with_capacity(total);
                let mut spans = Vec::with_capacity(vals.len());
                for v in &vals {
                    let s = v.as_str().unwrap_or("");
                    let start = arena.len() as u32;
                    arena.push_str(s);
                    spans.push((start, arena.len() as u32));
                }
                return Column::Str { arena, spans };
            }
        }
        // All-record columns go behind `Arc` so downstream gathers (sort,
        // lookup, project, assign) clone a pointer, not the record.
        if vals.iter().all(|v| matches!(v, Value::Record(_))) {
            return Column::Shared(vals.into_iter().map(Arc::new).collect());
        }
        Column::Values(vals)
    }
}

/// A rectangular, immutable chunk of rows stored column-wise.
#[derive(Clone, Debug)]
pub struct Batch {
    len: usize,
    cols: Vec<Column>,
    heap_bytes: u64,
}

/// A borrowed-or-owned cell used when hashing batch rows without deep
/// cloning [`Column::Values`] cells.
enum Slot<'a> {
    Ref(&'a Value),
    Owned(Value),
}

impl Batch {
    /// Build a batch from rectangular rows, detecting per-column storage.
    /// Values are moved, not cloned, so batching a freshly scanned frame
    /// costs no record copies.
    ///
    /// Returns the rows back unchanged when they are not rectangular (or
    /// empty); the caller ships those as a plain row frame instead.
    pub fn from_rows(rows: Vec<Tuple>) -> Result<Batch, Vec<Tuple>> {
        let Some(width) = rows.first().map(Vec::len) else {
            return Err(rows);
        };
        if rows.iter().any(|r| r.len() != width) {
            return Err(rows);
        }
        let n = rows.len();
        // Transpose: move every value into its column vector.
        let mut colvecs: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                colvecs[c].push(v);
            }
        }
        let cols: Vec<Column> = colvecs.into_iter().map(Column::from_values).collect();
        let heap_bytes = cols.iter().map(Column::heap_bytes).sum();
        Ok(Batch {
            len: n,
            cols,
            heap_bytes,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Approximate heap bytes of the stored values (same accounting as
    /// `Value::heap_size` for value columns; arena bytes for strings).
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }

    /// Borrow a column.
    pub fn col(&self, c: usize) -> Option<&Column> {
        self.cols.get(c)
    }

    /// Materialize one row as an owned tuple.
    pub fn row(&self, i: usize) -> Tuple {
        self.cols.iter().map(|c| c.value(i)).collect()
    }

    /// Hash the given columns of one row exactly as the row path hashes
    /// `stable_hash_many(&[&tuple[c], ...])`. Returns `None` when a column
    /// index is out of bounds (the caller reports a typed error).
    pub fn hash_row(&self, row: usize, hash_cols: &[usize]) -> Option<u64> {
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(hash_cols.len());
        for &c in hash_cols {
            let col = self.cols.get(c)?;
            if col.len() <= row {
                return None;
            }
            slots.push(match col {
                Column::Values(vs) => Slot::Ref(&vs[row]),
                Column::Shared(vs) => Slot::Ref(&vs[row]),
                other => Slot::Owned(other.value(row)),
            });
        }
        let refs: Vec<&Value> = slots
            .iter()
            .map(|s| match s {
                Slot::Ref(v) => *v,
                Slot::Owned(v) => v,
            })
            .collect();
        Some(stable_hash_many(&refs))
    }

    /// Gather the given columns of picked rows from aligned source batches
    /// into one new compact batch. `picks` are `(source index, row index)`
    /// pairs in output order; duplicates are allowed (the same source row
    /// may be emitted many times). Column storage is preserved per column
    /// when the sources agree on it — string cells are copied arena-to-
    /// arena with no per-row allocation, shared cells stay shared.
    ///
    /// Returns `Err` (for the caller's typed operator error) when a pick
    /// or column index is out of bounds or `sources` is empty while
    /// `picks` is not.
    pub fn gather(
        sources: &[&Batch],
        picks: &[(u32, u32)],
        cols: &[usize],
    ) -> Result<Batch, String> {
        for &(s, r) in picks {
            let Some(src) = sources.get(s as usize) else {
                return Err(format!("gather: source {s} out of bounds"));
            };
            if r as usize >= src.len() {
                return Err(format!(
                    "gather: row {r} out of bounds for source of {} rows",
                    src.len()
                ));
            }
        }
        for &c in cols {
            if let Some(narrow) = sources.iter().find(|b| c >= b.width()) {
                return Err(format!(
                    "gather: column {c} out of bounds (source width {})",
                    narrow.width()
                ));
            }
        }
        let out: Vec<Column> = cols
            .iter()
            .map(|&c| {
                let srcs: Vec<&Column> = sources.iter().map(|b| &b.cols[c]).collect();
                Column::gather(&srcs, picks)
            })
            .collect();
        let heap_bytes = out.iter().map(Column::heap_bytes).sum();
        Ok(Batch {
            len: picks.len(),
            cols: out,
            heap_bytes,
        })
    }

    /// Append one column to the batch (its length must match the row
    /// count). Used by operators that emit the input rows plus a computed
    /// column without re-materializing every row.
    pub fn push_col(&mut self, col: Column) -> Result<(), String> {
        if col.len() != self.len {
            return Err(format!(
                "push_col: column of {} rows appended to batch of {} rows",
                col.len(),
                self.len
            ));
        }
        self.heap_bytes += col.heap_bytes();
        self.cols.push(col);
        Ok(())
    }
}

/// Incremental column-wise [`Batch`] builder for operators that fan a few
/// source values out to many rows (the secondary-index search repeats one
/// outer row per candidate). Appending writes each cell straight into
/// column storage — integer cells into an `i64` vector, string cells into
/// the shared arena — so no per-row tuple is ever allocated and no
/// transpose pass is needed. Column storage is decided by the first
/// appended row and degrades per column to plain values on a type
/// mismatch, exactly matching what [`Batch::from_rows`] would have
/// detected for the same rows.
pub struct BatchBuilder {
    cols: Vec<ColBuilder>,
    len: usize,
}

enum ColBuilder {
    /// No rows appended yet; the first cell picks the storage.
    Empty,
    Int64(Vec<i64>),
    Str { arena: String, spans: Vec<(u32, u32)> },
    /// All-record column: one clone into an `Arc` here, pointer clones
    /// at every downstream gather.
    Shared(Vec<Arc<Value>>),
    Values(Vec<Value>),
}

impl ColBuilder {
    fn push(&mut self, v: &Value) {
        match (&mut *self, v) {
            (ColBuilder::Empty, Value::Int64(i)) => *self = ColBuilder::Int64(vec![*i]),
            (ColBuilder::Empty, Value::String(s)) if s.len() <= u32::MAX as usize => {
                *self = ColBuilder::Str {
                    arena: s.clone(),
                    spans: vec![(0, s.len() as u32)],
                }
            }
            (ColBuilder::Empty, v @ Value::Record(_)) => {
                *self = ColBuilder::Shared(vec![Arc::new(v.clone())])
            }
            (ColBuilder::Empty, v) => *self = ColBuilder::Values(vec![v.clone()]),
            (ColBuilder::Int64(xs), Value::Int64(i)) => xs.push(*i),
            (ColBuilder::Str { arena, spans }, Value::String(s))
                if arena.len() + s.len() <= u32::MAX as usize =>
            {
                let start = arena.len() as u32;
                arena.push_str(s);
                spans.push((start, arena.len() as u32));
            }
            (ColBuilder::Shared(xs), v @ Value::Record(_)) => xs.push(Arc::new(v.clone())),
            (ColBuilder::Values(vs), v) => vs.push(v.clone()),
            (_, v) => {
                self.degrade();
                if let ColBuilder::Values(vs) = self {
                    vs.push(v.clone());
                }
            }
        }
    }

    /// Convert the accumulated cells to plain-value storage (type
    /// mismatch or arena overflow).
    fn degrade(&mut self) {
        let vals: Vec<Value> = match std::mem::replace(self, ColBuilder::Empty) {
            ColBuilder::Empty => Vec::new(),
            ColBuilder::Int64(xs) => xs.into_iter().map(Value::Int64).collect(),
            ColBuilder::Str { arena, spans } => spans
                .iter()
                .map(|&(a, b)| Value::String(arena[a as usize..b as usize].to_string()))
                .collect(),
            ColBuilder::Shared(xs) => xs
                .into_iter()
                .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
                .collect(),
            ColBuilder::Values(vs) => vs,
        };
        *self = ColBuilder::Values(vals);
    }

    fn finish(self) -> Column {
        match self {
            ColBuilder::Empty => Column::Values(Vec::new()),
            ColBuilder::Int64(xs) => Column::Int64(xs),
            ColBuilder::Str { arena, spans } => Column::Str { arena, spans },
            ColBuilder::Shared(xs) => Column::Shared(xs),
            ColBuilder::Values(vs) => Column::Values(vs),
        }
    }
}

impl BatchBuilder {
    /// An empty builder for rows of `width` columns.
    pub fn new(width: usize) -> Self {
        BatchBuilder {
            cols: (0..width).map(|_| ColBuilder::Empty).collect(),
            len: 0,
        }
    }

    /// Rows accumulated since the last [`BatchBuilder::take_batch`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of columns each appended row must have.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// True when no rows are accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one row given as borrowed cells (in column order). Errors
    /// when the cell count differs from the builder's width.
    pub fn push_row<'a>(
        &mut self,
        cells: impl IntoIterator<Item = &'a Value>,
    ) -> Result<(), String> {
        let mut n = 0usize;
        for v in cells {
            let Some(col) = self.cols.get_mut(n) else {
                return Err(format!(
                    "batch builder: row wider than {} columns",
                    self.cols.len()
                ));
            };
            col.push(v);
            n += 1;
        }
        if n != self.cols.len() {
            return Err(format!(
                "batch builder: row of {n} cells appended to width {}",
                self.cols.len()
            ));
        }
        self.len += 1;
        Ok(())
    }

    /// Drain the accumulated rows as one batch (`None` when empty); the
    /// builder resets and can keep accumulating.
    pub fn take_batch(&mut self) -> Option<Batch> {
        if self.len == 0 {
            return None;
        }
        let width = self.cols.len();
        let built = std::mem::replace(
            &mut self.cols,
            (0..width).map(|_| ColBuilder::Empty).collect(),
        );
        let cols: Vec<Column> = built.into_iter().map(ColBuilder::finish).collect();
        let heap_bytes = cols.iter().map(Column::heap_bytes).sum();
        let len = std::mem::take(&mut self.len);
        Some(Batch {
            len,
            cols,
            heap_bytes,
        })
    }
}

/// A shared batch plus an optional selection vector: the zero-copy unit
/// that filters and connectors pass downstream.
#[derive(Clone, Debug)]
pub struct BatchSlice {
    /// The shared column store.
    pub batch: Arc<Batch>,
    /// Positions of the visible rows, in order; `None` means all rows.
    pub sel: Option<Arc<[u32]>>,
}

impl BatchSlice {
    /// A slice exposing every row of `batch`.
    pub fn full(batch: Arc<Batch>) -> Self {
        BatchSlice { batch, sel: None }
    }

    /// Number of visible rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.len(),
        }
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a slice position to a row index in the underlying batch.
    pub fn row_index(&self, pos: usize) -> usize {
        match &self.sel {
            Some(s) => s[pos] as usize,
            None => pos,
        }
    }

    /// Materialize the row at slice position `pos` as an owned tuple.
    pub fn row(&self, pos: usize) -> Tuple {
        self.batch.row(self.row_index(pos))
    }

    /// Restrict the slice to the given positions (indices into *this*
    /// slice, in order), composing with any existing selection.
    pub fn narrow(&self, keep: Vec<u32>) -> BatchSlice {
        let sel: Arc<[u32]> = match &self.sel {
            Some(s) => keep.into_iter().map(|p| s[p as usize]).collect(),
            None => keep.into(),
        };
        BatchSlice {
            batch: Arc::clone(&self.batch),
            sel: Some(sel),
        }
    }

    /// Approximate heap bytes attributable to the visible rows
    /// (proportional share of the shared batch plus the selection vector).
    pub fn heap_bytes(&self) -> u64 {
        let visible = self.len() as u64;
        let base = if self.batch.is_empty() {
            0
        } else {
            self.batch.heap_bytes() * visible / self.batch.len() as u64
        };
        base + self.sel.as_ref().map_or(0, |s| 4 * s.len() as u64)
    }
}

/// A frame is the unit moved over a connector in one send: either a plain
/// row vector (the seed representation) or a zero-copy batch slice.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Row-at-a-time payload.
    Rows(Vec<Tuple>),
    /// Batch-at-a-time payload.
    Batch(BatchSlice),
}

impl Frame {
    /// Wrap rows into a batch frame when they are rectangular, otherwise
    /// ship them as a plain row frame.
    pub fn batch_from_rows(rows: Vec<Tuple>) -> Frame {
        match Batch::from_rows(rows) {
            Ok(b) => Frame::Batch(BatchSlice::full(Arc::new(b))),
            Err(rows) => Frame::Rows(rows),
        }
    }

    /// Number of visible rows in the frame.
    pub fn len(&self) -> usize {
        match self {
            Frame::Rows(r) => r.len(),
            Frame::Batch(s) => s.len(),
        }
    }

    /// True when the frame carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes shipped with this frame (exact for rows, proportional
    /// for batch slices).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Frame::Rows(rows) => rows
                .iter()
                .map(|t| t.iter().map(|v| v.heap_size() as u64).sum::<u64>())
                .sum(),
            Frame::Batch(s) => s.heap_bytes(),
        }
    }

    /// Consume the frame as an iterator of owned rows (batch rows are
    /// materialized by cloning).
    pub fn into_rows(self) -> FrameRows {
        match self {
            Frame::Rows(r) => FrameRows::Rows(r.into_iter()),
            Frame::Batch(s) => FrameRows::Batch { slice: s, pos: 0 },
        }
    }
}

/// Owned-row iterator over either [`Frame`] variant.
pub enum FrameRows {
    /// Draining a row frame.
    Rows(std::vec::IntoIter<Tuple>),
    /// Materializing a batch slice row by row.
    Batch {
        /// The slice being drained.
        slice: BatchSlice,
        /// Next slice position to materialize.
        pos: usize,
    },
}

impl FrameRows {
    /// An exhausted iterator (initial state for streaming consumers).
    pub fn empty() -> FrameRows {
        FrameRows::Rows(Vec::new().into_iter())
    }
}

impl Iterator for FrameRows {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        match self {
            FrameRows::Rows(it) => it.next(),
            FrameRows::Batch { slice, pos } => {
                if *pos >= slice.len() {
                    return None;
                }
                let t = slice.row(*pos);
                *pos += 1;
                Some(t)
            }
        }
    }
}

/// One sort key: a column index and a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Column index to compare.
    pub col: usize,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// Compare two tuples under a sort-key list.
pub fn compare_tuples(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.col].cmp(&b[k.col]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::record;

    #[test]
    fn sort_key_compare() {
        let a = vec![Value::Int64(1), Value::from("b")];
        let b = vec![Value::Int64(1), Value::from("a")];
        assert_eq!(compare_tuples(&a, &b, &[SortKey::asc(0)]), Ordering::Equal);
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::asc(1)]),
            Ordering::Greater
        );
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::desc(1)]),
            Ordering::Less
        );
    }

    fn sample_rows() -> Vec<Tuple> {
        vec![
            vec![
                Value::Int64(1),
                Value::from("ada"),
                record! {"name" => "ada"},
            ],
            vec![
                Value::Int64(2),
                Value::from("bob"),
                record! {"name" => "bob"},
            ],
            vec![Value::Int64(3), Value::from(""), Value::Null],
        ]
    }

    #[test]
    fn from_rows_detects_column_types() {
        let rows = sample_rows();
        let b = Batch::from_rows(rows.clone()).expect("rectangular");
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 3);
        assert!(matches!(b.col(0), Some(Column::Int64(_))));
        assert!(matches!(b.col(1), Some(Column::Str { .. })));
        assert!(matches!(b.col(2), Some(Column::Values(_))));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&b.row(i), row);
        }
        assert_eq!(b.col(1).unwrap().get_str(1), Some("bob"));
        assert_eq!(b.col(1).unwrap().get_str(2), Some(""));
        // A column that is records in every row goes behind `Arc`s.
        let recs = vec![
            vec![record! {"name" => "ada"}],
            vec![record! {"name" => "bob"}],
        ];
        let shared = Batch::from_rows(recs.clone()).expect("rectangular");
        assert!(matches!(shared.col(0), Some(Column::Shared(_))));
        for (i, row) in recs.iter().enumerate() {
            assert_eq!(&shared.row(i), row);
        }
    }

    #[test]
    fn batch_builder_matches_from_rows_storage() {
        let rows = sample_rows();
        let mut bb = BatchBuilder::new(3);
        for r in &rows {
            bb.push_row(r.iter()).unwrap();
        }
        let b = bb.take_batch().unwrap();
        assert!(matches!(b.col(0), Some(Column::Int64(_))));
        assert!(matches!(b.col(1), Some(Column::Str { .. })));
        assert!(matches!(b.col(2), Some(Column::Values(_))));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&b.row(i), row);
        }
        let (r1, r2) = (record! {"name" => "ada"}, record! {"name" => "bob"});
        let mut bb = BatchBuilder::new(1);
        bb.push_row([&r1]).unwrap();
        bb.push_row([&r2]).unwrap();
        let b = bb.take_batch().unwrap();
        assert!(matches!(b.col(0), Some(Column::Shared(_))));
        assert_eq!(b.row(0), vec![r1]);
        assert_eq!(b.row(1), vec![r2]);
    }

    #[test]
    fn ragged_rows_fall_back_to_row_frame() {
        let rows = vec![vec![Value::Int64(1)], vec![Value::Int64(2), Value::Null]];
        assert!(Batch::from_rows(rows.clone()).is_err());
        assert!(matches!(Frame::batch_from_rows(rows), Frame::Rows(_)));
        assert!(Batch::from_rows(Vec::new()).is_err());
    }

    #[test]
    fn slice_narrow_composes_selections() {
        let b = Arc::new(Batch::from_rows(sample_rows()).unwrap());
        let all = BatchSlice::full(Arc::clone(&b));
        assert_eq!(all.len(), 3);
        let odd = all.narrow(vec![0, 2]);
        assert_eq!(odd.len(), 2);
        assert_eq!(odd.row(1)[0], Value::Int64(3));
        let last = odd.narrow(vec![1]);
        assert_eq!(last.len(), 1);
        assert_eq!(last.row_index(0), 2);
        assert_eq!(last.row(0), sample_rows()[2]);
    }

    #[test]
    fn hash_row_matches_row_path() {
        let rows = sample_rows();
        let b = Batch::from_rows(rows.clone()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            for cols in [vec![0usize], vec![1], vec![2], vec![0, 1, 2]] {
                let refs: Vec<&Value> = cols.iter().map(|c| &row[*c]).collect();
                assert_eq!(b.hash_row(i, &cols), Some(stable_hash_many(&refs)));
            }
        }
        assert_eq!(b.hash_row(0, &[7]), None);
    }

    #[test]
    fn frame_rows_iterates_both_variants() {
        let rows = sample_rows();
        let row_frame = Frame::Rows(rows.clone());
        assert_eq!(row_frame.into_rows().collect::<Vec<_>>(), rows);
        let batch_frame = Frame::batch_from_rows(rows.clone());
        assert!(matches!(batch_frame, Frame::Batch(_)));
        assert_eq!(batch_frame.len(), 3);
        assert_eq!(batch_frame.into_rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn frame_heap_bytes_proportional_for_slices() {
        let rows = sample_rows();
        let full = Frame::batch_from_rows(rows.clone());
        let full_bytes = full.heap_bytes();
        assert!(full_bytes > 0);
        if let Frame::Batch(slice) = full {
            let half = slice.narrow(vec![0]);
            assert!(half.heap_bytes() < full_bytes);
        }
    }
}
