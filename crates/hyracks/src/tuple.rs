//! Tuples, frames, batches, and sort-key comparison.
//!
//! The seed runtime moved `Vec<Tuple>` frames tuple-at-a-time. This module
//! adds the batch-at-a-time representation behind the same [`Frame`]
//! channel payload:
//!
//! * [`Batch`] — a rectangular, immutable chunk of rows stored as column
//!   vectors. Fixed-width `Int64` columns and string columns (one shared
//!   arena plus `(start, end)` spans) are stored natively; anything else
//!   falls back to a plain [`Value`] vector per column.
//! * [`BatchSlice`] — an `Arc<Batch>` plus an optional selection vector.
//!   Operators that filter or route rows build a new selection over the
//!   *same* shared batch, so connectors move batches downstream without
//!   copying tuple data.
//! * [`Frame`] — the unit moved over a connector in one send: either a
//!   plain row vector (the seed representation, still used by sorting and
//!   aggregation boundaries) or a batch slice.
//!
//! Row-at-a-time consumers iterate any frame via [`Frame::into_rows`], so
//! operators that were not vectorized keep working unchanged.

use asterix_adm::{stable_hash_many, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A tuple is a row of positional columns.
pub type Tuple = Vec<Value>;

/// Tuples per frame. Small enough to keep pipelines responsive, large
/// enough to amortize channel overhead.
pub const FRAME_CAPACITY: usize = 256;

/// One column of a [`Batch`].
#[derive(Clone, Debug)]
pub enum Column {
    /// Every value in the column is `Value::Int64`.
    Int64(Vec<i64>),
    /// Every value in the column is `Value::String`; the bytes live in one
    /// shared arena and each row is a `(start, end)` byte span into it.
    Str {
        /// Concatenated UTF-8 bytes of all rows.
        arena: String,
        /// Per-row `(start, end)` byte offsets into `arena`.
        spans: Vec<(u32, u32)>,
    },
    /// Mixed or non-scalar column; rows are stored as plain values.
    Values(Vec<Value>),
}

impl Column {
    fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Str { spans, .. } => spans.len(),
            Column::Values(v) => v.len(),
        }
    }

    /// Materialize one cell as an owned [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Str { arena, spans } => {
                let (a, b) = spans[row];
                Value::String(arena[a as usize..b as usize].to_string())
            }
            Column::Values(v) => v[row].clone(),
        }
    }

    /// Borrow one cell as `&str` (only for string-typed columns).
    pub fn get_str(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str { arena, spans } => {
                let (a, b) = *spans.get(row)?;
                Some(&arena[a as usize..b as usize])
            }
            Column::Values(v) => v.get(row)?.as_str(),
            Column::Int64(_) => None,
        }
    }

    /// Borrow one cell as `&Value` (only for [`Column::Values`] columns).
    pub fn get_value(&self, row: usize) -> Option<&Value> {
        match self {
            Column::Values(v) => v.get(row),
            _ => None,
        }
    }

    fn heap_bytes(&self) -> u64 {
        match self {
            Column::Int64(v) => 9 * v.len() as u64,
            Column::Str { arena, spans } => arena.len() as u64 + 8 * spans.len() as u64,
            Column::Values(v) => v.iter().map(|x| x.heap_size() as u64).sum(),
        }
    }

    /// Pick the storage for one column of moved values.
    fn from_values(vals: Vec<Value>) -> Column {
        if vals.iter().all(|v| matches!(v, Value::Int64(_))) {
            return Column::Int64(
                vals.iter()
                    .map(|v| match v {
                        Value::Int64(i) => *i,
                        _ => 0,
                    })
                    .collect(),
            );
        }
        if vals.iter().all(|v| matches!(v, Value::String(_))) {
            let total: usize = vals.iter().map(|v| v.as_str().map_or(0, str::len)).sum();
            if total <= u32::MAX as usize {
                let mut arena = String::with_capacity(total);
                let mut spans = Vec::with_capacity(vals.len());
                for v in &vals {
                    let s = v.as_str().unwrap_or("");
                    let start = arena.len() as u32;
                    arena.push_str(s);
                    spans.push((start, arena.len() as u32));
                }
                return Column::Str { arena, spans };
            }
        }
        Column::Values(vals)
    }
}

/// A rectangular, immutable chunk of rows stored column-wise.
#[derive(Clone, Debug)]
pub struct Batch {
    len: usize,
    cols: Vec<Column>,
    heap_bytes: u64,
}

/// A borrowed-or-owned cell used when hashing batch rows without deep
/// cloning [`Column::Values`] cells.
enum Slot<'a> {
    Ref(&'a Value),
    Owned(Value),
}

impl Batch {
    /// Build a batch from rectangular rows, detecting per-column storage.
    /// Values are moved, not cloned, so batching a freshly scanned frame
    /// costs no record copies.
    ///
    /// Returns the rows back unchanged when they are not rectangular (or
    /// empty); the caller ships those as a plain row frame instead.
    pub fn from_rows(rows: Vec<Tuple>) -> Result<Batch, Vec<Tuple>> {
        let Some(width) = rows.first().map(Vec::len) else {
            return Err(rows);
        };
        if rows.iter().any(|r| r.len() != width) {
            return Err(rows);
        }
        let n = rows.len();
        // Transpose: move every value into its column vector.
        let mut colvecs: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                colvecs[c].push(v);
            }
        }
        let cols: Vec<Column> = colvecs.into_iter().map(Column::from_values).collect();
        let heap_bytes = cols.iter().map(Column::heap_bytes).sum();
        Ok(Batch {
            len: n,
            cols,
            heap_bytes,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Approximate heap bytes of the stored values (same accounting as
    /// `Value::heap_size` for value columns; arena bytes for strings).
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }

    /// Borrow a column.
    pub fn col(&self, c: usize) -> Option<&Column> {
        self.cols.get(c)
    }

    /// Materialize one row as an owned tuple.
    pub fn row(&self, i: usize) -> Tuple {
        self.cols.iter().map(|c| c.value(i)).collect()
    }

    /// Hash the given columns of one row exactly as the row path hashes
    /// `stable_hash_many(&[&tuple[c], ...])`. Returns `None` when a column
    /// index is out of bounds (the caller reports a typed error).
    pub fn hash_row(&self, row: usize, hash_cols: &[usize]) -> Option<u64> {
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(hash_cols.len());
        for &c in hash_cols {
            let col = self.cols.get(c)?;
            if col.len() <= row {
                return None;
            }
            slots.push(match col {
                Column::Values(vs) => Slot::Ref(&vs[row]),
                other => Slot::Owned(other.value(row)),
            });
        }
        let refs: Vec<&Value> = slots
            .iter()
            .map(|s| match s {
                Slot::Ref(v) => *v,
                Slot::Owned(v) => v,
            })
            .collect();
        Some(stable_hash_many(&refs))
    }
}

/// A shared batch plus an optional selection vector: the zero-copy unit
/// that filters and connectors pass downstream.
#[derive(Clone, Debug)]
pub struct BatchSlice {
    /// The shared column store.
    pub batch: Arc<Batch>,
    /// Positions of the visible rows, in order; `None` means all rows.
    pub sel: Option<Arc<[u32]>>,
}

impl BatchSlice {
    /// A slice exposing every row of `batch`.
    pub fn full(batch: Arc<Batch>) -> Self {
        BatchSlice { batch, sel: None }
    }

    /// Number of visible rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.len(),
        }
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a slice position to a row index in the underlying batch.
    pub fn row_index(&self, pos: usize) -> usize {
        match &self.sel {
            Some(s) => s[pos] as usize,
            None => pos,
        }
    }

    /// Materialize the row at slice position `pos` as an owned tuple.
    pub fn row(&self, pos: usize) -> Tuple {
        self.batch.row(self.row_index(pos))
    }

    /// Restrict the slice to the given positions (indices into *this*
    /// slice, in order), composing with any existing selection.
    pub fn narrow(&self, keep: Vec<u32>) -> BatchSlice {
        let sel: Arc<[u32]> = match &self.sel {
            Some(s) => keep.into_iter().map(|p| s[p as usize]).collect(),
            None => keep.into(),
        };
        BatchSlice {
            batch: Arc::clone(&self.batch),
            sel: Some(sel),
        }
    }

    /// Approximate heap bytes attributable to the visible rows
    /// (proportional share of the shared batch plus the selection vector).
    pub fn heap_bytes(&self) -> u64 {
        let visible = self.len() as u64;
        let base = if self.batch.is_empty() {
            0
        } else {
            self.batch.heap_bytes() * visible / self.batch.len() as u64
        };
        base + self.sel.as_ref().map_or(0, |s| 4 * s.len() as u64)
    }
}

/// A frame is the unit moved over a connector in one send: either a plain
/// row vector (the seed representation) or a zero-copy batch slice.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Row-at-a-time payload.
    Rows(Vec<Tuple>),
    /// Batch-at-a-time payload.
    Batch(BatchSlice),
}

impl Frame {
    /// Wrap rows into a batch frame when they are rectangular, otherwise
    /// ship them as a plain row frame.
    pub fn batch_from_rows(rows: Vec<Tuple>) -> Frame {
        match Batch::from_rows(rows) {
            Ok(b) => Frame::Batch(BatchSlice::full(Arc::new(b))),
            Err(rows) => Frame::Rows(rows),
        }
    }

    /// Number of visible rows in the frame.
    pub fn len(&self) -> usize {
        match self {
            Frame::Rows(r) => r.len(),
            Frame::Batch(s) => s.len(),
        }
    }

    /// True when the frame carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes shipped with this frame (exact for rows, proportional
    /// for batch slices).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Frame::Rows(rows) => rows
                .iter()
                .map(|t| t.iter().map(|v| v.heap_size() as u64).sum::<u64>())
                .sum(),
            Frame::Batch(s) => s.heap_bytes(),
        }
    }

    /// Consume the frame as an iterator of owned rows (batch rows are
    /// materialized by cloning).
    pub fn into_rows(self) -> FrameRows {
        match self {
            Frame::Rows(r) => FrameRows::Rows(r.into_iter()),
            Frame::Batch(s) => FrameRows::Batch { slice: s, pos: 0 },
        }
    }
}

/// Owned-row iterator over either [`Frame`] variant.
pub enum FrameRows {
    /// Draining a row frame.
    Rows(std::vec::IntoIter<Tuple>),
    /// Materializing a batch slice row by row.
    Batch {
        /// The slice being drained.
        slice: BatchSlice,
        /// Next slice position to materialize.
        pos: usize,
    },
}

impl FrameRows {
    /// An exhausted iterator (initial state for streaming consumers).
    pub fn empty() -> FrameRows {
        FrameRows::Rows(Vec::new().into_iter())
    }
}

impl Iterator for FrameRows {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        match self {
            FrameRows::Rows(it) => it.next(),
            FrameRows::Batch { slice, pos } => {
                if *pos >= slice.len() {
                    return None;
                }
                let t = slice.row(*pos);
                *pos += 1;
                Some(t)
            }
        }
    }
}

/// One sort key: a column index and a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Column index to compare.
    pub col: usize,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// Compare two tuples under a sort-key list.
pub fn compare_tuples(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.col].cmp(&b[k.col]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::record;

    #[test]
    fn sort_key_compare() {
        let a = vec![Value::Int64(1), Value::from("b")];
        let b = vec![Value::Int64(1), Value::from("a")];
        assert_eq!(compare_tuples(&a, &b, &[SortKey::asc(0)]), Ordering::Equal);
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::asc(1)]),
            Ordering::Greater
        );
        assert_eq!(
            compare_tuples(&a, &b, &[SortKey::asc(0), SortKey::desc(1)]),
            Ordering::Less
        );
    }

    fn sample_rows() -> Vec<Tuple> {
        vec![
            vec![
                Value::Int64(1),
                Value::from("ada"),
                record! {"name" => "ada"},
            ],
            vec![
                Value::Int64(2),
                Value::from("bob"),
                record! {"name" => "bob"},
            ],
            vec![Value::Int64(3), Value::from(""), Value::Null],
        ]
    }

    #[test]
    fn from_rows_detects_column_types() {
        let rows = sample_rows();
        let b = Batch::from_rows(rows.clone()).expect("rectangular");
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 3);
        assert!(matches!(b.col(0), Some(Column::Int64(_))));
        assert!(matches!(b.col(1), Some(Column::Str { .. })));
        assert!(matches!(b.col(2), Some(Column::Values(_))));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&b.row(i), row);
        }
        assert_eq!(b.col(1).unwrap().get_str(1), Some("bob"));
        assert_eq!(b.col(1).unwrap().get_str(2), Some(""));
    }

    #[test]
    fn ragged_rows_fall_back_to_row_frame() {
        let rows = vec![vec![Value::Int64(1)], vec![Value::Int64(2), Value::Null]];
        assert!(Batch::from_rows(rows.clone()).is_err());
        assert!(matches!(Frame::batch_from_rows(rows), Frame::Rows(_)));
        assert!(Batch::from_rows(Vec::new()).is_err());
    }

    #[test]
    fn slice_narrow_composes_selections() {
        let b = Arc::new(Batch::from_rows(sample_rows()).unwrap());
        let all = BatchSlice::full(Arc::clone(&b));
        assert_eq!(all.len(), 3);
        let odd = all.narrow(vec![0, 2]);
        assert_eq!(odd.len(), 2);
        assert_eq!(odd.row(1)[0], Value::Int64(3));
        let last = odd.narrow(vec![1]);
        assert_eq!(last.len(), 1);
        assert_eq!(last.row_index(0), 2);
        assert_eq!(last.row(0), sample_rows()[2]);
    }

    #[test]
    fn hash_row_matches_row_path() {
        let rows = sample_rows();
        let b = Batch::from_rows(rows.clone()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            for cols in [vec![0usize], vec![1], vec![2], vec![0, 1, 2]] {
                let refs: Vec<&Value> = cols.iter().map(|c| &row[*c]).collect();
                assert_eq!(b.hash_row(i, &cols), Some(stable_hash_many(&refs)));
            }
        }
        assert_eq!(b.hash_row(0, &[7]), None);
    }

    #[test]
    fn frame_rows_iterates_both_variants() {
        let rows = sample_rows();
        let row_frame = Frame::Rows(rows.clone());
        assert_eq!(row_frame.into_rows().collect::<Vec<_>>(), rows);
        let batch_frame = Frame::batch_from_rows(rows.clone());
        assert!(matches!(batch_frame, Frame::Batch(_)));
        assert_eq!(batch_frame.len(), 3);
        assert_eq!(batch_frame.into_rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn frame_heap_bytes_proportional_for_slices() {
        let rows = sample_rows();
        let full = Frame::batch_from_rows(rows.clone());
        let full_bytes = full.heap_bytes();
        assert!(full_bytes > 0);
        if let Frame::Batch(slice) = full {
            let half = slice.narrow(vec![0]);
            assert!(half.heap_bytes() < full_bytes);
        }
    }
}
