//! The job executor: instantiate every operator on every partition, wire
//! connectors as channels, run, and collect results + statistics.
//!
//! Execution is supervised: every operator instance runs under
//! `catch_unwind`, the first failure (error, panic, or deadline) trips the
//! job's shared [`CancelToken`], and all other partitions observe it at
//! their next cooperative check instead of running — or blocking — to
//! completion.
//!
//! Two execution modes share that supervision contract:
//!
//! * **Pipelined** (the default, [`JobOptions::pool`] = `None`): every
//!   operator partition gets its own scoped OS thread and all operators
//!   run concurrently. Edge channels are bounded, so a fast producer
//!   feeding a slow consumer exerts backpressure rather than buffering
//!   without limit.
//! * **Pooled** ([`JobOptions::pool`] set): tasks run on a shared,
//!   instance-lifetime [`WorkerPool`] instead of fresh threads. A fixed
//!   pool would deadlock if a running task could block on a task still
//!   queued behind it, so this mode executes *stage-at-a-time* (like real
//!   Hyracks activity clusters): an operator's tasks are only submitted
//!   once every upstream operator has completed, its inputs are then fully
//!   buffered and closed, and edge channels are unbounded so sends never
//!   block either. Any pool size ≥ 1 therefore makes progress, and results
//!   are identical to the pipelined mode (operators are deterministic per
//!   partition and routing does not depend on interleaving). The
//!   backpressure lost to unbounded buffering is re-bounded by the
//!   per-query [`JobOptions::memory_budget`].

use crate::context::ClusterContext;
use crate::error::{panic_message, CancelToken, ExecError, OpError};
use crate::job::{JobSpec, OpId, PhysicalOp};
use crate::ops::{run_operator, Out, Router};
use crate::pool::{PoolScope, WorkerPool};
use crate::tuple::{Frame, Tuple};
use asterix_storage::{MemoryBudget, QueryCounters};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity, in frames, of each per-(edge, consumer-partition) channel.
/// Generous enough that small jobs never block, small enough that a
/// runaway producer is throttled by its slowest consumer.
pub const EDGE_CHANNEL_FRAMES: usize = 64;

/// Incremental consumer of result rows for streaming execution.
///
/// When installed via [`JobOptions::result_sink`], the `ResultSink`
/// operator hands each arriving frame's rows to this callback instead
/// of buffering them into the job's result vector — the foundation of
/// the HTTP streaming endpoint, where large similarity-join results
/// must never materialize server-side. Delivery happens on the sink
/// operator's thread in frame-arrival order. Returning `Err` (e.g. the
/// downstream client disconnected) fails the sink operator, which
/// cancels every other partition cooperatively.
#[derive(Clone)]
pub struct ResultSink(Arc<dyn Fn(Vec<Tuple>) -> Result<(), String> + Send + Sync>);

impl ResultSink {
    /// Wrap a delivery callback.
    pub fn new<F>(f: F) -> ResultSink
    where
        F: Fn(Vec<Tuple>) -> Result<(), String> + Send + Sync + 'static,
    {
        ResultSink(Arc::new(f))
    }

    /// Deliver one frame of result rows.
    pub fn deliver(&self, rows: Vec<Tuple>) -> Result<(), String> {
        (self.0)(rows)
    }
}

impl std::fmt::Debug for ResultSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ResultSink(..)")
    }
}

/// Knobs for one job run.
#[derive(Clone, Debug, Default)]
pub struct JobOptions {
    /// Wall-clock budget for the whole job; exceeded ⇒
    /// [`ExecError::Timeout`]. `None` = no deadline.
    pub timeout: Option<Duration>,
    /// Per-query storage counters: when set, the executor scopes this
    /// handle onto every operator thread so all storage-layer events
    /// (cache hits/misses, index probes, …) are attributed to this job
    /// even while other jobs run concurrently.
    pub counters: Option<Arc<QueryCounters>>,
    /// Disable the batched primary-index lookup and probe-token
    /// memoization hot paths, falling back to the per-tuple
    /// implementations. Results are identical either way; this exists so
    /// benchmarks can measure the optimizations against a true baseline.
    pub disable_hotpath: bool,
    /// Disable batch-at-a-time execution (batch frames, vectorized verify
    /// kernels, rank-array T-occurrence merging), reverting to the seed
    /// row-at-a-time path. Results are identical either way; this exists
    /// so benchmarks can measure vectorization against a true baseline.
    pub disable_batching: bool,
    /// Disable the bit-parallel / galloping similarity kernels (Myers
    /// edit distance in the verify kernels, full-intersection gallop in
    /// the T-occurrence merge), pinning the scalar banded-DP and
    /// rank/count merges the batched path used before. Results are
    /// identical either way; this exists so benchmarks can measure the
    /// kernels against the batched-but-scalar baseline.
    pub disable_kernels: bool,
    /// Per-query trace plus the span id to parent operator spans under
    /// (the caller's `execute` span). When set, every operator partition
    /// records one span with its wall time.
    pub trace: Option<(Arc<asterix_storage::Trace>, u64)>,
    /// Run the job's tasks on this shared worker pool (stage-at-a-time)
    /// instead of spawning one thread per operator-partition. `None` =
    /// the pipelined per-query `thread::scope` executor.
    pub pool: Option<Arc<WorkerPool>>,
    /// Use this caller-created cancel token instead of making a fresh one.
    /// Lets the caller install the token *before* the job starts (e.g.
    /// while the query waits for admission) so external cancellation works
    /// over the query's whole lifetime. When set, [`JobOptions::timeout`]
    /// is ignored here — encode the deadline in the token itself.
    pub cancel: Option<Arc<CancelToken>>,
    /// Per-query memory budget charged by connector frame sends (and,
    /// softly, postings-cache installs). Exceeding it stops the job with
    /// [`ExecError::MemoryBudgetExceeded`].
    pub memory_budget: Option<Arc<MemoryBudget>>,
    /// Live per-operator progress counters shared with observers (the
    /// running-query registry). When set, every task marks itself
    /// started/finished in its operator's slot and counts pushed tuples
    /// live via relaxed atomics; observers sample mid-execution without
    /// pausing anything.
    pub progress: Option<Arc<crate::progress::JobProgress>>,
    /// Stream result frames to this sink as they arrive instead of
    /// buffering them; the job's returned tuple vector is then empty.
    /// See [`ResultSink`].
    pub result_sink: Option<ResultSink>,
}

/// Per-operator runtime statistics, aggregated over partitions.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Operator name (e.g. `"dataset-scan"`, `"similarity-join"`).
    pub name: &'static str,
    /// Total tuples consumed across partitions.
    pub input_tuples: u64,
    /// Total tuples produced across partitions.
    pub output_tuples: u64,
    /// Longest per-partition wall time (the critical path contribution).
    pub max_partition_time: Duration,
    /// Most tuples consumed by any single partition instance — the
    /// hardware-independent critical-path proxy used by the scale-out /
    /// speed-up experiments when the host cannot run partitions on
    /// separate cores.
    pub max_partition_input: u64,
    /// Frames sent downstream across all partitions (a frame is one
    /// channel send of up to `FRAME_CAPACITY` tuples).
    pub frames_emitted: u64,
    /// Of those, frames that carried a shared batch slice (zero-copy
    /// batch-at-a-time sends).
    pub batch_frames_emitted: u64,
    /// Heap bytes of the values sent downstream across all partitions.
    pub bytes_emitted: u64,
    /// Wall time of every partition instance, as (partition, time).
    pub partition_times: Vec<(usize, Duration)>,
}

/// Statistics for a whole job run.
#[derive(Clone, Debug, Default)]
pub struct JobStats {
    /// Aggregated runtime statistics per operator.
    pub per_op: HashMap<OpId, OpStats>,
    /// Wall time of the whole job (admission excluded).
    pub elapsed: Duration,
}

impl JobStats {
    /// Output-tuple count of the first operator with the given name
    /// (e.g. candidate counts from "secondary-index-search" for Table 6).
    pub fn output_of(&self, op_name: &str) -> Option<u64> {
        let mut ids: Vec<(&OpId, &OpStats)> = self
            .per_op
            .iter()
            .filter(|(_, s)| s.name == op_name)
            .collect();
        ids.sort_by_key(|(id, _)| **id);
        ids.first().map(|(_, s)| s.output_tuples)
    }

    /// Simulated critical-path work: the sum over operators of the
    /// busiest partition's input tuples. Under ideal parallel hardware
    /// this is proportional to the job's wall time; it is what the
    /// scale-out and speed-up experiments report on hosts whose cores
    /// cannot actually run the partitions concurrently.
    pub fn critical_path_tuples(&self) -> u64 {
        self.per_op.values().map(|s| s.max_partition_input).sum()
    }

    /// Sum of output tuples across all operators with the given name.
    pub fn total_output_of(&self, op_name: &str) -> u64 {
        self.per_op
            .values()
            .filter(|s| s.name == op_name)
            .map(|s| s.output_tuples)
            .sum()
    }
}

/// Execute a job on the cluster with default options (no deadline),
/// returning the sink's tuples (unordered unless the plan sorted them)
/// and per-operator statistics.
pub fn run_job(job: &JobSpec, ctx: &ClusterContext) -> Result<(Vec<Tuple>, JobStats), ExecError> {
    run_job_with(job, ctx, &JobOptions::default())
}

/// Execute a job under the given options. The first operator failure
/// (typed error or caught panic) or an elapsed deadline cancels all other
/// partitions cooperatively; the originating [`ExecError`] is returned.
pub fn run_job_with(
    job: &JobSpec,
    ctx: &ClusterContext,
    options: &JobOptions,
) -> Result<(Vec<Tuple>, JobStats), ExecError> {
    job.validate().map_err(ExecError::InvalidJob)?;
    let started = Instant::now();

    let cancel = match &options.cancel {
        Some(token) => token.clone(),
        None => Arc::new(match options.timeout {
            Some(budget) => CancelToken::with_timeout(budget),
            None => CancelToken::new(),
        }),
    };
    ctx.install_cancel(cancel.clone());
    let result = match &options.pool {
        Some(pool) => run_pooled(job, ctx, options, pool, &cancel, started),
        None => run_pipelined(job, ctx, options, &cancel, started),
    };
    // Clear only our own token: an unconditional clear would clobber the
    // token of a job that started concurrently after us.
    ctx.clear_cancel_if(&cancel);
    result
}

/// Borrowed environment shared by every operator task of one run.
struct TaskShared<'a> {
    ctx: &'a ClusterContext,
    cancel: &'a Arc<CancelToken>,
    options: &'a JobOptions,
    sink_tuples: &'a Mutex<Vec<Tuple>>,
    stats: &'a Mutex<HashMap<OpId, OpStats>>,
}

/// Run one operator partition: scope per-query attribution onto the
/// current thread, supervise the operator body with `catch_unwind`, and
/// either accumulate its stats or report its (typed) failure. Identical
/// for both execution modes — only who provides the thread differs.
fn run_task(
    shared: &TaskShared<'_>,
    op: &PhysicalOp,
    op_id: OpId,
    partition: usize,
    inputs: Vec<Receiver<Frame>>,
    routers: Vec<Router>,
    report: &(dyn Fn(ExecError) + Sync),
) {
    // Attribute every storage event on this thread to the owning query
    // (concurrent jobs each scope their own handle, so their stats stay
    // independent). Same pattern for the memory budget.
    let _counter_scope = shared.options.counters.as_ref().map(|c| c.enter());
    let _budget_scope = shared.options.memory_budget.as_ref().map(|b| b.enter());
    // One span per operator partition, parented under the caller's
    // `execute` span (explicit id — the parent lives on another thread's
    // stack).
    let _span = shared
        .options
        .trace
        .as_ref()
        .map(|(t, parent)| t.span_with(op.name(), Some(*parent), Some(partition)));
    // Live progress: mark this partition instance started and hand its
    // operator's counter block to `Out` so pushed tuples count as they
    // happen, not at task end.
    let live = shared
        .options
        .progress
        .as_ref()
        .and_then(|p| p.slot(op_id))
        .cloned();
    if let Some(p) = &live {
        p.task_started();
    }
    let t0 = Instant::now();
    // Result rows either buffer into the job's vector (the default) or
    // stream to the caller's sink as frames arrive.
    let sink_target = match &shared.options.result_sink {
        Some(s) => crate::ops::SinkTarget::Stream(s),
        None => crate::ops::SinkTarget::Buffer(shared.sink_tuples),
    };
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_operator(
            op,
            partition,
            inputs,
            Out::new(routers).with_live(live.clone()),
            shared.ctx,
            shared.cancel,
            sink_target,
            crate::ops::OpFlags {
                disable_hotpath: shared.options.disable_hotpath,
                disable_batching: shared.options.disable_batching,
                disable_kernels: shared.options.disable_kernels,
            },
        )
    }));
    let elapsed = t0.elapsed();
    let outcome = match caught {
        Ok(Ok(io)) => Ok(io),
        Ok(Err(OpError::Exec(e))) => Err(e),
        Ok(Err(OpError::Failed(message))) => Err(ExecError::Operator {
            op: format!("{op_id} ({})", op.name()),
            partition,
            message,
        }),
        Err(payload) => Err(ExecError::Panic {
            op: format!("{op_id} ({})", op.name()),
            partition,
            message: panic_message(payload.as_ref()),
        }),
    };
    if let Some(p) = &live {
        // Finished (successfully or not) — input counts are only known
        // from the operator's return value, so failures fold in zero.
        p.task_finished(match &outcome {
            Ok((input_tuples, _)) => *input_tuples,
            Err(_) => 0,
        });
    }
    match outcome {
        Ok((input_tuples, out_counts)) => {
            let mut st = shared.stats.lock();
            let entry = st.entry(op_id).or_insert_with(|| OpStats {
                name: op.name(),
                ..OpStats::default()
            });
            entry.input_tuples += input_tuples;
            entry.output_tuples += out_counts.tuples;
            entry.frames_emitted += out_counts.frames;
            entry.batch_frames_emitted += out_counts.batch_frames;
            entry.bytes_emitted += out_counts.bytes;
            entry.max_partition_time = entry.max_partition_time.max(elapsed);
            entry.max_partition_input = entry.max_partition_input.max(input_tuples);
            entry.partition_times.push((partition, elapsed));
        }
        Err(e) => report(e),
    }
}

/// The pipelined executor: one scoped OS thread per operator partition,
/// all operators running concurrently, bounded edges for backpressure.
fn run_pipelined(
    job: &JobSpec,
    ctx: &ClusterContext,
    options: &JobOptions,
    cancel: &Arc<CancelToken>,
    started: Instant,
) -> Result<(Vec<Tuple>, JobStats), ExecError> {
    let p = ctx.num_partitions();

    // Channels: one bounded (sender, receiver) pair per (edge, consumer
    // partition). Producers of an edge share clones of all its senders.
    struct EdgeChannels {
        senders: Vec<Sender<Frame>>,
        receivers: Vec<Option<Receiver<Frame>>>,
    }
    let mut edge_channels: Vec<EdgeChannels> = Vec::with_capacity(job.edges.len());
    for _ in &job.edges {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = bounded(EDGE_CHANNEL_FRAMES);
            senders.push(tx);
            receivers.push(Some(rx));
        }
        edge_channels.push(EdgeChannels { senders, receivers });
    }

    let sink_tuples: Mutex<Vec<Tuple>> = Mutex::new(Vec::new());
    let stats: Mutex<HashMap<OpId, OpStats>> = Mutex::new(HashMap::new());
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);

    // Record a failure (keeping only the first) and trip the token so
    // every other partition unwinds at its next cooperative check.
    let report = |e: ExecError| {
        let mut slot = first_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        cancel.cancel();
    };
    let shared = TaskShared {
        ctx,
        cancel,
        options,
        sink_tuples: &sink_tuples,
        stats: &stats,
    };

    std::thread::scope(|scope| {
        for (op_id, op) in &job.ops {
            // Edge indices by role.
            let input_edges: Vec<usize> = {
                let mut v: Vec<(usize, usize)> = job
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.to == *op_id)
                    .map(|(i, e)| (e.input, i))
                    .collect();
                v.sort();
                v.into_iter().map(|(_, i)| i).collect()
            };
            let output_edges: Vec<usize> = job
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.from == *op_id)
                .map(|(i, _)| i)
                .collect();

            for partition in 0..p {
                // `validate()` rejects double-consumed input slots, so each
                // receiver is taken exactly once; a `None` here means an
                // internal wiring bug, reported as an error, never a panic.
                let mut inputs: Vec<Receiver<Frame>> = Vec::with_capacity(input_edges.len());
                let mut wiring_error = None;
                for ei in &input_edges {
                    match edge_channels[*ei].receivers[partition].take() {
                        Some(rx) => inputs.push(rx),
                        None => {
                            wiring_error = Some(ExecError::InvalidJob(format!(
                                "{op_id} ({}) partition {partition}: input edge already consumed",
                                op.name()
                            )));
                            break;
                        }
                    }
                }
                if let Some(e) = wiring_error {
                    report(e);
                    continue;
                }
                let routers: Vec<Router> = output_edges
                    .iter()
                    .map(|ei| {
                        Router::new(
                            job.edges[*ei].connector.clone(),
                            edge_channels[*ei].senders.clone(),
                            partition,
                            cancel.clone(),
                        )
                    })
                    .collect();
                let report = &report;
                let shared = &shared;
                let op_id = *op_id;
                scope.spawn(move || {
                    run_task(shared, op, op_id, partition, inputs, routers, report);
                });
            }
        }
        // Senders for every edge are still alive in `edge_channels`; drop
        // them so end-of-stream can propagate once producers finish.
        for ec in &mut edge_channels {
            ec.senders.clear();
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    // ResultSink counts its own stats under its OpId; subtract nothing.
    let per_op = stats.into_inner();
    Ok((
        sink_tuples.into_inner(),
        JobStats {
            per_op,
            elapsed: started.elapsed(),
        },
    ))
}

/// Completion notice: sent (via `Drop`, so panics still notify) when one
/// operator-partition task of the pooled executor finishes.
struct DoneNotice {
    tx: Sender<usize>,
    op_index: usize,
}

impl Drop for DoneNotice {
    fn drop(&mut self) {
        let _ = self.tx.send(self.op_index);
    }
}

/// Submit all `p` partition tasks of one operator to the pool. Called only
/// once every upstream operator has completed, so the tasks' inputs are
/// fully buffered and closed and the tasks never block on each other.
/// Returns the number of tasks submitted.
#[allow(clippy::too_many_arguments)]
fn submit_op<'env>(
    scope: &PoolScope<'env, '_>,
    job: &'env JobSpec,
    op_index: usize,
    p: usize,
    edge_receivers: &mut [Vec<Option<Receiver<Frame>>>],
    edge_senders: &[Vec<Sender<Frame>>],
    input_edges: &[Vec<usize>],
    output_edges: &[Vec<usize>],
    shared: &'env TaskShared<'env>,
    report: &'env (dyn Fn(ExecError) + Sync),
    done_tx: &Sender<usize>,
) -> usize {
    let (op_id, op) = (&job.ops[op_index].0, &job.ops[op_index].1);
    let mut submitted = 0;
    // `partition` indexes the inner dimension of several parallel edge
    // vectors; an enumerate over any single one of them would misread.
    #[allow(clippy::needless_range_loop)]
    for partition in 0..p {
        let mut inputs: Vec<Receiver<Frame>> = Vec::with_capacity(input_edges[op_index].len());
        let mut wiring_error = None;
        for ei in &input_edges[op_index] {
            match edge_receivers[*ei][partition].take() {
                Some(rx) => inputs.push(rx),
                None => {
                    wiring_error = Some(ExecError::InvalidJob(format!(
                        "{op_id} ({}) partition {partition}: input edge already consumed",
                        op.name()
                    )));
                    break;
                }
            }
        }
        if let Some(e) = wiring_error {
            report(e);
            continue;
        }
        let routers: Vec<Router> = output_edges[op_index]
            .iter()
            .map(|ei| {
                Router::new(
                    job.edges[*ei].connector.clone(),
                    edge_senders[*ei].clone(),
                    partition,
                    shared.cancel.clone(),
                )
            })
            .collect();
        let op_id = *op_id;
        let notice = DoneNotice {
            tx: done_tx.clone(),
            op_index,
        };
        scope.submit(move || {
            let _notice = notice;
            run_task(shared, op, op_id, partition, inputs, routers, report);
        });
        submitted += 1;
    }
    submitted
}

/// The pooled executor: stage-at-a-time execution on a shared
/// [`WorkerPool`]. The calling thread acts as the job driver — it submits
/// operators whose upstreams have all completed, collects per-task
/// completion notices, and closes each completed operator's output edges
/// so downstream tasks observe end-of-stream after draining the buffer.
fn run_pooled(
    job: &JobSpec,
    ctx: &ClusterContext,
    options: &JobOptions,
    pool: &WorkerPool,
    cancel: &Arc<CancelToken>,
    started: Instant,
) -> Result<(Vec<Tuple>, JobStats), ExecError> {
    let p = ctx.num_partitions();
    let num_ops = job.ops.len();

    // Unbounded channels: a bounded send could block a pooled task on a
    // consumer task that is not scheduled yet (deadlock on a full pool).
    // The per-query memory budget re-bounds what backpressure no longer
    // does.
    let mut edge_senders: Vec<Vec<Sender<Frame>>> = Vec::with_capacity(job.edges.len());
    let mut edge_receivers: Vec<Vec<Option<Receiver<Frame>>>> =
        Vec::with_capacity(job.edges.len());
    for _ in &job.edges {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        edge_senders.push(senders);
        edge_receivers.push(receivers);
    }

    // Edge indices by role, per operator (ops are indexed by OpId.0).
    let mut input_edges: Vec<Vec<usize>> = vec![Vec::new(); num_ops];
    let mut output_edges: Vec<Vec<usize>> = vec![Vec::new(); num_ops];
    for (i, e) in job.edges.iter().enumerate() {
        output_edges[e.from.0].push(i);
    }
    for (op_index, slots) in input_edges.iter_mut().enumerate() {
        let mut v: Vec<(usize, usize)> = job
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to.0 == op_index)
            .map(|(i, e)| (e.input, i))
            .collect();
        v.sort();
        *slots = v.into_iter().map(|(_, i)| i).collect();
    }
    // Distinct upstream producers per operator drive stage eligibility.
    let mut remaining_upstream = vec![0usize; num_ops];
    let mut downstream: Vec<Vec<usize>> = vec![Vec::new(); num_ops];
    for op_index in 0..num_ops {
        let ups: HashSet<usize> = input_edges[op_index]
            .iter()
            .map(|ei| job.edges[*ei].from.0)
            .collect();
        remaining_upstream[op_index] = ups.len();
        for u in ups {
            downstream[u].push(op_index);
        }
    }

    let sink_tuples: Mutex<Vec<Tuple>> = Mutex::new(Vec::new());
    let stats: Mutex<HashMap<OpId, OpStats>> = Mutex::new(HashMap::new());
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
    let report = |e: ExecError| {
        let mut slot = first_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        cancel.cancel();
    };
    let shared = TaskShared {
        ctx,
        cancel,
        options,
        sink_tuples: &sink_tuples,
        stats: &stats,
    };
    let (done_tx, done_rx) = unbounded::<usize>();

    pool.scope(|scope| {
        let report: &(dyn Fn(ExecError) + Sync) = &report;
        let shared = &shared;
        let mut partitions_done = vec![0usize; num_ops];
        let mut completed_ops = 0usize;
        let mut inflight_tasks = 0usize;

        // Source operators (no upstream) start immediately, in id order.
        for op_index in (0..num_ops).filter(|&i| remaining_upstream[i] == 0) {
            inflight_tasks += submit_op(
                scope,
                job,
                op_index,
                p,
                &mut edge_receivers,
                &edge_senders,
                &input_edges,
                &output_edges,
                shared,
                report,
                &done_tx,
            );
        }

        while completed_ops < num_ops {
            // Stop driving new stages once anything failed; in-flight
            // tasks unwind cooperatively and the scope joins them.
            if first_error.lock().is_some() {
                break;
            }
            match done_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(op_index) => {
                    inflight_tasks -= 1;
                    partitions_done[op_index] += 1;
                    if partitions_done[op_index] < p {
                        continue;
                    }
                    completed_ops += 1;
                    // The operator is done everywhere: drop its edges'
                    // master senders (its tasks' Router clones are already
                    // gone) so consumers see end-of-stream after draining.
                    for ei in &output_edges[op_index] {
                        edge_senders[*ei].clear();
                    }
                    for &d in &downstream[op_index] {
                        remaining_upstream[d] -= 1;
                        if remaining_upstream[d] == 0 {
                            inflight_tasks += submit_op(
                                scope,
                                job,
                                d,
                                p,
                                &mut edge_receivers,
                                &edge_senders,
                                &input_edges,
                                &output_edges,
                                shared,
                                report,
                                &done_tx,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Unreachable for a validated (acyclic) DAG: some task
                    // is always in flight until every op completes. Guard
                    // against an internal scheduling bug anyway.
                    if inflight_tasks == 0 {
                        report(ExecError::InvalidJob(
                            "pooled execution stalled with no tasks in flight".into(),
                        ));
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok((
        sink_tuples.into_inner(),
        JobStats {
            per_op: stats.into_inner(),
            elapsed: started.elapsed(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;
    use crate::expr::{CmpOp, Expr};
    use crate::job::{AggSpec, ConnectorKind, FaultMode, PhysicalOp, SearchMeasure};
    use crate::tuple::SortKey;
    use asterix_adm::{record, DatasetDef, IndexDef, IndexKind, Value};
    use asterix_simfn::FunctionRegistry;
    use asterix_storage::{BufferCache, Disk, PartitionStore, StorageConfig};
    use std::sync::Arc;

    /// Build a cluster with one dataset of `reviews` distributed by pk.
    fn cluster(partitions: usize, rows: &[(i64, &str, &str)]) -> ClusterContext {
        let ctx = ClusterContext::new(partitions, FunctionRegistry::with_builtins());
        let def = DatasetDef::new("ARevs", "id");
        for (pidx, pset) in ctx.partitions.iter().enumerate() {
            let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 64));
            let mut store =
                PartitionStore::new(def.clone(), pidx, cache, StorageConfig::tiny());
            store
                .create_index(&IndexDef {
                    name: "smix".into(),
                    field: "summary".into(),
                    kind: IndexKind::Keyword,
                })
                .unwrap();
            store
                .create_index(&IndexDef {
                    name: "nix".into(),
                    field: "name".into(),
                    kind: IndexKind::NGram(2),
                })
                .unwrap();
            for (id, name, summary) in rows {
                if def.partition_of(&Value::Int64(*id), partitions) == pidx {
                    store
                        .insert(record! {"id" => *id, "name" => *name, "summary" => *summary})
                        .unwrap();
                }
            }
            pset.write().insert_store(store);
        }
        ctx
    }

    fn sample_rows() -> Vec<(i64, &'static str, &'static str)> {
        vec![
            (1, "james", "this movie touched my heart"),
            (2, "mary", "the best car charger i ever bought"),
            (3, "mario", "different than my usual but good"),
            (4, "jamie", "great product fantastic gift"),
            (5, "maria", "better ever than i expected"),
            (6, "bob", "great product fantastic gift idea"),
        ]
    }

    #[test]
    fn scan_collects_all_rows() {
        let ctx = cluster(4, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sink, 0, ConnectorKind::ToOne);
        let (rows, stats) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(stats.total_output_of("dataset-scan"), 6);
    }

    #[test]
    fn select_filters() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let select = job.add(PhysicalOp::Select {
            predicate: Expr::cmp(
                CmpOp::Le,
                Expr::col(0),
                Expr::lit(3i64),
            ),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, select);
        job.connect(select, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn sort_after_gather_is_global() {
        let ctx = cluster(3, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sort = job.add(PhysicalOp::Sort {
            keys: vec![SortKey::desc(0)],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sort, 0, ConnectorKind::ToOne);
        job.pipe(sort, sink);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        let ids: Vec<i64> = rows.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn hash_join_equi() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan_l = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let scan_r = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let join = job.add(PhysicalOp::HashJoin {
            left_keys: vec![0],
            right_keys: vec![0],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan_l, join, 0, ConnectorKind::Hash(vec![0]));
        job.connect(scan_r, join, 1, ConnectorKind::Hash(vec![0]));
        job.connect(join, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 6); // self equi-join on pk
        for r in rows {
            assert_eq!(r[0], r[2]);
        }
    }

    #[test]
    fn broadcast_nested_loop_join() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan_l = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let scan_r = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        // Predicate: left.id < right.id (left cols 0-1, right cols 2-3).
        let join = job.add(PhysicalOp::NestedLoopJoin {
            predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::col(2)),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan_l, join, 0, ConnectorKind::Broadcast);
        job.connect(scan_r, join, 1, ConnectorKind::OneToOne);
        job.connect(join, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 15); // C(6,2)
    }

    #[test]
    fn group_by_count() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        // Tokenize summaries, count token frequencies globally.
        let unnest = job.add(PhysicalOp::Unnest {
            expr: Expr::call("word-tokens", vec![Expr::col(1).field("summary")]),
            with_pos: false,
        });
        let gb = job.add(PhysicalOp::HashGroupBy {
            keys: vec![2],
            aggs: vec![AggSpec::Count],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, unnest);
        job.connect(unnest, gb, 0, ConnectorKind::Hash(vec![2]));
        job.connect(gb, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        let greats: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t[0] == Value::from("great"))
            .collect();
        assert_eq!(greats.len(), 1, "hash repartition must co-locate groups");
        assert_eq!(greats[0][1], Value::Int64(2));
    }

    #[test]
    fn index_search_jaccard_candidates() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        // Constant query: "great product gift" δ=0.5 via the keyword index.
        let (_, assign) = crate::job::constant_source(
            &mut job,
            vec![Value::from("great product fantastic gift")],
        );
        let search = job.add(PhysicalOp::SecondaryIndexSearch {
            dataset: "ARevs".into(),
            index: "smix".into(),
            key_col: 0,
            measure: SearchMeasure::Jaccard { delta: 0.5 },
            pre_tokens: None,
        });
        let sort = job.add(PhysicalOp::Sort { keys: vec![SortKey::asc(1)] });
        let lookup = job.add(PhysicalOp::PrimaryIndexLookup {
            dataset: "ARevs".into(),
            pk_col: 1,
        });
        let verify = job.add(PhysicalOp::Select {
            predicate: Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![Expr::col(0)]),
                        Expr::call("word-tokens", vec![Expr::col(2).field("summary")]),
                    ],
                ),
                Expr::lit(0.5f64),
            ),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(assign, search, 0, ConnectorKind::Broadcast);
        job.pipe(search, sort);
        job.pipe(sort, lookup);
        job.pipe(lookup, verify);
        job.connect(verify, sink, 0, ConnectorKind::ToOne);
        let (rows, stats) = run_job(&job, &ctx).unwrap();
        let mut ids: Vec<i64> = rows.iter().map(|t| t[1].as_i64().unwrap()).collect();
        ids.sort();
        assert_eq!(ids, vec![4, 6]);
        // Candidates include at least the true results.
        assert!(stats.total_output_of("secondary-index-search") >= 2);
    }

    #[test]
    fn index_search_edit_distance() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let (_, assign) = crate::job::constant_source(&mut job, vec![Value::from("marla")]);
        let search = job.add(PhysicalOp::SecondaryIndexSearch {
            dataset: "ARevs".into(),
            index: "nix".into(),
            key_col: 0,
            measure: SearchMeasure::EditDistance { k: 1 },
            pre_tokens: None,
        });
        let lookup = job.add(PhysicalOp::PrimaryIndexLookup {
            dataset: "ARevs".into(),
            pk_col: 1,
        });
        let verify = job.add(PhysicalOp::Select {
            predicate: Expr::call(
                "edit-distance-check",
                vec![Expr::col(0), Expr::col(2).field("name"), Expr::lit(1i64)],
            ),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(assign, search, 0, ConnectorKind::Broadcast);
        job.pipe(search, lookup);
        job.pipe(lookup, verify);
        job.connect(verify, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        let ids: Vec<i64> = rows.iter().map(|t| t[1].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![5]); // only "maria" is within distance 1
    }

    #[test]
    fn union_merges_streams() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan1 = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let scan2 = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let union = job.add(PhysicalOp::Union);
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan1, union, 0, ConnectorKind::OneToOne);
        job.connect(scan2, union, 1, ConnectorKind::OneToOne);
        job.connect(union, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn replicated_output_feeds_two_consumers() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sel_low = job.add(PhysicalOp::Select {
            predicate: Expr::cmp(CmpOp::Le, Expr::col(0), Expr::lit(3i64)),
        });
        let sel_high = job.add(PhysicalOp::Select {
            predicate: Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(3i64)),
        });
        let union = job.add(PhysicalOp::Union);
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, sel_low);
        job.connect(scan, sel_high, 0, ConnectorKind::OneToOne);
        job.connect(sel_low, union, 0, ConnectorKind::OneToOne);
        job.connect(sel_high, union, 1, ConnectorKind::OneToOne);
        job.connect(union, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 6, "split + union must reconstruct the input");
    }

    #[test]
    fn stream_pos_assigns_global_rank_after_gather() {
        let ctx = cluster(3, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sort = job.add(PhysicalOp::Sort {
            keys: vec![SortKey::asc(0)],
        });
        let pos = job.add(PhysicalOp::StreamPos);
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sort, 0, ConnectorKind::ToOne);
        job.pipe(sort, pos);
        job.pipe(pos, sink);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        for t in rows {
            // id i (1-based) gets rank i-1 (0-based).
            assert_eq!(t[0].as_i64().unwrap() - 1, t[2].as_i64().unwrap());
        }
    }

    #[test]
    fn limit_truncates() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let gather = job.add(PhysicalOp::Materialize);
        let limit = job.add(PhysicalOp::Limit { n: 2 });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, gather, 0, ConnectorKind::ToOne);
        job.pipe(gather, limit);
        job.pipe(limit, sink);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn runtime_error_propagates() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let bad = job.add(PhysicalOp::Assign {
            exprs: vec![Expr::call("no-such-function", vec![])],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, bad);
        job.connect(bad, sink, 0, ConnectorKind::ToOne);
        let err = run_job(&job, &ctx).unwrap_err();
        assert!(
            matches!(err, ExecError::Operator { .. }),
            "expected operator error, got: {err:?}"
        );
        assert!(err.to_string().contains("no-such-function"), "got: {err}");
    }

    #[test]
    fn unknown_dataset_errors() {
        let ctx = cluster(1, &[]);
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "nope".into(),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sink, 0, ConnectorKind::ToOne);
        assert!(run_job(&job, &ctx).is_err());
    }

    #[test]
    fn stats_record_tuple_counts() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sink, 0, ConnectorKind::ToOne);
        let (_, stats) = run_job(&job, &ctx).unwrap();
        assert_eq!(stats.output_of("dataset-scan"), Some(6));
        assert_eq!(stats.output_of("result-sink"), Some(6));
        assert!(stats.output_of("no-such-op").is_none());
    }

    #[test]
    fn aggregate_functions_sum_min_max_collect() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        // Group everything into one bucket keyed by a constant.
        let key = job.add(PhysicalOp::Assign {
            exprs: vec![Expr::lit(1i64)],
        });
        let gb = job.add(PhysicalOp::HashGroupBy {
            keys: vec![2],
            aggs: vec![
                AggSpec::Count,
                AggSpec::Sum(0),
                AggSpec::Min(0),
                AggSpec::Max(0),
                AggSpec::CollectSortedSet(0),
            ],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, key);
        job.connect(key, gb, 0, ConnectorKind::Hash(vec![2]));
        job.connect(gb, sink, 0, ConnectorKind::ToOne);
        let (rows, _) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r[1], Value::Int64(6)); // count
        assert_eq!(r[2], Value::Int64(21)); // sum of ids 1..=6
        assert_eq!(r[3], Value::Int64(1)); // min
        assert_eq!(r[4], Value::Int64(6)); // max
        assert_eq!(r[5].len(), Some(6)); // collected distinct ids
    }

    #[test]
    fn frames_cross_capacity_boundaries() {
        // More rows than FRAME_CAPACITY must flow through hash
        // repartitioning without loss or duplication.
        let rows: Vec<(i64, String, String)> = (0..1000)
            .map(|i| (i, format!("user{i}"), format!("summary {}", i % 7)))
            .collect();
        let borrowed: Vec<(i64, &str, &str)> = rows
            .iter()
            .map(|(i, a, b)| (*i, a.as_str(), b.as_str()))
            .collect();
        let ctx = cluster(3, &borrowed);
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let shuffle = job.add(PhysicalOp::Project { cols: vec![0] });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, shuffle, 0, ConnectorKind::Hash(vec![0]));
        job.connect(shuffle, sink, 0, ConnectorKind::ToOne);
        let (out, _) = run_job(&job, &ctx).unwrap();
        let mut ids: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        ids.sort();
        assert_eq!(ids, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn materialize_preserves_stream() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let mat = job.add(PhysicalOp::Materialize);
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, mat);
        job.connect(mat, sink, 0, ConnectorKind::ToOne);
        let (rows, stats) = run_job(&job, &ctx).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(stats.total_output_of("materialize"), 6);
    }

    /// scan → fault-inject → sink over 2 partitions; the chosen mode on
    /// partition 1 must surface as the matching typed error.
    fn faulty_job(mode: FaultMode) -> (ClusterContext, JobSpec) {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let fault = job.add(PhysicalOp::FaultInject {
            partition: 1,
            after_tuples: 1,
            mode,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, fault);
        job.connect(fault, sink, 0, ConnectorKind::ToOne);
        (ctx, job)
    }

    #[test]
    fn injected_panic_is_caught_and_typed() {
        let (ctx, job) = faulty_job(FaultMode::Panic);
        let err = run_job(&job, &ctx).unwrap_err();
        match &err {
            ExecError::Panic {
                partition, message, ..
            } => {
                assert_eq!(*partition, 1);
                assert!(message.contains("injected panic"), "got: {message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn injected_error_is_typed() {
        let (ctx, job) = faulty_job(FaultMode::Error);
        let err = run_job(&job, &ctx).unwrap_err();
        match &err {
            ExecError::Operator {
                partition, message, ..
            } => {
                assert_eq!(*partition, 1);
                assert!(message.contains("injected operator failure"), "got: {message}");
            }
            other => panic!("expected operator error, got {other:?}"),
        }
    }

    #[test]
    fn deadline_produces_timeout_error() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        // ~100 ms per tuple against a 40 ms budget: the deadline must win.
        let slow = job.add(PhysicalOp::Throttle {
            micros_per_tuple: 100_000,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, slow);
        job.connect(slow, sink, 0, ConnectorKind::ToOne);
        let started = Instant::now();
        let err = run_job_with(
            &job,
            &ctx,
            &JobOptions {
                timeout: Some(Duration::from_millis(40)),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ExecError::Timeout(_)),
            "expected timeout, got {err:?}"
        );
        // Cooperative cancellation must unwind promptly, far inside the
        // ~600 ms the job would need to finish.
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "timeout took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn external_cancel_stops_job() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let slow = job.add(PhysicalOp::Throttle {
            micros_per_tuple: 100_000,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, slow);
        job.connect(slow, sink, 0, ConnectorKind::ToOne);
        let err = std::thread::scope(|s| {
            let ctx = &ctx;
            let job = &job;
            s.spawn(move || {
                // Let the job install its token, then cancel it. Bounded
                // retries so the helper can never outlive the test.
                std::thread::sleep(Duration::from_millis(30));
                for _ in 0..200 {
                    if ctx.cancel_active() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
            run_job(job, ctx).unwrap_err()
        });
        assert!(
            matches!(err, ExecError::Cancelled),
            "expected cancelled, got {err:?}"
        );
    }

    #[test]
    fn invalid_job_is_typed() {
        let job = JobSpec::new(); // no sink
        let ctx = cluster(1, &[]);
        let err = run_job(&job, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::InvalidJob(_)), "got {err:?}");
    }

    #[test]
    fn failure_on_one_partition_cancels_slow_siblings() {
        // Partition 0 fails almost immediately while partition 1 crawls;
        // supervision must cancel the slow partition instead of letting the
        // job run (or hang) to completion.
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let slow = job.add(PhysicalOp::Throttle {
            micros_per_tuple: 50_000,
        });
        let fault = job.add(PhysicalOp::FaultInject {
            partition: 0,
            after_tuples: 0,
            mode: FaultMode::Error,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, slow);
        job.pipe(slow, fault);
        job.connect(fault, sink, 0, ConnectorKind::ToOne);
        let started = Instant::now();
        let err = run_job(&job, &ctx).unwrap_err();
        assert!(
            matches!(err, ExecError::Operator { .. } | ExecError::Cancelled),
            "got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cancellation too slow: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn critical_path_tuples_accounts_busiest_partition() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sink, 0, ConnectorKind::ToOne);
        let (_, stats) = run_job(&job, &ctx).unwrap();
        let cp = stats.critical_path_tuples();
        // The sink consumes all 6 rows on one partition.
        assert!(cp >= 6, "critical path {cp}");
    }

    fn pooled(pool: &Arc<crate::pool::WorkerPool>) -> JobOptions {
        JobOptions {
            pool: Some(pool.clone()),
            ..JobOptions::default()
        }
    }

    #[test]
    fn pooled_scan_matches_pipelined() {
        let ctx = cluster(4, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sort = job.add(PhysicalOp::Sort {
            keys: vec![SortKey::asc(0)],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sort, 0, ConnectorKind::ToOne);
        job.pipe(sort, sink);
        let (seed_rows, _) = run_job(&job, &ctx).unwrap();
        // A 1-worker pool must still complete any DAG (stage-at-a-time
        // tasks never wait on each other).
        let pool = crate::pool::WorkerPool::new(1);
        let (pooled_rows, stats) = run_job_with(&job, &ctx, &pooled(&pool)).unwrap();
        assert_eq!(seed_rows, pooled_rows);
        assert_eq!(stats.total_output_of("dataset-scan"), 6);
    }

    #[test]
    fn pooled_multi_input_join_matches_pipelined() {
        let ctx = cluster(3, &sample_rows());
        let mut job = JobSpec::new();
        let scan_l = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let scan_r = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let join = job.add(PhysicalOp::HashJoin {
            left_keys: vec![0],
            right_keys: vec![0],
        });
        let sort = job.add(PhysicalOp::Sort {
            keys: vec![SortKey::asc(0)],
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan_l, join, 0, ConnectorKind::Hash(vec![0]));
        job.connect(scan_r, join, 1, ConnectorKind::Hash(vec![0]));
        job.connect(join, sort, 0, ConnectorKind::ToOne);
        job.pipe(sort, sink);
        let (seed_rows, _) = run_job(&job, &ctx).unwrap();
        let pool = crate::pool::WorkerPool::new(2);
        let (pooled_rows, _) = run_job_with(&job, &ctx, &pooled(&pool)).unwrap();
        assert_eq!(seed_rows, pooled_rows);
    }

    #[test]
    fn pooled_runs_reuse_one_pool_across_jobs() {
        let ctx = cluster(2, &sample_rows());
        let pool = crate::pool::WorkerPool::new(2);
        for _ in 0..5 {
            let mut job = JobSpec::new();
            let scan = job.add(PhysicalOp::DatasetScan {
                dataset: "ARevs".into(),
            });
            let sink = job.add(PhysicalOp::ResultSink);
            job.connect(scan, sink, 0, ConnectorKind::ToOne);
            let (rows, _) = run_job_with(&job, &ctx, &pooled(&pool)).unwrap();
            assert_eq!(rows.len(), 6);
        }
        // A worker decrements `busy` just *after* its task signals scope
        // completion, so the gauge can trail `run_job_with` returning by
        // an instant — poll briefly instead of sampling once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.busy() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.queued_tasks(), 0);
    }

    #[test]
    fn pooled_error_and_panic_stay_typed() {
        for mode in [FaultMode::Error, FaultMode::Panic] {
            let (ctx, job) = faulty_job(mode);
            let pool = crate::pool::WorkerPool::new(2);
            let err = run_job_with(&job, &ctx, &pooled(&pool)).unwrap_err();
            match (mode, &err) {
                (FaultMode::Error, ExecError::Operator { .. })
                | (FaultMode::Panic, ExecError::Panic { .. })
                | (_, ExecError::Cancelled) => {}
                other => panic!("unexpected: {other:?}"),
            }
            // The pool survives a failed job and can run another.
            let ctx2 = cluster(2, &sample_rows());
            let mut ok_job = JobSpec::new();
            let scan = ok_job.add(PhysicalOp::DatasetScan {
                dataset: "ARevs".into(),
            });
            let sink = ok_job.add(PhysicalOp::ResultSink);
            ok_job.connect(scan, sink, 0, ConnectorKind::ToOne);
            let (rows, _) = run_job_with(&ok_job, &ctx2, &pooled(&pool)).unwrap();
            assert_eq!(rows.len(), 6);
        }
    }

    #[test]
    fn pooled_deadline_produces_timeout_error() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let slow = job.add(PhysicalOp::Throttle {
            micros_per_tuple: 100_000,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, slow);
        job.connect(slow, sink, 0, ConnectorKind::ToOne);
        let pool = crate::pool::WorkerPool::new(2);
        let started = Instant::now();
        let err = run_job_with(
            &job,
            &ctx,
            &JobOptions {
                timeout: Some(Duration::from_millis(40)),
                pool: Some(pool),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ExecError::Timeout(_)),
            "expected timeout, got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "timeout took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn memory_budget_exceeded_is_typed() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.connect(scan, sink, 0, ConnectorKind::ToOne);
        let pool = crate::pool::WorkerPool::new(2);
        // A 1-byte budget cannot absorb the scan's record frames.
        let err = run_job_with(
            &job,
            &ctx,
            &JobOptions {
                pool: Some(pool),
                memory_budget: Some(asterix_storage::MemoryBudget::new(1)),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::MemoryBudgetExceeded { limit: 1, .. } | ExecError::Cancelled
            ),
            "expected memory-budget error, got {err:?}"
        );
    }

    #[test]
    fn caller_provided_cancel_token_governs_the_job() {
        let ctx = cluster(2, &sample_rows());
        let mut job = JobSpec::new();
        let scan = job.add(PhysicalOp::DatasetScan {
            dataset: "ARevs".into(),
        });
        let slow = job.add(PhysicalOp::Throttle {
            micros_per_tuple: 100_000,
        });
        let sink = job.add(PhysicalOp::ResultSink);
        job.pipe(scan, slow);
        job.connect(slow, sink, 0, ConnectorKind::ToOne);
        let token = Arc::new(CancelToken::new());
        token.cancel(); // cancelled before the job even starts
        let err = run_job_with(
            &job,
            &ctx,
            &JobOptions {
                cancel: Some(token),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Cancelled), "got {err:?}");
    }
}
