//! Operator implementations. Each operator instance runs on its own thread
//! for one partition; `run_operator` is its body.

use crate::context::ClusterContext;
use crate::expr::sql_compare;
use crate::job::{AggSpec, ConnectorKind, PhysicalOp, SearchMeasure};
use crate::tuple::{compare_tuples, Frame, Tuple, FRAME_CAPACITY};
use asterix_adm::{stable_hash_many, IndexKind, Value};
use asterix_simfn::{edit_distance_t_bound, jaccard_t_bound, tokenize};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Routes a producer partition's output tuples to the consumer partitions
/// of one edge.
pub struct Router {
    kind: ConnectorKind,
    /// One sender per consumer partition.
    senders: Vec<Sender<Frame>>,
    buffers: Vec<Frame>,
    producer_partition: usize,
}

impl Router {
    pub fn new(kind: ConnectorKind, senders: Vec<Sender<Frame>>, producer_partition: usize) -> Self {
        let n = senders.len();
        Router {
            kind,
            senders,
            buffers: (0..n).map(|_| Frame::new()).collect(),
            producer_partition,
        }
    }

    fn push(&mut self, tuple: &Tuple) {
        match &self.kind {
            ConnectorKind::OneToOne => self.buffer(self.producer_partition, tuple.clone()),
            ConnectorKind::ToOne => self.buffer(0, tuple.clone()),
            ConnectorKind::Broadcast => {
                for p in 0..self.senders.len() {
                    self.buffer(p, tuple.clone());
                }
            }
            ConnectorKind::Hash(cols) => {
                let keys: Vec<&Value> = cols.iter().map(|c| &tuple[*c]).collect();
                let p = (stable_hash_many(&keys) % self.senders.len() as u64) as usize;
                self.buffer(p, tuple.clone());
            }
        }
    }

    fn buffer(&mut self, partition: usize, tuple: Tuple) {
        let buf = &mut self.buffers[partition];
        buf.push(tuple);
        if buf.len() >= FRAME_CAPACITY {
            // A send failure means the consumer already terminated (error
            // or limit); dropping the frame is correct either way.
            let frame = std::mem::take(buf);
            let _ = self.senders[partition].send(frame);
        }
    }

    fn flush(&mut self) {
        for p in 0..self.senders.len() {
            if !self.buffers[p].is_empty() {
                let frame = std::mem::take(&mut self.buffers[p]);
                let _ = self.senders[p].send(frame);
            }
        }
    }
}

/// All outgoing edges of one operator instance.
pub struct Out {
    routers: Vec<Router>,
    pub produced: u64,
}

impl Out {
    pub fn new(routers: Vec<Router>) -> Self {
        Out {
            routers,
            produced: 0,
        }
    }

    pub fn push(&mut self, tuple: Tuple) {
        self.produced += 1;
        for r in &mut self.routers {
            r.push(&tuple);
        }
    }

    pub fn finish(mut self) -> u64 {
        for r in &mut self.routers {
            r.flush();
        }
        self.produced
        // Senders drop here, signalling end-of-stream downstream.
    }
}

fn recv_tuples(rx: &Receiver<Frame>) -> impl Iterator<Item = Tuple> + '_ {
    rx.iter().flatten()
}

fn drain_all(rx: &Receiver<Frame>) -> Vec<Tuple> {
    let mut out = Vec::new();
    for frame in rx.iter() {
        out.extend(frame);
    }
    out
}

/// Aggregate state for one group.
enum AggState {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    First(Option<Value>),
    Collect(Vec<Value>),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum(_) => AggState::Sum(0.0, true),
            AggSpec::Min(_) => AggState::Min(None),
            AggSpec::Max(_) => AggState::Max(None),
            AggSpec::First(_) => AggState::First(None),
            AggSpec::CollectSortedSet(_) => AggState::Collect(Vec::new()),
        }
    }

    fn update(&mut self, spec: &AggSpec, tuple: &Tuple) {
        match (self, spec) {
            (AggState::Count(n), AggSpec::Count) => *n += 1,
            (AggState::Sum(acc, int), AggSpec::Sum(c)) => {
                if let Some(x) = tuple[*c].as_f64() {
                    *acc += x;
                    *int &= matches!(tuple[*c], Value::Int64(_));
                }
            }
            (AggState::Min(m), AggSpec::Min(c)) => {
                let v = &tuple[*c];
                if !v.is_unknown() && m.as_ref().map_or(true, |cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::Max(m), AggSpec::Max(c)) => {
                let v = &tuple[*c];
                if !v.is_unknown() && m.as_ref().map_or(true, |cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::First(f), AggSpec::First(c)) => {
                if f.is_none() {
                    *f = Some(tuple[*c].clone());
                }
            }
            (AggState::Collect(items), AggSpec::CollectSortedSet(c)) => {
                items.push(tuple[*c].clone());
            }
            _ => unreachable!("agg state/spec mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(n),
            AggState::Sum(acc, int) => {
                if int {
                    Value::Int64(acc as i64)
                } else {
                    Value::double(acc)
                }
            }
            AggState::Min(m) | AggState::Max(m) | AggState::First(m) => {
                m.unwrap_or(Value::Null)
            }
            AggState::Collect(mut items) => {
                items.sort();
                items.dedup();
                Value::OrderedList(items)
            }
        }
    }
}

/// Run one operator instance. Returns (input tuples, output tuples).
pub fn run_operator(
    op: &PhysicalOp,
    partition: usize,
    inputs: Vec<Receiver<Frame>>,
    out: Out,
    ctx: &ClusterContext,
    sink: &Mutex<Vec<Tuple>>,
) -> Result<(u64, u64), String> {
    let reg = &ctx.registry;
    let mut consumed: u64 = 0;
    match op {
        PhysicalOp::EmptySource => {
            let mut out = out;
            if partition == 0 {
                out.push(Vec::new());
            }
            Ok((0, out.finish()))
        }
        PhysicalOp::DatasetScan { dataset } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            for (pk, rec) in store.primary().scan() {
                out.push(vec![pk, rec]);
            }
            Ok((0, out.finish()))
        }
        PhysicalOp::Select { predicate } => {
            let mut out = out;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                if predicate.eval(&t, reg)?.is_true() {
                    out.push(t);
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Assign { exprs } => {
            let mut out = out;
            for mut t in recv_tuples(&inputs[0]) {
                consumed += 1;
                let base = t.clone();
                for e in exprs {
                    t.push(e.eval(&base, reg)?);
                }
                out.push(t);
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Project { cols } => {
            let mut out = out;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                out.push(cols.iter().map(|c| t[*c].clone()).collect());
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Sort { keys } => {
            let mut out = out;
            let mut all = drain_all(&inputs[0]);
            consumed = all.len() as u64;
            all.sort_by(|a, b| compare_tuples(a, b, keys));
            for t in all {
                out.push(t);
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::HashJoin {
            left_keys,
            right_keys,
        } => run_hash_join(left_keys, right_keys, &inputs, out, &mut consumed),
        PhysicalOp::NestedLoopJoin { predicate } => {
            let mut out = out;
            let left = drain_all(&inputs[0]);
            consumed += left.len() as u64;
            for rt in recv_tuples(&inputs[1]) {
                consumed += 1;
                for lt in &left {
                    let mut combined = lt.clone();
                    combined.extend(rt.iter().cloned());
                    if predicate.eval(&combined, reg)?.is_true() {
                        out.push(combined);
                    }
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::HashGroupBy { keys, aggs } => {
            let mut out = out;
            let mut groups: HashMap<u64, Vec<(Tuple, Vec<AggState>)>> = HashMap::new();
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                let key: Tuple = keys.iter().map(|c| t[*c].clone()).collect();
                let refs: Vec<&Value> = key.iter().collect();
                let h = stable_hash_many(&refs);
                let bucket = groups.entry(h).or_default();
                let entry = bucket.iter_mut().find(|(k, _)| k == &key);
                let states = match entry {
                    Some((_, s)) => s,
                    None => {
                        bucket.push((key, aggs.iter().map(AggState::new).collect()));
                        &mut bucket.last_mut().unwrap().1
                    }
                };
                for (state, spec) in states.iter_mut().zip(aggs) {
                    state.update(spec, &t);
                }
            }
            for (_, bucket) in groups {
                for (key, states) in bucket {
                    let mut row = key;
                    for s in states {
                        row.push(s.finish());
                    }
                    out.push(row);
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Unnest { expr, with_pos } => {
            let mut out = out;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                let v = expr.eval(&t, reg)?;
                if let Some(items) = v.as_list() {
                    for (i, item) in items.iter().enumerate() {
                        let mut row = t.clone();
                        row.push(item.clone());
                        if *with_pos {
                            row.push(Value::Int64(i as i64));
                        }
                        out.push(row);
                    }
                }
                // Non-list (including null/missing): no rows, like AQL's
                // `for $x in <non-list>`.
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::StreamPos => {
            let mut out = out;
            let mut pos: i64 = 0;
            for mut t in recv_tuples(&inputs[0]) {
                consumed += 1;
                t.push(Value::Int64(pos));
                pos += 1;
                out.push(t);
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::SecondaryIndexSearch {
            dataset,
            index,
            key_col,
            measure,
        } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                let key = &t[*key_col];
                let candidates =
                    index_candidates(store, index, key, measure).map_err(|e| e.to_string())?;
                for pk in candidates {
                    let mut row = t.clone();
                    row.push(pk);
                    out.push(row);
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::PrimaryIndexLookup { dataset, pk_col } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                if let Some(rec) = store.primary().get(&t[*pk_col]) {
                    let mut row = t;
                    row.push(rec);
                    out.push(row);
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Union => {
            let mut out = out;
            for rx in &inputs {
                for t in recv_tuples(rx) {
                    consumed += 1;
                    out.push(t);
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Materialize => {
            let mut out = out;
            let all = drain_all(&inputs[0]);
            consumed = all.len() as u64;
            for t in all {
                out.push(t);
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::Limit { n } => {
            let mut out = out;
            let mut taken = 0usize;
            for t in recv_tuples(&inputs[0]) {
                consumed += 1;
                if taken < *n {
                    taken += 1;
                    out.push(t);
                }
                if taken >= *n {
                    break; // stop reading; upstream sends are dropped
                }
            }
            Ok((consumed, out.finish()))
        }
        PhysicalOp::ResultSink => {
            let collected = drain_all(&inputs[0]);
            consumed = collected.len() as u64;
            sink.lock().extend(collected);
            out.finish();
            Ok((consumed, consumed))
        }
    }
}

fn run_hash_join(
    left_keys: &[usize],
    right_keys: &[usize],
    inputs: &[Receiver<Frame>],
    mut out: Out,
    consumed: &mut u64,
) -> Result<(u64, u64), String> {
    // Build on input 0.
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::new();
    for t in recv_tuples(&inputs[0]) {
        *consumed += 1;
        let refs: Vec<&Value> = left_keys.iter().map(|c| &t[*c]).collect();
        table.entry(stable_hash_many(&refs)).or_default().push(t);
    }
    // Probe with input 1.
    for rt in recv_tuples(&inputs[1]) {
        *consumed += 1;
        let refs: Vec<&Value> = right_keys.iter().map(|c| &rt[*c]).collect();
        let h = stable_hash_many(&refs);
        if let Some(bucket) = table.get(&h) {
            for lt in bucket {
                let equal = left_keys.iter().zip(right_keys).all(|(lc, rc)| {
                    sql_compare(&lt[*lc], &rt[*rc]) == Some(Ordering::Equal)
                });
                if equal {
                    let mut combined = lt.clone();
                    combined.extend(rt.iter().cloned());
                    out.push(combined);
                }
            }
        }
    }
    Ok((*consumed, out.finish()))
}

/// Candidate primary keys from a secondary index for one search key.
fn index_candidates(
    store: &asterix_storage::PartitionStore,
    index: &str,
    key: &Value,
    measure: &SearchMeasure,
) -> Result<Vec<Value>, asterix_adm::AdmError> {
    match measure {
        SearchMeasure::Exact => store.btree_lookup(index, key),
        SearchMeasure::Jaccard { delta } => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let tokens = idx.tokens_of(key);
            let t = jaccard_t_bound(tokens.len(), *delta);
            if t <= 0 || tokens.is_empty() {
                return Ok(Vec::new());
            }
            store.inverted_candidates(index, &tokens, t as usize)
        }
        SearchMeasure::Contains => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let n = match idx.kind {
                IndexKind::NGram(n) => n,
                _ => {
                    return Err(asterix_adm::AdmError::Schema(format!(
                        "contains search requires an ngram index, '{index}' is {}",
                        idx.kind.name()
                    )))
                }
            };
            let s = match key.as_str() {
                Some(s) => s,
                None => return Ok(Vec::new()),
            };
            let tokens: Vec<Value> = tokenize::gram_tokens_distinct(s, n)
                .into_iter()
                .map(Value::String)
                .collect();
            // Patterns shorter than n produce a truncated gram that full
            // strings do not index: the plan must not reach here for
            // them (compile-time corner case).
            if s.chars().count() < n || tokens.is_empty() {
                return Ok(Vec::new());
            }
            let t = tokens.len();
            store.inverted_candidates(index, &tokens, t)
        }
        SearchMeasure::EditDistance { k } => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let n = match idx.kind {
                IndexKind::NGram(n) => n,
                _ => {
                    return Err(asterix_adm::AdmError::Schema(format!(
                        "edit-distance search requires an ngram index, '{index}' is {}",
                        idx.kind.name()
                    )))
                }
            };
            let s = match key.as_str() {
                Some(s) => s,
                None => return Ok(Vec::new()),
            };
            let tokens: Vec<Value> = tokenize::gram_tokens_distinct(s, n)
                .into_iter()
                .map(Value::String)
                .collect();
            // T over *distinct* grams: each edit operation can remove at
            // most n distinct grams from the intersection.
            let t = edit_distance_t_bound(tokens.len(), *k, n);
            if t <= 0 {
                // Corner case: the plan must route these keys to a scan
                // path (Fig 14); reaching here means the key emits no
                // candidates from the index.
                return Ok(Vec::new());
            }
            store.inverted_candidates(index, &tokens, t as usize)
        }
    }
}
