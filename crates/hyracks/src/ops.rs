//! Operator implementations. Each operator instance runs on its own thread
//! for one partition; `run_operator` is its body.
//!
//! Every receive loop and every connector send is *cancel-aware*: instead
//! of blocking indefinitely it polls in short intervals and consults the
//! job's [`CancelToken`], so a failure (or deadline) on any partition
//! unwinds the whole job instead of deadlocking on full or empty channels.

use crate::context::ClusterContext;
use crate::error::{CancelToken, ExecError, OpError};
use crate::expr::sql_compare;
use crate::job::{AggSpec, ConnectorKind, FaultMode, PhysicalOp, PreTokenized, SearchMeasure};
use crate::tuple::{
    compare_tuples, Batch, BatchSlice, Column, Frame, FrameRows, SortKey, Tuple, FRAME_CAPACITY,
};
use crate::vectorized::VerifyKernel;
use asterix_adm::{stable_hash_many, IndexKind, Value};
use asterix_simfn::{edit_distance_t_bound, jaccard_t_bound};
use crossbeam::channel::{Receiver, RecvTimeoutError, SendTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Distinct probe keys whose token lists one `SecondaryIndexSearch`
/// instance memoizes. Index-nested-loop joins broadcast every outer tuple
/// to every partition, so a modest working set of repeated keys covers
/// most probes; the memo is per operator instance (per thread), so no
/// locking is involved.
const TOKEN_MEMO_CAPACITY: usize = 256;

/// How long a blocked send/receive waits before re-checking the cancel
/// token. Bounds how stale a cancellation can go unnoticed.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Send a frame, polling the cancel token while the channel is full. A
/// disconnected consumer (error or limit downstream) is not an error:
/// dropping the frame is correct either way.
fn send_frame(
    tx: &Sender<Frame>,
    mut frame: Frame,
    cancel: &CancelToken,
) -> Result<(), ExecError> {
    loop {
        cancel.check()?;
        match tx.send_timeout(frame, POLL_INTERVAL) {
            Ok(()) => return Ok(()),
            Err(SendTimeoutError::Timeout(f)) => frame = f,
            Err(SendTimeoutError::Disconnected(_)) => return Ok(()),
        }
    }
}

/// Routes a producer partition's output tuples to the consumer partitions
/// of one edge.
pub struct Router {
    kind: ConnectorKind,
    /// One sender per consumer partition.
    senders: Vec<Sender<Frame>>,
    buffers: Vec<Vec<Tuple>>,
    producer_partition: usize,
    cancel: Arc<CancelToken>,
    frames_sent: u64,
    batch_frames_sent: u64,
    bytes_sent: u64,
}

impl Router {
    /// A router shipping frames to `senders` according to `kind`.
    pub fn new(
        kind: ConnectorKind,
        senders: Vec<Sender<Frame>>,
        producer_partition: usize,
        cancel: Arc<CancelToken>,
    ) -> Self {
        let n = senders.len();
        Router {
            kind,
            senders,
            buffers: (0..n).map(|_| Vec::new()).collect(),
            producer_partition,
            cancel,
            frames_sent: 0,
            batch_frames_sent: 0,
            bytes_sent: 0,
        }
    }

    fn hash_col_error(&self, cols: &[usize], width: usize) -> ExecError {
        ExecError::Operator {
            op: "hash-connector".into(),
            partition: self.producer_partition,
            message: format!("hash column out of bounds: columns {cols:?}, tuple width {width}"),
        }
    }

    fn push(&mut self, tuple: &Tuple) -> Result<(), ExecError> {
        match &self.kind {
            ConnectorKind::OneToOne => self.buffer(self.producer_partition, tuple.clone()),
            ConnectorKind::ToOne => self.buffer(0, tuple.clone()),
            ConnectorKind::Broadcast => {
                for p in 0..self.senders.len() {
                    self.buffer(p, tuple.clone())?;
                }
                Ok(())
            }
            ConnectorKind::Hash(cols) => {
                let mut keys: Vec<&Value> = Vec::with_capacity(cols.len());
                for c in cols {
                    match tuple.get(*c) {
                        Some(v) => keys.push(v),
                        None => return Err(self.hash_col_error(cols, tuple.len())),
                    }
                }
                let p = (stable_hash_many(&keys) % self.senders.len() as u64) as usize;
                self.buffer(p, tuple.clone())
            }
        }
    }

    /// Route a whole batch slice. Non-hash kinds forward the slice
    /// zero-copy (one `Arc` clone per consumer); hash routing builds one
    /// selection vector per consumer partition over the shared batch.
    /// Buffered row sends to an affected partition are flushed first so
    /// per-consumer ordering is preserved.
    fn push_slice(&mut self, slice: &BatchSlice) -> Result<(), ExecError> {
        match &self.kind {
            ConnectorKind::OneToOne => {
                let p = self.producer_partition;
                self.flush_partition(p)?;
                self.send_counted(p, Frame::Batch(slice.clone()))
            }
            ConnectorKind::ToOne => {
                self.flush_partition(0)?;
                self.send_counted(0, Frame::Batch(slice.clone()))
            }
            ConnectorKind::Broadcast => {
                for p in 0..self.senders.len() {
                    self.flush_partition(p)?;
                    self.send_counted(p, Frame::Batch(slice.clone()))?;
                }
                Ok(())
            }
            ConnectorKind::Hash(cols) => {
                let cols = cols.clone();
                let mut parts: Vec<Vec<u32>> = vec![Vec::new(); self.senders.len()];
                for pos in 0..slice.len() {
                    let row = slice.row_index(pos);
                    let h = slice
                        .batch
                        .hash_row(row, &cols)
                        .ok_or_else(|| self.hash_col_error(&cols, slice.batch.width()))?;
                    parts[(h % self.senders.len() as u64) as usize].push(pos as u32);
                }
                for (p, keep) in parts.into_iter().enumerate() {
                    if keep.is_empty() {
                        continue;
                    }
                    self.flush_partition(p)?;
                    let sub = if keep.len() == slice.len() {
                        slice.clone()
                    } else {
                        slice.narrow(keep)
                    };
                    self.send_counted(p, Frame::Batch(sub))?;
                }
                Ok(())
            }
        }
    }

    fn buffer(&mut self, partition: usize, tuple: Tuple) -> Result<(), ExecError> {
        let buf = &mut self.buffers[partition];
        buf.push(tuple);
        if buf.len() >= FRAME_CAPACITY {
            self.send_buffered(partition)?;
        }
        Ok(())
    }

    fn flush_partition(&mut self, partition: usize) -> Result<(), ExecError> {
        if !self.buffers[partition].is_empty() {
            self.send_buffered(partition)?;
        }
        Ok(())
    }

    /// Ship the buffered row frame of one consumer partition.
    fn send_buffered(&mut self, partition: usize) -> Result<(), ExecError> {
        let rows = std::mem::take(&mut self.buffers[partition]);
        self.send_counted(partition, Frame::Rows(rows))
    }

    /// Count and ship one frame, charging the memory budget.
    fn send_counted(&mut self, partition: usize, frame: Frame) -> Result<(), ExecError> {
        self.frames_sent += 1;
        if matches!(frame, Frame::Batch(_)) {
            self.batch_frames_sent += 1;
        }
        let frame_bytes = frame.heap_bytes();
        self.bytes_sent += frame_bytes;
        // Charge the frame against the query's memory budget (scoped onto
        // this thread by the executor). Exceeding it is a typed, per-query
        // failure: the error trips the cancel token via the supervisor, so
        // the job unwinds instead of buffering towards OOM.
        if let asterix_storage::budget::ChargeResult::Exceeded { used, limit } =
            asterix_storage::budget::charge_current(frame_bytes)
        {
            return Err(ExecError::MemoryBudgetExceeded { used, limit });
        }
        send_frame(&self.senders[partition], frame, &self.cancel)
    }

    fn flush(&mut self) -> Result<(), ExecError> {
        for p in 0..self.senders.len() {
            self.flush_partition(p)?;
        }
        Ok(())
    }
}

/// What one operator instance pushed downstream: tuples, frames (channel
/// sends of up to [`FRAME_CAPACITY`] tuples), and their heap bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutCounts {
    /// Tuples pushed downstream.
    pub tuples: u64,
    /// Frames (channel sends) shipped.
    pub frames: u64,
    /// Of those, frames carrying a shared batch slice (zero-copy sends).
    pub batch_frames: u64,
    /// Heap bytes of the shipped tuples.
    pub bytes: u64,
}

/// All outgoing edges of one operator instance.
pub struct Out {
    routers: Vec<Router>,
    /// Tuples pushed so far.
    pub produced: u64,
    /// Live progress slot of the owning operator: pushed tuples count
    /// here as they happen, so observers see mid-execution progress.
    live: Option<std::sync::Arc<crate::progress::OpProgress>>,
}

impl Out {
    /// Wrap this instance's outgoing routers (one per edge).
    pub fn new(routers: Vec<Router>) -> Self {
        Out {
            routers,
            produced: 0,
            live: None,
        }
    }

    /// Attach the operator's live progress counters (see
    /// [`crate::progress::JobProgress`]); `None` leaves counting off.
    pub fn with_live(mut self, live: Option<std::sync::Arc<crate::progress::OpProgress>>) -> Self {
        self.live = live;
        self
    }

    /// Push one tuple down every outgoing edge.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), ExecError> {
        self.produced += 1;
        if let Some(p) = &self.live {
            p.add_out(1);
        }
        for r in &mut self.routers {
            r.push(&tuple)?;
        }
        Ok(())
    }

    /// Push a whole batch slice down every outgoing edge (zero-copy for
    /// non-hash connectors).
    pub fn push_slice(&mut self, slice: &BatchSlice) -> Result<(), ExecError> {
        self.produced += slice.len() as u64;
        if let Some(p) = &self.live {
            p.add_out(slice.len() as u64);
        }
        for r in &mut self.routers {
            r.push_slice(slice)?;
        }
        Ok(())
    }

    /// Flush remaining buffers and close the streams, returning counts.
    pub fn finish(mut self) -> Result<OutCounts, ExecError> {
        for r in &mut self.routers {
            r.flush()?;
        }
        Ok(OutCounts {
            tuples: self.produced,
            frames: self.routers.iter().map(|r| r.frames_sent).sum(),
            batch_frames: self.routers.iter().map(|r| r.batch_frames_sent).sum(),
            bytes: self.routers.iter().map(|r| r.bytes_sent).sum(),
        })
        // Senders drop here, signalling end-of-stream downstream.
    }
}

/// Cancel-aware frame stream over one input edge. Yields `Err` once the
/// job's cancel token trips; ends cleanly on upstream disconnect.
struct FrameStream<'a> {
    rx: &'a Receiver<Frame>,
    cancel: &'a CancelToken,
    done: bool,
}

impl Iterator for FrameStream<'_> {
    type Item = Result<Frame, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if let Err(e) = self.cancel.check() {
                self.done = true;
                return Some(Err(e));
            }
            match self.rx.recv_timeout(POLL_INTERVAL) {
                Ok(frame) => return Some(Ok(frame)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

fn recv_frames<'a>(rx: &'a Receiver<Frame>, cancel: &'a CancelToken) -> FrameStream<'a> {
    FrameStream {
        rx,
        cancel,
        done: false,
    }
}

/// Cancel-aware tuple stream over one input edge: frames of either
/// variant, materialized row by row.
struct TupleStream<'a> {
    frames: FrameStream<'a>,
    frame: FrameRows,
}

impl Iterator for TupleStream<'_> {
    type Item = Result<Tuple, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(t) = self.frame.next() {
                return Some(Ok(t));
            }
            match self.frames.next()? {
                Ok(frame) => self.frame = frame.into_rows(),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

fn recv_tuples<'a>(rx: &'a Receiver<Frame>, cancel: &'a CancelToken) -> TupleStream<'a> {
    TupleStream {
        frames: recv_frames(rx, cancel),
        frame: FrameRows::empty(),
    }
}

fn drain_all(rx: &Receiver<Frame>, cancel: &CancelToken) -> Result<Vec<Tuple>, ExecError> {
    let mut out = Vec::new();
    for t in recv_tuples(rx, cancel) {
        out.push(t?);
    }
    Ok(out)
}

/// Aggregate state for one group.
enum AggState {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    First(Option<Value>),
    Collect(Vec<Value>),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum(_) => AggState::Sum(0.0, true),
            AggSpec::Min(_) => AggState::Min(None),
            AggSpec::Max(_) => AggState::Max(None),
            AggSpec::First(_) => AggState::First(None),
            AggSpec::CollectSortedSet(_) => AggState::Collect(Vec::new()),
        }
    }

    fn update(&mut self, spec: &AggSpec, tuple: &Tuple) {
        match (self, spec) {
            (AggState::Count(n), AggSpec::Count) => *n += 1,
            (AggState::Sum(acc, int), AggSpec::Sum(c)) => {
                if let Some(x) = tuple[*c].as_f64() {
                    *acc += x;
                    *int &= matches!(tuple[*c], Value::Int64(_));
                }
            }
            (AggState::Min(m), AggSpec::Min(c)) => {
                let v = &tuple[*c];
                if !v.is_unknown() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::Max(m), AggSpec::Max(c)) => {
                let v = &tuple[*c];
                if !v.is_unknown() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::First(f), AggSpec::First(c)) => {
                if f.is_none() {
                    *f = Some(tuple[*c].clone());
                }
            }
            (AggState::Collect(items), AggSpec::CollectSortedSet(c)) => {
                items.push(tuple[*c].clone());
            }
            _ => unreachable!("agg state/spec mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(n),
            AggState::Sum(acc, int) => {
                if int {
                    Value::Int64(acc as i64)
                } else {
                    Value::double(acc)
                }
            }
            AggState::Min(m) | AggState::Max(m) | AggState::First(m) => {
                m.unwrap_or(Value::Null)
            }
            AggState::Collect(mut items) => {
                items.sort();
                items.dedup();
                Value::OrderedList(items)
            }
        }
    }
}

/// Per-operator feature toggles, threaded from
/// [`crate::exec::JobOptions`]. Both default to off (all optimizations
/// on); the bench harness flips them to measure against true baselines.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpFlags {
    /// Switch the index-search/primary-lookup operators back to their
    /// per-tuple implementations (no batched lookups, no probe-token
    /// memoization). Results are identical either way.
    pub disable_hotpath: bool,
    /// Revert to the seed row-at-a-time execution: no batch frames, no
    /// vectorized verify kernels, no rank-array T-occurrence. Results are
    /// identical either way.
    pub disable_batching: bool,
    /// Keep batch execution but pin the scalar similarity kernels: banded
    /// DP instead of Myers bit-parallel edit distance, rank/count
    /// T-occurrence merging instead of the full-intersection gallop.
    /// Results are identical either way.
    pub disable_kernels: bool,
}

/// Emit accumulated rows as one batch frame; ragged rows (never produced
/// by well-formed operators) degrade to a plain row frame.
fn push_rows_batched(out: &mut Out, rows: &mut Vec<Tuple>) -> Result<(), ExecError> {
    if rows.is_empty() {
        return Ok(());
    }
    match Frame::batch_from_rows(std::mem::take(rows)) {
        Frame::Batch(slice) => out.push_slice(&slice),
        Frame::Rows(rows) => {
            for t in rows {
                out.push(t)?;
            }
            Ok(())
        }
    }
}

/// Typed column access for operators (replaces panicking `t[c]`).
fn col_ref<'t>(t: &'t Tuple, c: usize, op: &str) -> Result<&'t Value, OpError> {
    t.get(c).ok_or_else(|| {
        OpError::Failed(format!(
            "{op}: column {c} out of bounds for tuple of width {}",
            t.len()
        ))
    })
}

/// Forward one frame unchanged (batch slices stay zero-copy).
fn forward_frame(out: &mut Out, frame: Frame, consumed: &mut u64) -> Result<(), ExecError> {
    match frame {
        Frame::Batch(slice) => {
            *consumed += slice.len() as u64;
            out.push_slice(&slice)
        }
        Frame::Rows(rows) => {
            for t in rows {
                *consumed += 1;
                out.push(t)?;
            }
            Ok(())
        }
    }
}

/// Where the `ResultSink` operator puts the rows it receives.
pub enum SinkTarget<'a> {
    /// Buffer into the job's result vector (the default: `run_job`
    /// returns the full row set).
    Buffer(&'a Mutex<Vec<Tuple>>),
    /// Stream each arriving frame to the caller's sink; the job's
    /// returned vector stays empty.
    Stream(&'a crate::exec::ResultSink),
}

/// Run one operator instance. Returns (input tuples, output counts).
/// [`OpFlags`] switches the hot paths and batch execution back to the
/// seed per-tuple implementations (the bench harness's before/after
/// toggles); results are identical either way.
#[allow(clippy::too_many_arguments)]
pub fn run_operator(
    op: &PhysicalOp,
    partition: usize,
    inputs: Vec<Receiver<Frame>>,
    out: Out,
    ctx: &ClusterContext,
    cancel: &CancelToken,
    sink: SinkTarget<'_>,
    flags: OpFlags,
) -> Result<(u64, OutCounts), OpError> {
    let reg = &ctx.registry;
    let mut consumed: u64 = 0;
    match op {
        PhysicalOp::EmptySource => {
            let mut out = out;
            if partition == 0 {
                out.push(Vec::new())?;
            }
            Ok((0, out.finish()?))
        }
        PhysicalOp::DatasetScan { dataset } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            if flags.disable_batching {
                for item in store.primary().scan() {
                    let (pk, rec) = item?;
                    out.push(vec![pk, rec])?;
                }
            } else {
                let mut pending: Vec<Tuple> = Vec::with_capacity(FRAME_CAPACITY);
                for item in store.primary().scan() {
                    let (pk, rec) = item?;
                    pending.push(vec![pk, rec]);
                    if pending.len() >= FRAME_CAPACITY {
                        push_rows_batched(&mut out, &mut pending)?;
                    }
                }
                push_rows_batched(&mut out, &mut pending)?;
            }
            Ok((0, out.finish()?))
        }
        PhysicalOp::Select { predicate } => {
            let mut out = out;
            let mut kernel = if flags.disable_batching {
                None
            } else {
                VerifyKernel::compile_with(predicate, !flags.disable_kernels)
            };
            for frame in recv_frames(&inputs[0], cancel) {
                match frame? {
                    Frame::Rows(rows) => {
                        for t in rows {
                            consumed += 1;
                            if predicate.eval(&t, reg)?.is_true() {
                                out.push(t)?;
                            }
                        }
                    }
                    Frame::Batch(slice) => {
                        consumed += slice.len() as u64;
                        let keep = match kernel.as_mut() {
                            Some(k) => k.eval_slice(&slice, reg)?,
                            None => {
                                let mut keep = Vec::new();
                                for pos in 0..slice.len() {
                                    if predicate.eval(&slice.row(pos), reg)?.is_true() {
                                        keep.push(pos as u32);
                                    }
                                }
                                keep
                            }
                        };
                        if !keep.is_empty() {
                            let sub = if keep.len() == slice.len() {
                                slice
                            } else {
                                slice.narrow(keep)
                            };
                            out.push_slice(&sub)?;
                        }
                    }
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Assign { exprs } => {
            let mut out = out;
            if flags.disable_batching {
                for t in recv_tuples(&inputs[0], cancel) {
                    let mut t = t?;
                    consumed += 1;
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|e| e.eval(&t, reg))
                        .collect::<Result<_, _>>()?;
                    t.extend(vals);
                    out.push(t)?;
                }
                return Ok((consumed, out.finish()?));
            }
            for frame in recv_frames(&inputs[0], cancel) {
                match frame? {
                    Frame::Batch(slice) => {
                        consumed += slice.len() as u64;
                        if slice.is_empty() {
                            continue;
                        }
                        // Keep the input columns shared (record cells stay
                        // behind their `Arc`s) and append one value column
                        // per expression, evaluated straight against the
                        // batch so field access never deep-clones a record.
                        let src = slice.batch.as_ref();
                        let all: Vec<usize> = (0..src.width()).collect();
                        let picks: Vec<(u32, u32)> = (0..slice.len())
                            .map(|pos| (0, slice.row_index(pos) as u32))
                            .collect();
                        let mut b = Batch::gather(&[src], &picks, &all)
                            .map_err(|e| OpError::Failed(format!("assign: {e}")))?;
                        for e in exprs {
                            let mut vals = Vec::with_capacity(slice.len());
                            for pos in 0..slice.len() {
                                vals.push(crate::vectorized::eval_expr_on_batch(
                                    e,
                                    src,
                                    slice.row_index(pos),
                                    reg,
                                )?);
                            }
                            b.push_col(Column::from_values(vals))
                                .map_err(|e| OpError::Failed(format!("assign: {e}")))?;
                        }
                        out.push_slice(&BatchSlice::full(Arc::new(b)))?;
                    }
                    Frame::Rows(rows) => {
                        for mut t in rows {
                            consumed += 1;
                            let vals: Vec<Value> = exprs
                                .iter()
                                .map(|e| e.eval(&t, reg))
                                .collect::<Result<_, _>>()?;
                            t.extend(vals);
                            out.push(t)?;
                        }
                    }
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Project { cols } => {
            let mut out = out;
            if flags.disable_batching {
                for t in recv_tuples(&inputs[0], cancel) {
                    let t = t?;
                    consumed += 1;
                    let mut row = Vec::with_capacity(cols.len());
                    for c in cols {
                        row.push(col_ref(&t, *c, "project")?.clone());
                    }
                    out.push(row)?;
                }
                return Ok((consumed, out.finish()?));
            }
            // Batch path: gather only the projected columns — dropped
            // columns (most importantly the full record after the verify)
            // are never materialized row-wise at all.
            for frame in recv_frames(&inputs[0], cancel) {
                match frame? {
                    Frame::Batch(slice) => {
                        consumed += slice.len() as u64;
                        if slice.is_empty() {
                            continue;
                        }
                        let picks: Vec<(u32, u32)> = (0..slice.len())
                            .map(|pos| (0, slice.row_index(pos) as u32))
                            .collect();
                        let b = Batch::gather(&[slice.batch.as_ref()], &picks, cols)
                            .map_err(|e| OpError::Failed(format!("project: {e}")))?;
                        out.push_slice(&BatchSlice::full(Arc::new(b)))?;
                    }
                    Frame::Rows(rows) => {
                        for t in rows {
                            consumed += 1;
                            let mut row = Vec::with_capacity(cols.len());
                            for c in cols {
                                row.push(col_ref(&t, *c, "project")?.clone());
                            }
                            out.push(row)?;
                        }
                    }
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Sort { keys } => {
            let mut out = out;
            if flags.disable_batching {
                let mut all = drain_all(&inputs[0], cancel)?;
                consumed = all.len() as u64;
                // Validate key columns up front: `compare_tuples` indexes
                // directly, so a malformed plan must fail typed, not panic.
                let min_width = all.iter().map(Vec::len).min().unwrap_or(0);
                if !all.is_empty() {
                    for k in keys {
                        if k.col >= min_width {
                            return Err(OpError::Failed(format!(
                                "sort: key column {} out of bounds (narrowest tuple width {min_width})",
                                k.col
                            )));
                        }
                    }
                }
                all.sort_by(|a, b| compare_tuples(a, b, keys));
                for t in all {
                    out.push(t)?;
                }
                return Ok((consumed, out.finish()?));
            }
            run_batch_sort(keys, &inputs[0], out, cancel, &mut consumed)
        }
        PhysicalOp::HashJoin {
            left_keys,
            right_keys,
        } => run_hash_join(left_keys, right_keys, &inputs, out, cancel, &mut consumed),
        PhysicalOp::NestedLoopJoin { predicate } => {
            let mut out = out;
            let left = drain_all(&inputs[0], cancel)?;
            consumed += left.len() as u64;
            for rt in recv_tuples(&inputs[1], cancel) {
                let rt = rt?;
                consumed += 1;
                for lt in &left {
                    let mut combined = lt.clone();
                    combined.extend(rt.iter().cloned());
                    if predicate.eval(&combined, reg)?.is_true() {
                        out.push(combined)?;
                    }
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::HashGroupBy { keys, aggs } => {
            let mut out = out;
            let mut groups: HashMap<u64, Vec<(Tuple, Vec<AggState>)>> = HashMap::new();
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                let mut key: Tuple = Vec::with_capacity(keys.len());
                for c in keys {
                    key.push(col_ref(&t, *c, "hash-group-by")?.clone());
                }
                let refs: Vec<&Value> = key.iter().collect();
                let h = stable_hash_many(&refs);
                let bucket = groups.entry(h).or_default();
                let idx = match bucket.iter().position(|(k, _)| k == &key) {
                    Some(i) => i,
                    None => {
                        bucket.push((key, aggs.iter().map(AggState::new).collect()));
                        bucket.len() - 1
                    }
                };
                for (state, spec) in bucket[idx].1.iter_mut().zip(aggs) {
                    state.update(spec, &t);
                }
            }
            for (_, bucket) in groups {
                for (key, states) in bucket {
                    let mut row = key;
                    for s in states {
                        row.push(s.finish());
                    }
                    out.push(row)?;
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Unnest { expr, with_pos } => {
            let mut out = out;
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                let v = expr.eval(&t, reg)?;
                if let Some(items) = v.as_list() {
                    for (i, item) in items.iter().enumerate() {
                        let mut row = t.clone();
                        row.push(item.clone());
                        if *with_pos {
                            row.push(Value::Int64(i as i64));
                        }
                        out.push(row)?;
                    }
                }
                // Non-list (including null/missing): no rows, like AQL's
                // `for $x in <non-list>`.
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::StreamPos => {
            let mut out = out;
            for (pos, t) in recv_tuples(&inputs[0], cancel).enumerate() {
                let mut t = t?;
                consumed += 1;
                t.push(Value::Int64(pos as i64));
                out.push(t)?;
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::SecondaryIndexSearch {
            dataset,
            index,
            key_col,
            measure,
            pre_tokens,
        } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            let mut memo = TokenMemo::new(
                pre_tokens.as_ref(),
                if flags.disable_hotpath {
                    0
                } else {
                    TOKEN_MEMO_CAPACITY
                },
            );
            // The ranked candidate path delivers postings as interned
            // `u32` rank arrays merged by the vectorized T-occurrence
            // kernels; candidates (and their order) are identical.
            let ranked = !flags.disable_batching;
            // Candidate rows repeat the probe tuple once per candidate:
            // build them column-wise, so each repeat costs arena/vector
            // appends instead of a cloned tuple plus a transpose.
            let mut builder: Option<crate::tuple::BatchBuilder> = None;
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                let key = col_ref(&t, *key_col, "secondary-index-search")?;
                let candidates = index_candidates(
                    store,
                    index,
                    key,
                    measure,
                    &mut memo,
                    ranked,
                    !flags.disable_kernels,
                )?;
                if flags.disable_batching {
                    for pk in candidates {
                        let mut row = t.clone();
                        row.push(pk);
                        out.push(row)?;
                    }
                    continue;
                }
                // A probe width change (ragged upstream) flushes the
                // accumulated batch and restarts at the new width.
                if let Some(prev) = builder
                    .as_mut()
                    .filter(|b| b.width() != t.len() + 1)
                    .and_then(|b| b.take_batch())
                {
                    out.push_slice(&BatchSlice::full(Arc::new(prev)))?;
                }
                if builder.as_ref().is_some_and(|b| b.width() != t.len() + 1) {
                    builder = None;
                }
                let b = builder
                    .get_or_insert_with(|| crate::tuple::BatchBuilder::new(t.len() + 1));
                for pk in candidates {
                    b.push_row(t.iter().chain(std::iter::once(&pk)))
                        .map_err(OpError::Failed)?;
                    if b.len() >= FRAME_CAPACITY {
                        if let Some(batch) = b.take_batch() {
                            out.push_slice(&BatchSlice::full(Arc::new(batch)))?;
                        }
                    }
                }
            }
            if let Some(batch) = builder.as_mut().and_then(|b| b.take_batch()) {
                out.push_slice(&BatchSlice::full(Arc::new(batch)))?;
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::PrimaryIndexLookup { dataset, pk_col } => {
            let mut out = out;
            let set = ctx.partitions[partition].read();
            let store = set
                .store(dataset)
                .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
            if flags.disable_hotpath {
                // Per-tuple point lookups (the pre-batching behavior).
                for t in recv_tuples(&inputs[0], cancel) {
                    let t = t?;
                    consumed += 1;
                    if let Some(rec) = store.primary().get(col_ref(&t, *pk_col, "primary-index-lookup")?)? {
                        let mut row = t;
                        row.push(rec);
                        out.push(row)?;
                    }
                }
                return Ok((consumed, out.finish()?));
            }
            if flags.disable_batching {
                // Drain a frame's worth of candidates, resolve their pks
                // as one sorted deduped batch (one merged pass per LSM
                // component, §4.1.1), then re-emit in input order.
                let mut stream = recv_tuples(&inputs[0], cancel);
                let mut batch: Vec<Tuple> = Vec::with_capacity(FRAME_CAPACITY);
                // Operator-lifetime sort scratch: `batch` drains in place
                // and `pks` clears, so steady-state batches reuse both
                // allocations instead of growing fresh buffers per batch.
                let mut pks: Vec<Value> = Vec::with_capacity(FRAME_CAPACITY);
                loop {
                    let mut ended = true;
                    for t in stream.by_ref() {
                        batch.push(t?);
                        consumed += 1;
                        if batch.len() >= FRAME_CAPACITY {
                            ended = false;
                            break;
                        }
                    }
                    if !batch.is_empty() {
                        pks.clear();
                        for t in &batch {
                            pks.push(col_ref(t, *pk_col, "primary-index-lookup")?.clone());
                        }
                        pks.sort();
                        pks.dedup();
                        let records = store.primary().get_many_sorted(&pks)?;
                        for mut t in batch.drain(..) {
                            let i = match pks.binary_search(&t[*pk_col]) {
                                Ok(i) => i,
                                Err(_) => {
                                    return Err(OpError::Failed(
                                        "primary-index-lookup: key vanished from its own batch"
                                            .to_string(),
                                    ))
                                }
                            };
                            if let Some(rec) = &records[i] {
                                t.push(rec.clone());
                                out.push(t)?;
                            }
                        }
                    }
                    if ended {
                        break;
                    }
                }
                return Ok((consumed, out.finish()?));
            }
            // Batch path: each incoming slice is one sorted, deduped
            // multi-get (same merged pass per LSM component, §4.1.1); the
            // fetched records ride along as a *shared* column, so a record
            // referenced by many candidate rows is deep-copied zero times
            // — every row holds an `Arc` to the single fetched value.
            let mut pks: Vec<Value> = Vec::with_capacity(FRAME_CAPACITY);
            let mut sorted: Vec<Value> = Vec::with_capacity(FRAME_CAPACITY);
            let mut pending: Vec<Tuple> = Vec::new();
            for frame in recv_frames(&inputs[0], cancel) {
                match frame? {
                    Frame::Batch(slice) => {
                        consumed += slice.len() as u64;
                        if slice.is_empty() {
                            continue;
                        }
                        let col = slice.batch.col(*pk_col).ok_or_else(|| {
                            OpError::Failed(format!(
                                "primary-index-lookup: column {pk_col} out of bounds for batch of width {}",
                                slice.batch.width()
                            ))
                        })?;
                        pks.clear();
                        for pos in 0..slice.len() {
                            pks.push(col.value(slice.row_index(pos)));
                        }
                        sorted.clear();
                        sorted.extend(pks.iter().cloned());
                        sorted.sort();
                        sorted.dedup();
                        let records = store.primary().get_many_sorted(&sorted)?;
                        let shared: Vec<Option<Arc<Value>>> =
                            records.into_iter().map(|o| o.map(Arc::new)).collect();
                        let mut keep: Vec<(u32, u32)> = Vec::with_capacity(pks.len());
                        let mut recs: Vec<Arc<Value>> = Vec::with_capacity(pks.len());
                        for (pos, pk) in pks.iter().enumerate() {
                            let i = sorted.binary_search(pk).map_err(|_| {
                                OpError::Failed(
                                    "primary-index-lookup: key vanished from its own batch"
                                        .to_string(),
                                )
                            })?;
                            if let Some(rec) = &shared[i] {
                                keep.push((0, slice.row_index(pos) as u32));
                                recs.push(Arc::clone(rec));
                            }
                        }
                        if keep.is_empty() {
                            continue;
                        }
                        let all_cols: Vec<usize> = (0..slice.batch.width()).collect();
                        let mut b = Batch::gather(&[slice.batch.as_ref()], &keep, &all_cols)
                            .map_err(OpError::Failed)?;
                        b.push_col(Column::Shared(recs)).map_err(OpError::Failed)?;
                        out.push_slice(&BatchSlice::full(Arc::new(b)))?;
                    }
                    Frame::Rows(rows) => {
                        // Row frames (non-rectangular upstreams) still get
                        // the one-multi-get-per-frame treatment.
                        consumed += rows.len() as u64;
                        sorted.clear();
                        for t in &rows {
                            sorted.push(col_ref(t, *pk_col, "primary-index-lookup")?.clone());
                        }
                        sorted.sort();
                        sorted.dedup();
                        let records = store.primary().get_many_sorted(&sorted)?;
                        for mut t in rows {
                            let i = sorted.binary_search(&t[*pk_col]).map_err(|_| {
                                OpError::Failed(
                                    "primary-index-lookup: key vanished from its own batch"
                                        .to_string(),
                                )
                            })?;
                            if let Some(rec) = &records[i] {
                                t.push(rec.clone());
                                pending.push(t);
                                if pending.len() >= FRAME_CAPACITY {
                                    push_rows_batched(&mut out, &mut pending)?;
                                }
                            }
                        }
                    }
                }
            }
            push_rows_batched(&mut out, &mut pending)?;
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Union => {
            // Round-robin over all open inputs rather than draining them in
            // order: with bounded edge channels, sequential draining can
            // deadlock when several inputs share an upstream producer (the
            // producer blocks on the un-drained branch).
            let mut out = out;
            let mut open: Vec<Option<&Receiver<Frame>>> = inputs.iter().map(Some).collect();
            let mut remaining = open.len();
            while remaining > 0 {
                cancel.check()?;
                let mut received = false;
                for slot in open.iter_mut() {
                    let Some(rx) = slot else { continue };
                    match rx.try_recv() {
                        Ok(frame) => {
                            received = true;
                            forward_frame(&mut out, frame, &mut consumed)?;
                        }
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Disconnected) => {
                            *slot = None;
                            remaining -= 1;
                        }
                    }
                }
                if !received && remaining > 0 {
                    // Nothing ready on any input: park briefly on the first
                    // open one instead of spinning.
                    if let Some(rx) = open.iter().flatten().next() {
                        match rx.recv_timeout(POLL_INTERVAL) {
                            Ok(frame) => {
                                forward_frame(&mut out, frame, &mut consumed)?;
                            }
                            Err(RecvTimeoutError::Timeout)
                            | Err(RecvTimeoutError::Disconnected) => {}
                        }
                    }
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Materialize => {
            let mut out = out;
            let all = drain_all(&inputs[0], cancel)?;
            consumed = all.len() as u64;
            for t in all {
                out.push(t)?;
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Limit { n } => {
            let mut out = out;
            let mut taken = 0usize;
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                if taken < *n {
                    taken += 1;
                    out.push(t)?;
                }
                if taken >= *n {
                    break; // stop reading; upstream sends are dropped
                }
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::Throttle { micros_per_tuple } => {
            // Test-support: forward tuples at a bounded rate, re-checking
            // the cancel token every couple of milliseconds so deadlines
            // are honored mid-sleep.
            let mut out = out;
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                let mut remaining = *micros_per_tuple;
                while remaining > 0 {
                    cancel.check()?;
                    let slice = remaining.min(2_000);
                    std::thread::sleep(Duration::from_micros(slice));
                    remaining -= slice;
                }
                out.push(t)?;
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::FaultInject {
            partition: fail_partition,
            after_tuples,
            mode,
        } => {
            // Test-support: pass tuples through, except on the chosen
            // partition, which always fails — after forwarding at most
            // `after_tuples` tuples, or at end-of-stream if fewer arrive
            // (hash routing may starve it).
            let mut out = out;
            for t in recv_tuples(&inputs[0], cancel) {
                let t = t?;
                consumed += 1;
                if partition == *fail_partition && consumed > *after_tuples {
                    inject_fault(mode, partition)?;
                }
                out.push(t)?;
            }
            if partition == *fail_partition {
                inject_fault(mode, partition)?;
            }
            Ok((consumed, out.finish()?))
        }
        PhysicalOp::ResultSink => {
            match sink {
                SinkTarget::Buffer(buf) => {
                    let collected = drain_all(&inputs[0], cancel)?;
                    consumed = collected.len() as u64;
                    buf.lock().extend(collected);
                }
                SinkTarget::Stream(s) => {
                    // Deliver frame by frame: the client sees rows as
                    // upstream operators produce them, and a delivery
                    // failure (client gone) cancels the job via the
                    // normal operator-error path.
                    for frame in recv_frames(&inputs[0], cancel) {
                        let rows: Vec<Tuple> = frame?.into_rows().collect();
                        consumed += rows.len() as u64;
                        s.deliver(rows).map_err(OpError::Failed)?;
                    }
                }
            }
            out.finish()?;
            // The sink "emits" its rows to the client, not to a channel.
            Ok((
                consumed,
                OutCounts {
                    tuples: consumed,
                    frames: 0,
                    batch_frames: 0,
                    bytes: 0,
                },
            ))
        }
    }
}

fn inject_fault(mode: &FaultMode, partition: usize) -> Result<(), OpError> {
    match mode {
        FaultMode::Panic => panic!("injected panic on partition {partition}"),
        FaultMode::Error => Err(OpError::Failed(format!(
            "injected operator failure on partition {partition}"
        ))),
    }
}

/// Batch-aware sort: instead of materializing every batch row as an owned
/// tuple, keep the received batches shared, extract only the key columns,
/// sort a row permutation, and gather the output column-wise into fresh
/// batch frames. Output rows and their order are identical to the row
/// path: both sort stably by the same key columns, so ties keep arrival
/// order.
///
/// Row frames (and ragged ones) degrade gracefully: rectangular row
/// frames are re-batched in place, anything else falls back to the fully
/// materialized row sort.
fn run_batch_sort(
    keys: &[SortKey],
    input: &Receiver<Frame>,
    mut out: Out,
    cancel: &CancelToken,
    consumed: &mut u64,
) -> Result<(u64, OutCounts), OpError> {
    let mut sources: Vec<Arc<Batch>> = Vec::new();
    let mut picks: Vec<(u32, u32)> = Vec::new();
    // Engaged on the first ragged row frame: everything seen so far is
    // materialized and the operator continues row-at-a-time.
    let mut fallback: Option<Vec<Tuple>> = None;
    for frame in recv_frames(input, cancel) {
        let frame = frame?;
        *consumed += frame.len() as u64;
        if let Some(rows) = fallback.as_mut() {
            rows.extend(frame.into_rows());
            continue;
        }
        let slice = match frame {
            Frame::Batch(slice) => slice,
            Frame::Rows(rows) => match Batch::from_rows(rows) {
                Ok(b) => BatchSlice::full(Arc::new(b)),
                Err(rows) => {
                    let mut all: Vec<Tuple> = picks
                        .iter()
                        .map(|&(s, r)| sources[s as usize].row(r as usize))
                        .collect();
                    all.extend(rows);
                    fallback = Some(all);
                    continue;
                }
            },
        };
        if sources
            .first()
            .is_some_and(|b| b.width() != slice.batch.width())
        {
            // Mixed widths across frames: the row sort handles these (it
            // only indexes the key columns), so degrade to it.
            let mut all: Vec<Tuple> = picks
                .iter()
                .map(|&(s, r)| sources[s as usize].row(r as usize))
                .collect();
            all.extend((0..slice.len()).map(|pos| slice.row(pos)));
            fallback = Some(all);
            continue;
        }
        let src = sources.len() as u32;
        for pos in 0..slice.len() {
            picks.push((src, slice.row_index(pos) as u32));
        }
        sources.push(Arc::clone(&slice.batch));
    }
    if let Some(mut all) = fallback {
        let min_width = all.iter().map(Vec::len).min().unwrap_or(0);
        if !all.is_empty() {
            for k in keys {
                if k.col >= min_width {
                    return Err(OpError::Failed(format!(
                        "sort: key column {} out of bounds (narrowest tuple width {min_width})",
                        k.col
                    )));
                }
            }
        }
        all.sort_by(|a, b| compare_tuples(a, b, keys));
        for t in all {
            out.push(t)?;
        }
        return Ok((*consumed, out.finish()?));
    }
    // Validate key columns once per source batch, mirroring the row
    // path's typed error for malformed plans.
    if !picks.is_empty() {
        let min_width = sources.iter().map(|b| b.width()).min().unwrap_or(0);
        for k in keys {
            if k.col >= min_width {
                return Err(OpError::Failed(format!(
                    "sort: key column {} out of bounds (narrowest tuple width {min_width})",
                    k.col
                )));
            }
        }
    }
    // Extract the key columns once (flattened, `stride` values per row);
    // fixed-width keys cost no allocation per row. When every key column
    // is a native `Int64` column (the candidate-pk sort of the hot join
    // path), the permutation sorts raw `i64`s — no `Value` enum dispatch
    // per comparison. Ties break on the original position either way, so
    // both orders equal the row path's stable sort.
    let stride = keys.len();
    let mut order: Vec<u32> = (0..picks.len() as u32).collect();
    let all_int = keys.iter().all(|k| {
        sources
            .iter()
            .all(|b| matches!(b.col(k.col), Some(Column::Int64(_))))
    });
    if all_int {
        let mut keyints: Vec<i64> = Vec::with_capacity(picks.len() * stride);
        for &(s, r) in &picks {
            let b = &sources[s as usize];
            for k in keys {
                if let Some(Column::Int64(xs)) = b.col(k.col) {
                    keyints.push(xs[r as usize]);
                }
            }
        }
        order.sort_unstable_by(|&i, &j| {
            let a = &keyints[i as usize * stride..i as usize * stride + stride];
            let b = &keyints[j as usize * stride..j as usize * stride + stride];
            for (slot, k) in keys.iter().enumerate() {
                let ord = a[slot].cmp(&b[slot]);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            i.cmp(&j)
        });
    } else {
        let mut keyvals: Vec<Value> = Vec::with_capacity(picks.len() * stride);
        for &(s, r) in &picks {
            let b = &sources[s as usize];
            for k in keys {
                keyvals.push(
                    b.col(k.col)
                        .expect("key column validated above")
                        .value(r as usize),
                );
            }
        }
        order.sort_unstable_by(|&i, &j| {
            let a = &keyvals[i as usize * stride..i as usize * stride + stride];
            let b = &keyvals[j as usize * stride..j as usize * stride + stride];
            for (slot, k) in keys.iter().enumerate() {
                let ord = a[slot].cmp(&b[slot]);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            i.cmp(&j)
        });
    }
    let srcs: Vec<&Batch> = sources.iter().map(Arc::as_ref).collect();
    let width = srcs.first().map_or(0, |b| b.width());
    let all_cols: Vec<usize> = (0..width).collect();
    let mut chunk: Vec<(u32, u32)> = Vec::with_capacity(FRAME_CAPACITY);
    for part in order.chunks(FRAME_CAPACITY) {
        chunk.clear();
        chunk.extend(part.iter().map(|&i| picks[i as usize]));
        let b = Batch::gather(&srcs, &chunk, &all_cols).map_err(OpError::Failed)?;
        out.push_slice(&BatchSlice::full(Arc::new(b)))?;
    }
    Ok((*consumed, out.finish()?))
}

fn run_hash_join(
    left_keys: &[usize],
    right_keys: &[usize],
    inputs: &[Receiver<Frame>],
    mut out: Out,
    cancel: &CancelToken,
    consumed: &mut u64,
) -> Result<(u64, OutCounts), OpError> {
    // Build on input 0.
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::new();
    for t in recv_tuples(&inputs[0], cancel) {
        let t = t?;
        *consumed += 1;
        let h = {
            let mut refs: Vec<&Value> = Vec::with_capacity(left_keys.len());
            for c in left_keys {
                refs.push(col_ref(&t, *c, "hash-join")?);
            }
            stable_hash_many(&refs)
        };
        table.entry(h).or_default().push(t);
    }
    // Probe with input 1.
    for rt in recv_tuples(&inputs[1], cancel) {
        let rt = rt?;
        *consumed += 1;
        let h = {
            let mut refs: Vec<&Value> = Vec::with_capacity(right_keys.len());
            for c in right_keys {
                refs.push(col_ref(&rt, *c, "hash-join")?);
            }
            stable_hash_many(&refs)
        };
        if let Some(bucket) = table.get(&h) {
            for lt in bucket {
                let equal = left_keys.iter().zip(right_keys).all(|(lc, rc)| {
                    sql_compare(&lt[*lc], &rt[*rc]) == Some(Ordering::Equal)
                });
                if equal {
                    let mut combined = lt.clone();
                    combined.extend(rt.iter().cloned());
                    out.push(combined)?;
                }
            }
        }
    }
    Ok((*consumed, out.finish()?))
}

/// Per-operator-instance token memoization: compile-time tokens for the
/// constant key (selection plans), plus an LRU of runtime-tokenized probe
/// keys (index-nested-loop joins re-probe the same outer keys on every
/// partition). All paths produce tokens via
/// [`asterix_storage::index_tokens`], so memoized and fresh tokenization
/// can never disagree.
struct TokenMemo<'a> {
    pre: Option<&'a PreTokenized>,
    lru: HashMap<Value, (Arc<[Value]>, u64)>,
    clock: u64,
    capacity: usize,
}

impl<'a> TokenMemo<'a> {
    fn new(pre: Option<&'a PreTokenized>, capacity: usize) -> Self {
        TokenMemo {
            pre,
            lru: HashMap::new(),
            clock: 0,
            capacity,
        }
    }

    fn tokens(&mut self, kind: IndexKind, key: &Value) -> Arc<[Value]> {
        if let Some(pre) = self.pre {
            if pre.key == *key {
                return pre.tokens.clone();
            }
        }
        if self.capacity == 0 {
            return asterix_storage::index_tokens(kind, key).into();
        }
        self.clock += 1;
        let stamp = self.clock;
        if let Some(slot) = self.lru.get_mut(key) {
            slot.1 = stamp;
            return slot.0.clone();
        }
        let tokens: Arc<[Value]> = asterix_storage::index_tokens(kind, key).into();
        if self.lru.len() >= self.capacity {
            if let Some(victim) = self
                .lru
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.lru.remove(&victim);
            }
        }
        self.lru.insert(key.clone(), (tokens.clone(), stamp));
        tokens
    }
}

/// Candidate primary keys from a secondary index for one search key.
/// With `ranked`, T-occurrence merging runs on interned `u32` rank arrays
/// (the vectorized kernels); `use_kernels` additionally enables the
/// full-intersection gallop fast path. Candidates and their order are
/// identical to the scalar merge in every combination.
fn index_candidates(
    store: &asterix_storage::PartitionStore,
    index: &str,
    key: &Value,
    measure: &SearchMeasure,
    memo: &mut TokenMemo<'_>,
    ranked: bool,
    use_kernels: bool,
) -> Result<Vec<Value>, asterix_storage::StorageError> {
    let merge = |tokens: &[Value], t: usize| {
        if ranked {
            store.inverted_candidates_ranked_opts(index, tokens, t, use_kernels)
        } else {
            store.inverted_candidates(index, tokens, t)
        }
    };
    match measure {
        SearchMeasure::Exact => store.btree_lookup(index, key),
        SearchMeasure::Jaccard { delta } => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let tokens = memo.tokens(idx.kind, key);
            let t = jaccard_t_bound(tokens.len(), *delta);
            if t <= 0 || tokens.is_empty() {
                return Ok(Vec::new());
            }
            merge(&tokens, t as usize)
        }
        SearchMeasure::Contains => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let n = match idx.kind {
                IndexKind::NGram(n) => n,
                _ => {
                    return Err(asterix_adm::AdmError::Schema(format!(
                        "contains search requires an ngram index, '{index}' is {}",
                        idx.kind.name()
                    ))
                    .into())
                }
            };
            let s = match key.as_str() {
                Some(s) => s,
                None => return Ok(Vec::new()),
            };
            // Patterns shorter than n produce a truncated gram that full
            // strings do not index: the plan must not reach here for
            // them (compile-time corner case).
            let tokens = memo.tokens(idx.kind, key);
            if s.chars().count() < n || tokens.is_empty() {
                return Ok(Vec::new());
            }
            let t = tokens.len();
            merge(&tokens, t)
        }
        SearchMeasure::EditDistance { k } => {
            let idx = store
                .secondary(index)
                .and_then(|s| s.as_inverted())
                .ok_or_else(|| {
                    asterix_adm::AdmError::Schema(format!("no inverted index '{index}'"))
                })?;
            let n = match idx.kind {
                IndexKind::NGram(n) => n,
                _ => {
                    return Err(asterix_adm::AdmError::Schema(format!(
                        "edit-distance search requires an ngram index, '{index}' is {}",
                        idx.kind.name()
                    ))
                    .into())
                }
            };
            if key.as_str().is_none() {
                return Ok(Vec::new());
            }
            // T over *distinct* grams: each edit operation can remove at
            // most n distinct grams from the intersection.
            let tokens = memo.tokens(idx.kind, key);
            let t = edit_distance_t_bound(tokens.len(), *k, n);
            if t <= 0 {
                // Corner case: the plan must route these keys to a scan
                // path (Fig 14); reaching here means the key emits no
                // candidates from the index.
                return Ok(Vec::new());
            }
            merge(&tokens, t as usize)
        }
    }
}
