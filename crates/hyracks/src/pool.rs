//! Shared, instance-lifetime worker pool for query execution.
//!
//! The seed executor spawned one fresh OS thread per operator-partition
//! per query (`thread::scope` in [`crate::exec`]), so 100 concurrent
//! queries on an 8-partition instance created ~800 threads with no bound.
//! Real Hyracks instead runs every job's tasks on a fixed set of node
//! controller workers. This module provides that pool: a small set of
//! long-lived threads ([`WorkerPool`]) fed from a FIFO task queue, plus
//! the [`SchedulerConfig`] knobs the admission controller in
//! `asterix-core` uses to bound concurrent queries and per-query memory.
//!
//! Tasks are submitted through a [`PoolScope`] (see [`WorkerPool::scope`])
//! so they may borrow from the submitting stack frame, exactly like
//! `std::thread::scope` — the scope blocks until every task it submitted
//! has finished, even if the scope body panics.
//!
//! Deadlock freedom: a fixed pool deadlocks if a running task can block
//! waiting for a task that is still queued behind it. The executor's
//! pooled mode therefore only submits a task once **all** of its inputs
//! are fully buffered and closed (stage-at-a-time execution, see
//! [`crate::exec::run_job_with`]), so every task submitted here runs to
//! completion without waiting on any other task — any pool size ≥ 1 makes
//! progress.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Query-scheduler configuration: the knobs of the shared worker pool,
/// the admission controller, and the per-query memory budget.
///
/// The pool itself only consumes `workers`; the other fields are read by
/// the admission controller in `asterix-core` (which re-exports this
/// type as part of its instance configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Long-lived worker threads shared by every query on the instance.
    /// `0` disables the scheduler entirely: queries fall back to the
    /// unbounded per-query `thread::scope` executor with no admission
    /// control (the seed behaviour).
    pub workers: usize,
    /// Queries allowed to execute simultaneously; arrivals beyond this
    /// wait in the admission queue.
    pub max_concurrent_queries: usize,
    /// Maximum queries waiting for admission; an arrival that finds the
    /// queue at capacity is rejected with `QueueFull` instead of queued.
    pub queue_depth: usize,
    /// Per-query ceiling on cumulative frame/postings-cache bytes
    /// (`0` = unlimited). Exceeding it stops the query with a typed
    /// `MemoryBudgetExceeded` error instead of ballooning towards OOM.
    pub memory_budget_bytes: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 8,
            max_concurrent_queries: 8,
            queue_depth: 64,
            memory_budget_bytes: 512 * 1024 * 1024,
        }
    }
}

impl SchedulerConfig {
    /// The seed configuration: no pool, no admission control, no budget.
    pub fn disabled() -> Self {
        SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        }
    }

    /// Whether the scheduler is active (`workers > 0`).
    pub fn enabled(&self) -> bool {
        self.workers > 0
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_available: Condvar,
    busy: AtomicUsize,
    workers: usize,
}

/// A fixed set of long-lived worker threads consuming a FIFO task queue.
///
/// Created once per instance and shared (via `Arc`) by every query; the
/// executor submits operator tasks through [`WorkerPool::scope`]. Dropping
/// the pool shuts the workers down after the queue drains.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("busy", &self.busy())
            .field("queued_tasks", &self.queued_tasks())
            .finish()
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_available.wait(state).unwrap();
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        // Executor tasks already catch operator panics; this outer catch
        // only shields the pool itself (a panicking task must never kill
        // a shared long-lived worker).
        let _ = catch_unwind(AssertUnwindSafe(task));
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` (> 0) long-lived threads.
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        assert!(workers > 0, "worker pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            busy: AtomicUsize::new(0),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("asterix-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            handles: Mutex::new(handles),
        })
    }

    /// Number of worker threads (fixed at construction).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Workers currently running a task (pool-utilization gauge).
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Tasks waiting in the pool's queue (not yet picked up by a worker).
    pub fn queued_tasks(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    fn submit_boxed(&self, task: Task) {
        let mut state = self.shared.state.lock().unwrap();
        assert!(!state.shutdown, "submit on a shut-down worker pool");
        state.queue.push_back(task);
        drop(state);
        self.shared.work_available.notify_one();
    }

    /// Run `f` with a [`PoolScope`] through which tasks borrowing from the
    /// current stack frame can be submitted. Blocks until every submitted
    /// task has completed — also when `f` unwinds — which is what makes
    /// the borrowing sound.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'env, '_>) -> R) -> R {
        let scope = PoolScope {
            pool: self,
            pending: Arc::new(Pending {
                count: Mutex::new(0),
                all_done: Condvar::new(),
            }),
            env: PhantomData,
        };
        struct WaitGuard<'a>(&'a Pending);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut count = self.0.count.lock().unwrap();
                while *count > 0 {
                    count = self.0.all_done.wait(count).unwrap();
                }
            }
        }
        let guard = WaitGuard(&scope.pending);
        let result = f(&scope);
        drop(guard);
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

struct Pending {
    count: Mutex<usize>,
    all_done: Condvar,
}

impl Pending {
    fn complete_one(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.all_done.notify_all();
        }
    }
}

/// Handle for submitting borrowing tasks to a [`WorkerPool`] from inside
/// [`WorkerPool::scope`]; the scope joins all of them before returning.
pub struct PoolScope<'env, 'pool> {
    pool: &'pool WorkerPool,
    pending: Arc<Pending>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'env, '_> {
    /// Queue `task` on the pool. It may borrow anything that outlives the
    /// enclosing [`WorkerPool::scope`] call.
    pub fn submit(&self, task: impl FnOnce() + Send + 'env) {
        *self.pending.count.lock().unwrap() += 1;
        let pending = self.pending.clone();
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // Decrement on drop so a panicking task still completes the
            // scope (the worker loop catches the unwind).
            struct Complete(Arc<Pending>);
            impl Drop for Complete {
                fn drop(&mut self) {
                    self.0.complete_one();
                }
            }
            let _complete = Complete(pending);
            task();
        });
        // SAFETY: the enclosing `scope` call blocks (in `WaitGuard::drop`,
        // so on unwind too) until this task has run and dropped, therefore
        // every borrow with lifetime 'env strictly outlives the task.
        let wrapped: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped)
        };
        self.pool.submit_boxed(wrapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn runs_tasks_borrowing_the_stack() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        pool.scope(|scope| {
            for i in 1..=100u64 {
                let total = &total;
                scope.submit(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn scope_waits_even_for_slow_tasks() {
        let pool = WorkerPool::new(2);
        let done = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..4 {
                let done = &done;
                scope.submit(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_task_does_not_kill_workers_or_hang_scope() {
        let pool = WorkerPool::new(1);
        pool.scope(|scope| {
            scope.submit(|| panic!("task boom"));
        });
        // The single worker must still be alive to run the next task.
        let ran = AtomicU64::new(0);
        pool.scope(|scope| {
            let ran = &ran;
            scope.submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn gauges_report_shape() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        pool.scope(|_| {});
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.queued_tasks(), 0);
        assert!(format!("{pool:?}").contains("workers"));
    }

    #[test]
    fn config_defaults_and_disabled() {
        let c = SchedulerConfig::default();
        assert!(c.enabled());
        assert!(c.workers > 0 && c.max_concurrent_queries > 0 && c.queue_depth > 0);
        assert!(!SchedulerConfig::disabled().enabled());
    }

    #[test]
    fn nested_scopes_from_concurrent_threads() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    pool.scope(|scope| {
                        for _ in 0..10 {
                            scope.submit(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }
}
