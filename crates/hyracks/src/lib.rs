//! # asterix-hyracks
//!
//! The parallel dataflow runtime substrate (the paper's §2.3: "AsterixDB
//! translates a computation into a directed-acyclic graph (DAG) of
//! operators and connectors, and sends it to Hyracks for execution").
//!
//! A [`job::JobSpec`] is a DAG of physical operators connected by
//! [`job::ConnectorKind`]s. The executor ([`exec`]) instantiates every
//! operator once per partition (the simulated cluster's node × partition
//! grid), runs each instance on its own thread, and moves frames of tuples
//! between instances over channels according to the connector:
//!
//! * `OneToOne` — partition-local pipeline edge ("Local" in the paper's
//!   plan figures),
//! * `Broadcast` — every producer partition replicates its stream to all
//!   consumer partitions ("Broadcast to all nodes"),
//! * `Hash(keys)` — route each tuple by the stable hash of its key columns
//!   ("Hash repartition"),
//! * `ToOne` — gather every partition's stream at partition 0 (the
//!   coordinator step that combines local results).
//!
//! Operators cover everything the paper's plans need: dataset scans,
//! secondary-inverted-index search solving the T-occurrence problem,
//! primary-index lookup, select/assign/project, sort, hash join,
//! (block-)nested-loop join, hash group-by with aggregates, unnest,
//! stream-position (global rank), union, limit, materialize, and a result
//! sink. Per-operator runtime statistics (input/output tuple counts,
//! wall time) feed the paper's candidate-set measurements (Table 6).
//!
//! Jobs run either *pipelined* (one scoped thread per operator-partition,
//! the default) or *pooled* on a shared instance-lifetime [`WorkerPool`]
//! with stage-at-a-time scheduling — see [`exec::run_job_with`] and
//! [`pool`].

#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod exec;
pub mod expr;
pub mod job;
pub mod ops;
pub mod pool;
pub mod progress;
pub mod tuple;
pub mod vectorized;

pub use context::{ClusterContext, PartitionSet};
pub use error::{CancelToken, ExecError};
pub use exec::{run_job, run_job_with, JobOptions, JobStats, OpStats, ResultSink};
pub use expr::{CmpOp, Expr};
pub use job::{
    AggSpec, ConnectorKind, FaultMode, JobSpec, OpId, PhysicalOp, PreTokenized, SearchMeasure,
};
pub use ops::{OpFlags, OutCounts};
pub use pool::{PoolScope, SchedulerConfig, WorkerPool};
pub use progress::{JobProgress, OpProgress, OpProgressSnapshot};
pub use tuple::{Batch, BatchSlice, Column, Frame, FrameRows, SortKey, Tuple, FRAME_CAPACITY};
pub use vectorized::VerifyKernel;
