//! Typed execution errors and cooperative cancellation.
//!
//! Real Hyracks supervises every operator task: a failing task aborts the
//! whole job, and the abort propagates to the other node controllers so
//! their tasks stop instead of running (or blocking) to completion. This
//! module provides the same contract for the simulated cluster:
//!
//! * [`ExecError`] — the typed reason a job stopped (replacing stringly
//!   errors), so callers can distinguish an operator failure from a panic,
//!   a deadline, or an external cancellation.
//! * [`CancelToken`] — a shared flag (plus optional deadline) that every
//!   operator loop and connector send checks cooperatively; the first
//!   failure flips it and all other partitions unwind within one poll
//!   interval instead of hanging on full/empty channels.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Why a job stopped before (or instead of) producing a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The job DAG failed validation; nothing ran.
    InvalidJob(String),
    /// An operator instance returned an error (expression evaluation,
    /// unknown dataset, index failure, injected fault, ...).
    Operator {
        /// Name of the failing operator.
        op: String,
        /// Partition index the failing instance ran on.
        partition: usize,
        /// The operator's own error message.
        message: String,
    },
    /// An operator instance panicked; the panic was caught and converted.
    Panic {
        /// Name of the panicking operator.
        op: String,
        /// Partition index the panicking instance ran on.
        partition: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The job exceeded its deadline ([`crate::exec::JobOptions::timeout`]).
    Timeout(Duration),
    /// The job was cancelled from outside (or a sibling partition failed
    /// first and this partition observed the cancellation).
    Cancelled,
    /// A storage-level I/O failure surfaced through an operator.
    Io(String),
    /// The query waited in the admission queue longer than its deadline
    /// and was never started.
    AdmissionTimeout(Duration),
    /// The admission queue was already at `queue_depth` when the query
    /// arrived; it was rejected immediately rather than queued.
    QueueFull {
        /// Queries waiting in the admission queue at arrival time.
        queued: usize,
        /// The configured queue capacity that was exhausted.
        queue_depth: usize,
    },
    /// The query's cumulative frame/cache allocations exceeded its
    /// per-query memory budget; it was stopped instead of growing
    /// without bound.
    MemoryBudgetExceeded {
        /// Bytes charged when the budget tripped.
        used: u64,
        /// The configured per-query ceiling in bytes.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            ExecError::Operator {
                op,
                partition,
                message,
            } => write!(f, "{op} failed on partition {partition}: {message}"),
            ExecError::Panic {
                op,
                partition,
                message,
            } => write!(f, "{op} panicked on partition {partition}: {message}"),
            ExecError::Timeout(budget) => {
                write!(f, "query timed out after {} ms", budget.as_millis())
            }
            ExecError::Cancelled => f.write_str("query cancelled"),
            ExecError::Io(m) => write!(f, "i/o error: {m}"),
            ExecError::AdmissionTimeout(waited) => write!(
                f,
                "query rejected: waited {} ms in the admission queue without being started",
                waited.as_millis()
            ),
            ExecError::QueueFull { queued, queue_depth } => write!(
                f,
                "query rejected: admission queue full ({queued} queued, capacity {queue_depth})"
            ),
            ExecError::MemoryBudgetExceeded { used, limit } => write!(
                f,
                "query stopped: memory budget exceeded ({used} bytes charged, limit {limit})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Extract a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Error type for one operator instance. Operator-local failures carry
/// only a message (the executor adds the operator id and partition);
/// cancellation, timeouts and I/O errors pass through typed.
#[derive(Clone, Debug)]
pub enum OpError {
    /// Operator-local failure; the executor wraps it into
    /// [`ExecError::Operator`] with op/partition context.
    Failed(String),
    /// An already-typed error (cancellation, timeout, I/O) bubbling up.
    Exec(ExecError),
}

impl From<String> for OpError {
    fn from(message: String) -> Self {
        OpError::Failed(message)
    }
}

impl From<ExecError> for OpError {
    fn from(e: ExecError) -> Self {
        OpError::Exec(e)
    }
}

impl From<asterix_storage::IoError> for OpError {
    fn from(e: asterix_storage::IoError) -> Self {
        OpError::Exec(ExecError::Io(e.to_string()))
    }
}

impl From<asterix_storage::StorageError> for OpError {
    fn from(e: asterix_storage::StorageError) -> Self {
        match e {
            asterix_storage::StorageError::Io(io) => OpError::Exec(ExecError::Io(io.to_string())),
            asterix_storage::StorageError::Adm(adm) => OpError::Failed(adm.to_string()),
        }
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const TIMED_OUT: u8 = 2;

/// Shared cooperative-cancellation flag for one job run.
///
/// Every operator receive loop, every connector send, and the test-support
/// operators poll [`CancelToken::check`]; once the token trips, all
/// partitions unwind with the corresponding [`ExecError`] within one poll
/// interval. The deadline is evaluated lazily on `check`, so a timed-out
/// job converts to [`ExecError::Timeout`] at the next cooperative point.
#[derive(Debug)]
pub struct CancelToken {
    state: AtomicU8,
    deadline: Option<Instant>,
    budget: Duration,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only trips on explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            state: AtomicU8::new(LIVE),
            deadline: None,
            budget: Duration::ZERO,
        }
    }

    /// A token that additionally trips once `timeout` has elapsed.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            state: AtomicU8::new(LIVE),
            deadline: Some(Instant::now() + timeout),
            budget: timeout,
        }
    }

    /// Request cancellation. A token that already timed out stays timed
    /// out (the more specific reason wins).
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Has the token tripped (either way)?
    pub fn is_stopped(&self) -> bool {
        self.state.load(Ordering::SeqCst) != LIVE
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Cooperative check: `Ok` while live, the stop reason once tripped.
    pub fn check(&self) -> Result<(), ExecError> {
        match self.state.load(Ordering::SeqCst) {
            CANCELLED => Err(ExecError::Cancelled),
            TIMED_OUT => Err(ExecError::Timeout(self.budget)),
            _ => {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        let _ = self.state.compare_exchange(
                            LIVE,
                            TIMED_OUT,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        // Re-read: a concurrent cancel() may have won; the
                        // stored state is the authoritative reason.
                        return match self.state.load(Ordering::SeqCst) {
                            CANCELLED => Err(ExecError::Cancelled),
                            _ => Err(ExecError::Timeout(self.budget)),
                        };
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_token_checks_ok() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_stopped());
    }

    #[test]
    fn cancelled_token_reports_cancelled() {
        let t = CancelToken::new();
        t.cancel();
        assert_eq!(t.check(), Err(ExecError::Cancelled));
        assert!(t.is_stopped());
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        match t.check() {
            Err(ExecError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        // Once timed out, a later cancel() does not change the reason.
        t.cancel();
        assert!(matches!(t.check(), Err(ExecError::Timeout(_))));
    }

    #[test]
    fn future_deadline_checks_ok() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn display_formats() {
        let e = ExecError::Operator {
            op: "op3 (select)".into(),
            partition: 1,
            message: "no-such-function".into(),
        };
        assert!(e.to_string().contains("no-such-function"));
        assert!(e.to_string().contains("partition 1"));
        assert!(ExecError::Timeout(Duration::from_millis(250))
            .to_string()
            .contains("250 ms"));
        assert_eq!(ExecError::Cancelled.to_string(), "query cancelled");
    }

    #[test]
    fn panic_message_downcasts() {
        let payload: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(payload.as_ref()), "kaboom");
        let payload: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
