//! Batched execution must be invisible: for any dataset and any plan, the
//! batch-at-a-time path (`Frame::Batch` + vectorized verify kernels) and
//! the row-at-a-time seed path (`JobOptions::disable_batching`) produce
//! identical result sets. These property tests drive the three plan
//! shapes the paper's workload uses — full scans with a verify select,
//! index-accelerated selections, and index nested-loop joins — over
//! randomized datasets, plus a corpus of malformed plans that must fail
//! with typed operator errors instead of panicking.

use asterix_adm::{record, DatasetDef, IndexDef, IndexKind, Value};
use asterix_hyracks::{
    run_job_with, ClusterContext, CmpOp, ConnectorKind, ExecError, Expr, JobOptions, JobSpec,
    PhysicalOp, SearchMeasure, SortKey, Tuple,
};
use asterix_simfn::FunctionRegistry;
use asterix_storage::{BufferCache, Disk, PartitionStore, StorageConfig};
use proptest::prelude::*;
use std::sync::Arc;

const NAMES: &[&str] = &[
    "james", "jamie", "jame", "mario", "maria", "marla", "mary", "marian", "anna", "anne", "bob",
];
const WORDS: &[&str] = &[
    "great", "product", "fantastic", "gift", "movie", "heart", "car", "charger", "best", "good",
    "different", "usual", "expected", "better", "ever", "idea",
];

fn cluster(partitions: usize, rows: &[(i64, String, String)]) -> ClusterContext {
    let ctx = ClusterContext::new(partitions, FunctionRegistry::with_builtins());
    let def = DatasetDef::new("ARevs", "id");
    for (pidx, pset) in ctx.partitions.iter().enumerate() {
        let cache = Arc::new(BufferCache::new(Arc::new(Disk::new()), 64));
        let mut store = PartitionStore::new(def.clone(), pidx, cache, StorageConfig::tiny());
        store
            .create_index(&IndexDef {
                name: "smix".into(),
                field: "summary".into(),
                kind: IndexKind::Keyword,
            })
            .unwrap();
        store
            .create_index(&IndexDef {
                name: "nix".into(),
                field: "name".into(),
                kind: IndexKind::NGram(2),
            })
            .unwrap();
        for (id, name, summary) in rows {
            if def.partition_of(&Value::Int64(*id), partitions) == pidx {
                store
                    .insert(record! {
                        "id" => *id,
                        "name" => name.as_str(),
                        "summary" => summary.as_str(),
                    })
                    .unwrap();
            }
        }
        pset.write().insert_store(store);
    }
    ctx
}

/// Run `job` twice — batched and row-at-a-time — and require identical
/// result multisets (order within a partition gather is not guaranteed
/// for every plan, so compare sorted).
fn assert_parity(job: &JobSpec, ctx: &ClusterContext) {
    let batched = run_job_with(
        job,
        ctx,
        &JobOptions {
            disable_batching: false,
            ..JobOptions::default()
        },
    )
    .expect("batched run failed");
    let row = run_job_with(
        job,
        ctx,
        &JobOptions {
            disable_batching: true,
            ..JobOptions::default()
        },
    )
    .expect("row run failed");
    let key = |t: &Tuple| format!("{t:?}");
    let mut b: Vec<String> = batched.0.iter().map(key).collect();
    let mut r: Vec<String> = row.0.iter().map(key).collect();
    b.sort();
    r.sort();
    assert_eq!(b, r, "batched and row results diverged");
    // The row run must not have produced any batch frames; the batched
    // run of scan-rooted plans must have produced at least one.
    let row_batch_frames: u64 = row
        .1
        .per_op
        .values()
        .map(|s| s.batch_frames_emitted)
        .sum();
    assert_eq!(row_batch_frames, 0, "disable_batching still sent batches");
}

fn rows_strategy(max_rows: usize) -> impl Strategy<Value = Vec<(i64, String, String)>> {
    let row = (
        prop::sample::select(NAMES.to_vec()).prop_map(str::to_string),
        prop::collection::vec(prop::sample::select(WORDS.to_vec()).prop_map(str::to_string), 1..6)
            .prop_map(|ws| ws.join(" ")),
    );
    prop::collection::vec(row, 1..=max_rows).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (name, summary))| (i as i64 + 1, name, summary))
            .collect()
    })
}

fn scan_select_job(predicate: Expr) -> JobSpec {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let select = job.add(PhysicalOp::Select { predicate });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, select);
    job.connect(select, sink, 0, ConnectorKind::ToOne);
    job
}

fn index_select_job(query: &str, measure: SearchMeasure, verify: Expr) -> JobSpec {
    let mut job = JobSpec::new();
    let (_, assign) =
        asterix_hyracks::job::constant_source(&mut job, vec![Value::from(query)]);
    let index = match measure {
        SearchMeasure::EditDistance { .. } => "nix",
        _ => "smix",
    };
    let search = job.add(PhysicalOp::SecondaryIndexSearch {
        dataset: "ARevs".into(),
        index: index.into(),
        key_col: 0,
        measure,
        pre_tokens: None,
    });
    let lookup = job.add(PhysicalOp::PrimaryIndexLookup {
        dataset: "ARevs".into(),
        pk_col: 1,
    });
    let sel = job.add(PhysicalOp::Select { predicate: verify });
    let sink = job.add(PhysicalOp::ResultSink);
    job.connect(assign, search, 0, ConnectorKind::Broadcast);
    job.pipe(search, lookup);
    job.pipe(lookup, sel);
    job.connect(sel, sink, 0, ConnectorKind::ToOne);
    job
}

/// Index nested-loop self-join: scan ++ assign key ++ index search ++
/// primary lookup ++ verify. Output column layout:
/// `[outer pk, outer rec, key, candidate pk, inner rec]`.
fn index_join_job(field: &str, measure: SearchMeasure, verify: Expr) -> JobSpec {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let assign = job.add(PhysicalOp::Assign {
        exprs: vec![Expr::col(1).field(field)],
    });
    let index = match measure {
        SearchMeasure::EditDistance { .. } => "nix",
        _ => "smix",
    };
    let search = job.add(PhysicalOp::SecondaryIndexSearch {
        dataset: "ARevs".into(),
        index: index.into(),
        key_col: 2,
        measure,
        pre_tokens: None,
    });
    let lookup = job.add(PhysicalOp::PrimaryIndexLookup {
        dataset: "ARevs".into(),
        pk_col: 3,
    });
    let sel = job.add(PhysicalOp::Select { predicate: verify });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, assign);
    job.connect(assign, search, 0, ConnectorKind::Broadcast);
    job.pipe(search, lookup);
    job.pipe(lookup, sel);
    job.connect(sel, sink, 0, ConnectorKind::ToOne);
    job
}

fn jaccard_verify(a: Expr, b: Expr, delta: f64) -> Expr {
    Expr::cmp(
        CmpOp::Ge,
        Expr::call(
            "similarity-jaccard",
            vec![
                Expr::call("word-tokens", vec![a]),
                Expr::call("word-tokens", vec![b]),
            ],
        ),
        Expr::lit(delta),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scan_select_batched_equals_row(
        rows in rows_strategy(12),
        partitions in 1usize..=3,
        delta in prop::sample::select(vec![0.3f64, 0.5, 0.8]),
        k in 0i64..=3,
        pick in 0usize..4,
    ) {
        let ctx = cluster(partitions, &rows);
        let predicate = match pick {
            0 => jaccard_verify(
                Expr::col(1).field("summary"),
                Expr::lit("great product gift"),
                delta,
            ),
            1 => Expr::cmp(
                CmpOp::Le,
                Expr::call(
                    "edit-distance",
                    vec![Expr::col(1).field("name"), Expr::lit("maria")],
                ),
                Expr::lit(k),
            ),
            2 => Expr::call(
                "edit-distance-check",
                vec![Expr::col(1).field("name"), Expr::lit("james"), Expr::lit(k)],
            ),
            // A shape the kernel does not compile (unknown field → NULL
            // semantics in the interpreter) to pin the fallback path.
            _ => jaccard_verify(
                Expr::col(1).field("nosuch"),
                Expr::lit("great product"),
                delta,
            ),
        };
        assert_parity(&scan_select_job(predicate), &ctx);
    }

    #[test]
    fn index_select_batched_equals_row(
        rows in rows_strategy(12),
        partitions in 1usize..=3,
        use_ed in any::<bool>(),
        delta in prop::sample::select(vec![0.3f64, 0.5, 0.8]),
        k in 0i64..=2,
    ) {
        let ctx = cluster(partitions, &rows);
        let job = if use_ed {
            index_select_job(
                "marla",
                SearchMeasure::EditDistance { k: k as u32 },
                Expr::call(
                    "edit-distance-check",
                    vec![Expr::col(0), Expr::col(2).field("name"), Expr::lit(k)],
                ),
            )
        } else {
            index_select_job(
                "great product fantastic gift",
                SearchMeasure::Jaccard { delta },
                jaccard_verify(Expr::col(0), Expr::col(2).field("summary"), delta),
            )
        };
        assert_parity(&job, &ctx);
    }

    #[test]
    fn index_join_batched_equals_row(
        rows in rows_strategy(10),
        partitions in 1usize..=2,
        use_ed in any::<bool>(),
        delta in prop::sample::select(vec![0.5f64, 0.8]),
        k in 0i64..=2,
    ) {
        let ctx = cluster(partitions, &rows);
        let job = if use_ed {
            index_join_job(
                "name",
                SearchMeasure::EditDistance { k: k as u32 },
                Expr::call(
                    "edit-distance-check",
                    vec![Expr::col(2), Expr::col(4).field("name"), Expr::lit(k)],
                ),
            )
        } else {
            index_join_job(
                "summary",
                SearchMeasure::Jaccard { delta },
                jaccard_verify(Expr::col(2), Expr::col(4).field("summary"), delta),
            )
        };
        assert_parity(&job, &ctx);
    }
}

// ---------------------------------------------------------------------------
// Malformed-plan corpus: every shape that used to panic (index/unwrap in
// frame handling) must now surface a typed operator error.
// ---------------------------------------------------------------------------

fn tiny_ctx() -> ClusterContext {
    cluster(
        2,
        &[
            (1, "james".into(), "great product".into()),
            (2, "maria".into(), "best car charger".into()),
        ],
    )
}

fn expect_operator_error(job: &JobSpec, want_op: &str) {
    for disable_batching in [false, true] {
        let err = run_job_with(
            job,
            &tiny_ctx(),
            &JobOptions {
                disable_batching,
                ..JobOptions::default()
            },
        )
        .expect_err("malformed plan must fail");
        match err {
            ExecError::Operator { ref op, .. } => {
                assert!(op.contains(want_op), "wrong operator blamed: {err}")
            }
            other => panic!("expected typed operator error, got {other:?}"),
        }
    }
}

#[test]
fn hash_connector_key_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let sort = job.add(PhysicalOp::Sort {
        keys: vec![SortKey::asc(0)],
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.connect(scan, sort, 0, ConnectorKind::Hash(vec![7]));
    job.connect(sort, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "hash-connector");
}

#[test]
fn project_column_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let project = job.add(PhysicalOp::Project { cols: vec![0, 9] });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, project);
    job.connect(project, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "project");
}

#[test]
fn sort_key_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let sort = job.add(PhysicalOp::Sort {
        keys: vec![SortKey::asc(5)],
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, sort);
    job.connect(sort, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "sort");
}

#[test]
fn group_by_key_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let group = job.add(PhysicalOp::HashGroupBy {
        keys: vec![6],
        aggs: vec![],
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, group);
    job.connect(group, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "hash-group-by");
}

#[test]
fn lookup_pk_column_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let lookup = job.add(PhysicalOp::PrimaryIndexLookup {
        dataset: "ARevs".into(),
        pk_col: 4,
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, lookup);
    job.connect(lookup, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "primary-index-lookup");
}

#[test]
fn search_key_column_out_of_bounds_is_typed() {
    let mut job = JobSpec::new();
    let scan = job.add(PhysicalOp::DatasetScan {
        dataset: "ARevs".into(),
    });
    let search = job.add(PhysicalOp::SecondaryIndexSearch {
        dataset: "ARevs".into(),
        index: "smix".into(),
        key_col: 8,
        measure: SearchMeasure::Jaccard { delta: 0.5 },
        pre_tokens: None,
    });
    let sink = job.add(PhysicalOp::ResultSink);
    job.pipe(scan, search);
    job.connect(search, sink, 0, ConnectorKind::ToOne);
    expect_operator_error(&job, "secondary-index-search");
}
