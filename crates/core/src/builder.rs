//! A programmatic query builder — the typed alternative to AQL text for
//! embedding the engine as a library (the paper's API surface is the
//! query language; a Rust library also wants a fluent builder).
//!
//! ```
//! use asterix_core::{Instance, InstanceConfig};
//! use asterix_core::builder::QueryBuilder;
//! use asterix_adm::record;
//!
//! let db = Instance::new(InstanceConfig::tiny(2));
//! db.create_dataset("Reviews", "id").unwrap();
//! db.insert("Reviews", record! {"id" => 1i64, "summary" => "great product"}).unwrap();
//! db.insert("Reviews", record! {"id" => 2i64, "summary" => "awful"}).unwrap();
//!
//! let result = QueryBuilder::scan("Reviews")
//!     .filter(|r| QueryBuilder::jaccard_sim(
//!         r.field("summary").word_tokens(),
//!         QueryBuilder::text_tokens("great product value"),
//!         0.5,
//!     ))
//!     .select(|r| r.field("id"))
//!     .run(&db)
//!     .unwrap();
//! assert_eq!(result.ids(), vec![1]);
//! ```

use crate::error::CoreError;
use crate::instance::Instance;
use crate::result::{PlanInfo, QueryOptions, QueryResult};
use asterix_adm::Value;
use asterix_algebricks::plan::{build, LogicalNode, LogicalOp, OrderKey, PlanRef};
use asterix_algebricks::{generate_job, optimize, VarGen, VarId};
use asterix_hyracks::{run_job_with, CmpOp, Expr, JobOptions};
use std::sync::Arc;

/// A reference to the current row while building expressions.
#[derive(Clone, Copy, Debug)]
pub struct RowRef {
    rec_var: VarId,
    pk_var: VarId,
}

impl RowRef {
    /// The record's primary key column.
    pub fn key(&self) -> ExprBuilder {
        ExprBuilder(Expr::Column(self.pk_var))
    }

    /// A (possibly dotted) field of the record.
    pub fn field(&self, path: &str) -> ExprBuilder {
        ExprBuilder(Expr::Column(self.rec_var).field(path))
    }

    /// The whole record.
    pub fn record(&self) -> ExprBuilder {
        ExprBuilder(Expr::Column(self.rec_var))
    }
}

/// A fluent expression wrapper.
#[derive(Clone, Debug)]
pub struct ExprBuilder(pub Expr);

impl ExprBuilder {
    /// `word-tokens(self)`.
    pub fn word_tokens(self) -> ExprBuilder {
        ExprBuilder(Expr::call("word-tokens", vec![self.0]))
    }

    /// `gram-tokens(self, n)`.
    pub fn gram_tokens(self, n: usize) -> ExprBuilder {
        ExprBuilder(Expr::call(
            "gram-tokens",
            vec![self.0, Expr::lit(n as i64)],
        ))
    }

    /// `self = other`.
    pub fn eq(self, other: ExprBuilder) -> ExprBuilder {
        ExprBuilder(Expr::eq(self.0, other.0))
    }

    /// `self < other`.
    pub fn lt(self, other: ExprBuilder) -> ExprBuilder {
        ExprBuilder(Expr::cmp(CmpOp::Lt, self.0, other.0))
    }

    /// `self and other`.
    pub fn and(self, other: ExprBuilder) -> ExprBuilder {
        ExprBuilder(Expr::And(vec![self.0, other.0]))
    }

    /// A literal value expression.
    pub fn lit(v: impl Into<Value>) -> ExprBuilder {
        ExprBuilder(Expr::Const(v.into()))
    }
}

enum Step {
    Filter(Box<dyn Fn(RowRef) -> ExprBuilder>),
    OrderBy(Box<dyn Fn(RowRef) -> ExprBuilder>, bool),
    Limit(usize),
}

/// A single-dataset pipeline builder (scans → filters → order → limit →
/// projection), plus a self-join entry point. Joins across builders use
/// [`QueryBuilder::join`].
pub struct QueryBuilder {
    dataset: String,
    steps: Vec<Step>,
}

impl QueryBuilder {
    /// Start from a full dataset scan.
    pub fn scan(dataset: &str) -> Self {
        QueryBuilder {
            dataset: dataset.to_string(),
            steps: Vec::new(),
        }
    }

    /// Keep rows where the predicate holds. Similarity predicates built
    /// with [`QueryBuilder::jaccard_sim`] / [`QueryBuilder::edit_distance_within`]
    /// are recognized by the optimizer exactly like their AQL forms.
    pub fn filter(mut self, f: impl Fn(RowRef) -> ExprBuilder + 'static) -> Self {
        self.steps.push(Step::Filter(Box::new(f)));
        self
    }

    /// Sort rows by the given key expression.
    pub fn order_by(mut self, f: impl Fn(RowRef) -> ExprBuilder + 'static, desc: bool) -> Self {
        self.steps.push(Step::OrderBy(Box::new(f), desc));
        self
    }

    /// Keep only the first `n` rows (after any ordering).
    pub fn limit(mut self, n: usize) -> Self {
        self.steps.push(Step::Limit(n));
        self
    }

    /// `similarity-jaccard(a, b) >= delta`.
    pub fn jaccard_sim(a: ExprBuilder, b: ExprBuilder, delta: f64) -> ExprBuilder {
        ExprBuilder(Expr::cmp(
            CmpOp::Ge,
            Expr::call("similarity-jaccard", vec![a.0, b.0]),
            Expr::lit(delta),
        ))
    }

    /// `edit-distance(a, b) <= k`.
    pub fn edit_distance_within(a: ExprBuilder, b: ExprBuilder, k: u32) -> ExprBuilder {
        ExprBuilder(Expr::cmp(
            CmpOp::Le,
            Expr::call("edit-distance", vec![a.0, b.0]),
            Expr::lit(k as i64),
        ))
    }

    /// Tokenized text constant (convenience for probe values).
    pub fn text_tokens(text: &str) -> ExprBuilder {
        ExprBuilder(Expr::call("word-tokens", vec![Expr::lit(text)]))
    }

    /// Build the logical plan for this pipeline with a final projection.
    fn plan(
        &self,
        vargen: &VarGen,
        project: impl Fn(RowRef) -> ExprBuilder,
    ) -> (PlanRef, RowRef) {
        let (scan, pk, rec) = build::scan(&self.dataset, vargen);
        let row = RowRef {
            rec_var: rec,
            pk_var: pk,
        };
        let mut plan = scan;
        for step in &self.steps {
            plan = match step {
                Step::Filter(f) => build::select(plan, f(row).0),
                Step::OrderBy(f, desc) => {
                    let e = f(row).0;
                    let (node, v) = match e {
                        Expr::Column(v) => (plan, v),
                        other => build::assign1(plan, vargen, other),
                    };
                    LogicalNode::new(
                        LogicalOp::OrderBy {
                            keys: vec![OrderKey { var: v, desc: *desc }],
                            global: true,
                        },
                        vec![node],
                    )
                }
                Step::Limit(n) => LogicalNode::new(LogicalOp::Limit { n: *n }, vec![plan]),
            };
        }
        let (with_result, rv) = build::assign1(plan, vargen, project(row).0);
        (build::project(with_result, vec![rv]), row)
    }

    /// Execute with a projection of each row.
    pub fn select(
        self,
        project: impl Fn(RowRef) -> ExprBuilder + 'static,
    ) -> PreparedQuery {
        PreparedQuery {
            build: Box::new(move |vargen| {
                let (plan, _) = self.plan(vargen, &project);
                build::write(plan)
            }),
        }
    }

    /// Self/cross join: combine two pipelines with a join predicate and a
    /// pair projection.
    pub fn join(
        self,
        right: QueryBuilder,
        on: impl Fn(RowRef, RowRef) -> ExprBuilder + 'static,
        project: impl Fn(RowRef, RowRef) -> ExprBuilder + 'static,
    ) -> PreparedQuery {
        PreparedQuery {
            build: Box::new(move |vargen| {
                let (lscan, lpk, lrec) = build::scan(&self.dataset, vargen);
                let lrow = RowRef {
                    rec_var: lrec,
                    pk_var: lpk,
                };
                let mut left = lscan;
                for step in &self.steps {
                    if let Step::Filter(f) = step {
                        left = build::select(left, f(lrow).0);
                    }
                }
                let (rscan, rpk, rrec) = build::scan(&right.dataset, vargen);
                let rrow = RowRef {
                    rec_var: rrec,
                    pk_var: rpk,
                };
                let mut r = rscan;
                for step in &right.steps {
                    if let Step::Filter(f) = step {
                        r = build::select(r, f(rrow).0);
                    }
                }
                let joined = build::join(left, r, on(lrow, rrow).0, Default::default());
                let (with_result, rv) =
                    build::assign1(joined, vargen, project(lrow, rrow).0);
                build::write(build::project(with_result, vec![rv]))
            }),
        }
    }
}

/// A built query, ready to run against an instance.
pub struct PreparedQuery {
    build: Box<dyn Fn(&VarGen) -> PlanRef>,
}

impl PreparedQuery {
    /// Run against `db` with default [`QueryOptions`].
    pub fn run(&self, db: &Instance) -> Result<QueryResult, CoreError> {
        self.run_with(db, &QueryOptions::default())
    }

    /// Run against `db`. Builder queries skip AQL parsing *and* admission
    /// control (they are the low-level bench/test API) but still execute
    /// on the shared worker pool under a per-query memory budget when the
    /// instance has a scheduler.
    pub fn run_with(
        &self,
        db: &Instance,
        options: &QueryOptions,
    ) -> Result<QueryResult, CoreError> {
        let vargen = VarGen::new();
        let root = (self.build)(&vargen);
        let compile_started = std::time::Instant::now();
        let opt_config = options
            .optimizer
            .clone()
            .unwrap_or_else(|| db.config().optimizer.clone());
        let catalog = db.catalog();
        let (optimized, rewrites) = optimize(
            &root,
            &catalog,
            &db.cluster().registry,
            &opt_config,
            &vargen,
        );
        let job = generate_job(&optimized, opt_config.enable_subplan_reuse)
            .map_err(CoreError::Translate)?;
        let plan = PlanInfo {
            logical_ops_before: asterix_algebricks::plan::operator_counts(&root),
            logical_ops_after: asterix_algebricks::plan::operator_counts(&optimized),
            rewrites,
            explain: asterix_algebricks::plan::explain(&optimized),
            physical_ops: job.operator_counts(),
        };
        let compile_time = compile_started.elapsed();
        let exec_started = std::time::Instant::now();
        let counters = options
            .profile
            .then(asterix_storage::QueryCounters::handle);
        // Builder queries bypass AQL compilation *and* admission control
        // (this is the low-level bench/test API), but still run on the
        // shared pool under a memory budget when the scheduler is on.
        let job_options = JobOptions {
            timeout: options.timeout,
            counters: counters.clone(),
            disable_hotpath: options.disable_hotpath,
            disable_batching: options.disable_batching,
            disable_kernels: options.disable_kernels,
            trace: None,
            pool: db.scheduler().map(|s| s.pool().clone()),
            cancel: None,
            memory_budget: db.scheduler().map(|s| s.memory_budget()),
            progress: None,
            result_sink: None,
        };
        let (tuples, stats) =
            run_job_with(&job, db.cluster(), &job_options).map_err(CoreError::from)?;
        let execution_time = exec_started.elapsed();
        let profile = counters.map(|c| {
            // Builder queries bypass the running-query registry, so they
            // carry the sentinel id 0 (real ids start at 1).
            crate::QueryProfile::build(
                0,
                &job,
                &stats,
                c.snapshot(),
                db.lsm_totals(),
                plan.rewrites.clone(),
                compile_time,
                execution_time,
            )
        });
        Ok(QueryResult {
            query_id: 0,
            rows: tuples
                .into_iter()
                .map(|mut t| t.pop().unwrap_or(Value::Missing))
                .collect(),
            streamed_rows: 0,
            stats,
            plan,
            compile_time,
            execution_time,
            profile,
            spans: Vec::new(),
        })
    }
}

/// Sharing note: `Arc`-shared subplans inside a prepared query keep their
/// materialize/reuse behaviour, exactly as in AQL-compiled plans.
#[allow(dead_code)]
fn _sharing_doc(_: Arc<LogicalNode>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstanceConfig;
    use asterix_adm::{record, IndexKind};

    fn db() -> Instance {
        let db = Instance::new(InstanceConfig::tiny(2));
        db.create_dataset("Reviews", "id").unwrap();
        for (id, name, summary) in [
            (1i64, "james", "great product value"),
            (2, "maria", "awful experience"),
            (3, "mario", "great product fantastic"),
        ] {
            db.insert(
                "Reviews",
                record! {"id" => id, "name" => name, "summary" => summary},
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn builder_selection() {
        let db = db();
        let r = QueryBuilder::scan("Reviews")
            .filter(|row| {
                QueryBuilder::jaccard_sim(
                    row.field("summary").word_tokens(),
                    QueryBuilder::text_tokens("great product"),
                    0.5,
                )
            })
            .select(|row| row.field("id"))
            .run(&db)
            .unwrap();
        assert_eq!(r.ids(), vec![1, 3]);
    }

    #[test]
    fn builder_uses_index_when_available() {
        let db = db();
        db.create_index("Reviews", "kw", "summary", IndexKind::Keyword)
            .unwrap();
        let q = QueryBuilder::scan("Reviews")
            .filter(|row| {
                QueryBuilder::jaccard_sim(
                    row.field("summary").word_tokens(),
                    QueryBuilder::text_tokens("great product value"),
                    0.8,
                )
            })
            .select(|row| row.field("id"));
        let r = q.run(&db).unwrap();
        assert!(r.plan.used_rule("introduce-index-for-selection"), "{:?}", r.plan.rewrites);
        assert_eq!(r.ids(), vec![1]);
    }

    #[test]
    fn builder_order_and_limit() {
        let db = db();
        let r = QueryBuilder::scan("Reviews")
            .order_by(|row| row.field("id"), true)
            .limit(2)
            .select(|row| row.field("id"))
            .run(&db)
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], Value::Int64(3));
    }

    #[test]
    fn builder_similarity_join() {
        let db = db();
        let r = QueryBuilder::scan("Reviews")
            .join(
                QueryBuilder::scan("Reviews"),
                |a, b| {
                    QueryBuilder::jaccard_sim(
                        a.field("summary").word_tokens(),
                        b.field("summary").word_tokens(),
                        0.5,
                    )
                    .and(a.key().lt(b.key()))
                },
                |a, b| ExprBuilder(Expr::ListCtor(vec![a.key().0, b.key().0])),
            )
            .run(&db)
            .unwrap();
        assert!(
            r.plan.used_rule("three-stage-similarity-join"),
            "{:?}",
            r.plan.rewrites
        );
        assert_eq!(r.rows.len(), 1); // (1, 3)
    }

    #[test]
    fn builder_edit_distance_filter() {
        let db = db();
        let r = QueryBuilder::scan("Reviews")
            .filter(|row| {
                QueryBuilder::edit_distance_within(
                    row.field("name"),
                    ExprBuilder::lit("marla"),
                    1,
                )
            })
            .select(|row| row.field("name"))
            .run(&db)
            .unwrap();
        assert_eq!(r.rows, vec![Value::from("maria")]);
    }
}
