//! Per-partition durability: the WAL-operation codec, the handle tying a
//! partition's write-ahead log to its manifest, and the recovery
//! statistics [`crate::Instance::open`] reports after a restart.
//!
//! The protocol, end to end:
//!
//! * Every acknowledged mutation is appended to the partition's WAL
//!   (group-committed, fsynced) **before** it is applied to the LSM
//!   memory components — an `Ok` from `insert`/`delete`/`load` means the
//!   operation survives a crash.
//! * A manifest commit (atomic rename, see
//!   [`asterix_storage::Manifest`]) snapshots every index's disk
//!   components. Its `flushed_lsn` only advances when every memory
//!   component of the partition is empty, so WAL records at or below it
//!   are fully contained in manifest-listed components and their
//!   segments can be reclaimed.
//! * Recovery re-links manifest components, sweeps orphan files (from
//!   flushes/merges that crashed before their manifest commit), and
//!   replays surviving WAL records above `flushed_lsn` in LSN order.
//!   Replay is idempotent: inserts overwrite, deletes of absent keys are
//!   no-ops.
//! * Manifest commits are serialized per partition
//!   ([`PartitionDurability::commit_lock`], held from the LSM state
//!   sample through the rename and WAL truncation), and a committed
//!   `flushed_lsn` never regresses — both are required so a staler
//!   manifest can never overwrite a newer one after the newer one's
//!   WAL segments were reclaimed.
//!
//! ## Failure anomaly: at-least-once
//!
//! The guarantee is one-directional. `Ok` means the operation survives
//! any crash; `Err` means it is *not guaranteed durable* — it does
//! **not** mean guaranteed absent. Two windows make a failed mutation
//! resurrectable or transiently visible:
//!
//! * If the memory-component apply fails *after* the WAL submit (the
//!   record's group commit may still fsync), the record is durable in
//!   the WAL and the next restart replays it, even though the client
//!   saw an error.
//! * If the group-commit wait fails *after* the apply, the record stays
//!   visible in memory until a restart discards it with its WAL batch —
//!   unless a flush persists it into a component first.
//!
//! Callers that need exactly-once semantics must retry idempotently
//! (replay itself is idempotent: inserts overwrite by primary key).

use asterix_adm::{binary, Value};
use asterix_storage::{Disk, IoError, Manifest, Wal, WalConfig, WalRecord};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One logical WAL operation, as appended by the instance's DML paths.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// Insert (or overwrite) `record` into `dataset`.
    Insert {
        /// Target dataset name.
        dataset: String,
        /// The full record.
        record: Value,
    },
    /// Delete the record of `dataset` stored under `pk`.
    Delete {
        /// Target dataset name.
        dataset: String,
        /// The primary key to delete.
        pk: Value,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

impl WalOp {
    /// Serialize: `tag ‖ u16 dataset-name length ‖ name ‖ ADM-binary value`.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, dataset, value) = match self {
            WalOp::Insert { dataset, record } => (TAG_INSERT, dataset, record),
            WalOp::Delete { dataset, pk } => (TAG_DELETE, dataset, pk),
        };
        let name = dataset.as_bytes();
        let mut out = Vec::with_capacity(3 + name.len() + 16);
        out.push(tag);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&binary::to_bytes(value));
        out
    }

    /// Inverse of [`WalOp::encode`]. A malformed payload (which a WAL
    /// checksum should have caught) surfaces as a corruption error.
    pub fn decode(bytes: &[u8]) -> Result<WalOp, IoError> {
        let bad = |m: &str| IoError::corruption(format!("wal op: {m}"));
        if bytes.len() < 3 {
            return Err(bad("short header"));
        }
        let tag = bytes[0];
        let name_len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
        if bytes.len() < 3 + name_len {
            return Err(bad("short dataset name"));
        }
        let dataset = std::str::from_utf8(&bytes[3..3 + name_len])
            .map_err(|_| bad("dataset name not UTF-8"))?
            .to_string();
        let value = binary::from_bytes(&bytes[3 + name_len..])
            .map_err(|e| bad(&format!("bad value: {e}")))?;
        match tag {
            TAG_INSERT => Ok(WalOp::Insert {
                dataset,
                record: value,
            }),
            TAG_DELETE => Ok(WalOp::Delete { dataset, pk: value }),
            other => Err(bad(&format!("unknown tag {other}"))),
        }
    }
}

/// What startup recovery did, summed over every partition. Exposed via
/// [`crate::Instance::recovery_stats`] and the telemetry snapshot.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Partitions that had a manifest to restore from.
    pub partitions_recovered: usize,
    /// Disk components re-linked from manifests (all indexes).
    pub components_opened: u64,
    /// WAL records replayed (lsn > manifest `flushed_lsn`).
    pub wal_records_replayed: u64,
    /// WAL bytes discarded as torn tails during segment scans.
    pub wal_bytes_truncated: u64,
    /// WAL segment files dropped because a torn record invalidated
    /// everything after it.
    pub wal_segments_dropped: u64,
    /// Component files deleted because no manifest referenced them
    /// (flushes/merges that crashed before their manifest commit).
    pub orphan_files_removed: u64,
    /// Wall-clock time of the whole recovery pass.
    pub recovery_time: Duration,
}

/// The durability handle of one partition: its write-ahead log plus the
/// manifest bookkeeping (current `flushed_lsn`, commit path).
#[derive(Debug)]
pub struct PartitionDurability {
    dir: PathBuf,
    disk: Arc<Disk>,
    wal: Wal,
    /// The `flushed_lsn` of the last committed manifest.
    flushed_lsn: Mutex<u64>,
    /// Serializes whole manifest commits — from the LSM state sample
    /// through the atomic rename and the WAL truncation. Without it,
    /// two concurrent committers (a flush racing a DDL statement) could
    /// publish their manifests out of sample order: the newer one
    /// advances `flushed_lsn` and reclaims the WAL segments it covers,
    /// then the staler one overwrites the manifest with an older
    /// component list and a lower `flushed_lsn` — after a crash, the
    /// operations in between are in neither the manifest nor the WAL.
    commit_lock: Mutex<()>,
}

impl PartitionDurability {
    /// Open (or create) the durability state under `dir`: load the
    /// manifest if one exists and open the WAL, returning the surviving
    /// WAL records for replay.
    pub fn open(
        dir: &Path,
        wal_config: WalConfig,
        disk: Arc<Disk>,
    ) -> Result<(PartitionDurability, Option<Manifest>, Vec<WalRecord>), IoError> {
        let manifest = Manifest::load(dir)?;
        let (wal, records) = Wal::open(dir.join("wal"), wal_config, disk.clone())?;
        let flushed_lsn = manifest.as_ref().map_or(0, |m| m.flushed_lsn);
        // The manifest commit may have truncated away every WAL segment
        // that carried the highest LSNs; keep numbering monotonic so
        // fresh appends never land in the already-flushed range.
        wal.reserve_lsn_floor(flushed_lsn);
        Ok((
            PartitionDurability {
                dir: dir.to_path_buf(),
                disk,
                wal,
                flushed_lsn: Mutex::new(flushed_lsn),
                commit_lock: Mutex::new(()),
            },
            manifest,
            records,
        ))
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The file-backed disk of this partition.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The partition's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `flushed_lsn` of the last committed manifest.
    pub fn flushed_lsn(&self) -> u64 {
        *self.flushed_lsn.lock()
    }

    /// Append one operation and block until it is durable.
    pub fn log(&self, op: &WalOp) -> Result<u64, IoError> {
        self.wal.append(&op.encode())
    }

    /// Enqueue one operation for the next group commit, returning its
    /// LSN without waiting for the fsync. Call [`Self::wait_durable`]
    /// with the returned LSN (after releasing any coarse locks) before
    /// acknowledging the operation — this is what lets concurrent
    /// writers to one partition share a single group commit.
    pub fn submit(&self, op: &WalOp) -> Result<u64, IoError> {
        self.wal.submit(&op.encode())
    }

    /// Block until `lsn` is durable; an error means the operation was
    /// not persisted and must not be acknowledged.
    pub fn wait_durable(&self, lsn: u64) -> Result<u64, IoError> {
        self.wal.wait_durable(lsn)
    }

    /// Append a batch of operations as one group commit; returns the LSN
    /// of the last. No-op returning the current durable LSN when empty.
    pub fn log_many(&self, ops: &[WalOp]) -> Result<u64, IoError> {
        if ops.is_empty() {
            return Ok(self.wal.durable_lsn());
        }
        let encoded: Vec<Vec<u8>> = ops.iter().map(WalOp::encode).collect();
        self.wal.append_many(encoded.iter().map(|b| b.as_slice()))
    }

    /// Acquire the partition's commit lock. Callers must hold the
    /// returned guard from the moment they sample the LSM state that
    /// will become a manifest until [`Self::commit_manifest`] returns,
    /// so concurrent committers can never publish manifests out of
    /// sample order.
    pub fn commit_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.commit_lock.lock()
    }

    /// Commit `manifest` (atomic rename) and, when its `flushed_lsn`
    /// advanced, truncate the WAL segments it makes obsolete. Returns the
    /// WAL bytes reclaimed by truncation.
    ///
    /// Callers serialize the sample-to-commit window via
    /// [`Self::commit_lock`]. As defense in depth, a manifest whose
    /// `flushed_lsn` is behind the last committed one is clamped before
    /// it is written: a published `flushed_lsn` must never regress,
    /// because the WAL segments below the previous value may already be
    /// reclaimed — recovery would find the regressed range in neither
    /// the manifest's components nor the WAL.
    pub fn commit_manifest(&self, manifest: &Manifest) -> Result<u64, IoError> {
        let current = self.flushed_lsn();
        let clamped;
        let manifest = if manifest.flushed_lsn < current {
            clamped = Manifest {
                flushed_lsn: current,
                datasets: manifest.datasets.clone(),
            };
            &clamped
        } else {
            manifest
        };
        manifest.commit(&self.dir, &self.disk)?;
        let mut flushed = self.flushed_lsn.lock();
        let advanced = manifest.flushed_lsn > *flushed;
        *flushed = manifest.flushed_lsn;
        drop(flushed);
        if advanced {
            let before = self.wal.segment_bytes();
            self.wal.truncate_upto(manifest.flushed_lsn)?;
            Ok(before.saturating_sub(self.wal.segment_bytes()))
        } else {
            Ok(0)
        }
    }
}

/// Instance-lifetime durability counters sampled at snapshot time, summed
/// over every partition. All-zero (with `enabled == false`) on in-memory
/// instances.
#[derive(Clone, Debug, Default)]
pub struct DurabilityGauges {
    /// True when the instance runs with a data directory.
    pub enabled: bool,
    /// Component-file fsyncs (flush seals) across all partition disks.
    pub disk_fsyncs: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL payload bytes appended.
    pub wal_bytes: u64,
    /// WAL group commits (batched fsyncs serving ≥ 1 appender).
    pub wal_group_commits: u64,
    /// WAL fsyncs issued by the group-commit flusher.
    pub wal_fsyncs: u64,
    /// Live WAL bytes on disk across all partitions.
    pub wal_live_bytes: u64,
    /// WAL records replayed by the last startup recovery.
    pub replayed_records: u64,
    /// Duration of the last startup recovery, in microseconds.
    pub recovery_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::record;

    #[test]
    fn wal_op_roundtrip() {
        let ops = [
            WalOp::Insert {
                dataset: "Reviews".into(),
                record: record! {"id" => 7i64, "summary" => "great product"},
            },
            WalOp::Delete {
                dataset: "Reviews".into(),
                pk: Value::Int64(7),
            },
        ];
        for op in ops {
            let bytes = op.encode();
            assert_eq!(WalOp::decode(&bytes).unwrap(), op);
        }
    }

    /// A committed `flushed_lsn` must never regress: a staler manifest
    /// (sampled before a concurrent committer advanced it) is clamped
    /// to the current value before it is published, because the WAL
    /// segments below the newer value may already be reclaimed.
    #[test]
    fn commit_manifest_never_regresses_flushed_lsn() {
        let dir = std::env::temp_dir().join(format!(
            "asterix_durability_test_{}_noregress",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let disk = Arc::new(Disk::new());
        let (pd, _, _) =
            PartitionDurability::open(&dir, WalConfig::default(), disk).unwrap();
        pd.commit_manifest(&Manifest {
            flushed_lsn: 100,
            datasets: Vec::new(),
        })
        .unwrap();
        assert_eq!(pd.flushed_lsn(), 100);
        // A staler sample must not drag durability backwards.
        pd.commit_manifest(&Manifest {
            flushed_lsn: 40,
            datasets: Vec::new(),
        })
        .unwrap();
        assert_eq!(pd.flushed_lsn(), 100);
        let on_disk = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(on_disk.flushed_lsn, 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_op_decode_rejects_garbage() {
        assert!(WalOp::decode(&[]).unwrap_err().is_corruption());
        assert!(WalOp::decode(&[9, 0, 0]).unwrap_err().is_corruption());
        // Truncated dataset name.
        assert!(WalOp::decode(&[1, 10, 0, b'x']).unwrap_err().is_corruption());
        // Valid header, garbage value payload.
        let mut bytes = vec![1, 1, 0, b'd'];
        bytes.extend_from_slice(&[0xff, 0xff, 0xff]);
        assert!(WalOp::decode(&bytes).unwrap_err().is_corruption());
    }
}
