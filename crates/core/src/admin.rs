//! The admin HTTP endpoint: live introspection over plain TCP.
//!
//! A dependency-free HTTP/1.1 server (`std::net::TcpListener`, one
//! thread per connection, `Connection: close`) exposing the instance's
//! observability surfaces:
//!
//! | route | method | payload |
//! |---|---|---|
//! | `/health` | GET | liveness + scheduler/durability gauges; `degraded` when a WAL is poisoned |
//! | `/metrics` | GET | Prometheus text exposition ([`crate::Instance::metrics_prometheus`]) |
//! | `/metrics.json` | GET | the full metrics snapshot as JSON |
//! | `/queries` | GET | the running-query registry: in-flight queries with live per-operator progress |
//! | `/queries/<id>/cancel` | POST | cancel an in-flight query by `query_id` |
//! | `/lsm` | GET | per-dataset LSM component tree + WAL/manifest stats |
//! | `/slow` | GET | the slow-query log (summaries) |
//! | `/trace/<id>` | GET | Chrome trace-event JSON of a slow-logged query (Perfetto-loadable) |
//! | `/trace/recovery` | GET | Chrome trace-event JSON of the startup recovery pass |
//!
//! Request parsing is bounded by the shared [`crate::http`] foundation:
//! request heads larger than 8 KiB are rejected with `431` before any
//! allocation proportional to attacker input. The accept loop runs
//! non-blocking with a 10 ms poll so dropping the [`AdminServer`] shuts
//! it down promptly.
//!
//! The route dispatcher is exported as [`admin_response`] so other HTTP
//! surfaces (the `asterix-server` query/ingest service) can mount the
//! same introspection routes under a path prefix (`/admin/*`).

use crate::http::{HttpLimits, HttpServer, Response};
use crate::instance::Instance;
use crate::registry::RunningQuery;
use asterix_adm::Value;
use std::net::SocketAddr;
use std::sync::Arc;

/// A running admin HTTP server bound to one [`Instance`].
///
/// Binds eagerly in [`AdminServer::start`] (so `127.0.0.1:0` port
/// assignment is visible immediately via [`AdminServer::local_addr`])
/// and serves until dropped.
///
/// ```
/// use asterix_core::{AdminServer, Instance, InstanceConfig};
/// use std::sync::Arc;
///
/// let db = Arc::new(Instance::new(InstanceConfig::default()));
/// let admin = AdminServer::start(db, "127.0.0.1:0").unwrap();
/// println!("admin endpoint at {}", admin.url());
/// // ... curl http://<addr>/health, /metrics, /queries ...
/// drop(admin); // unbinds promptly
/// ```
pub struct AdminServer {
    server: HttpServer,
}

impl AdminServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7900"`, or port `0` for an
    /// OS-assigned port) and start serving `instance`'s introspection
    /// routes in a background thread.
    pub fn start(instance: Arc<Instance>, addr: &str) -> std::io::Result<AdminServer> {
        let limits = HttpLimits {
            // The admin routes take no request bodies.
            max_body_bytes: 4 * 1024,
            ..HttpLimits::default()
        };
        let server = HttpServer::bind(addr, "asterix-admin", limits, move |req, _w| {
            Some(admin_response(&instance, &req.method, req.route_path()))
        })?;
        Ok(AdminServer { server })
    }

    /// The bound socket address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The server's base URL, e.g. `http://127.0.0.1:7900`.
    pub fn url(&self) -> String {
        self.server.url()
    }

    /// Stop accepting connections and join the accept thread. Called
    /// automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// Dispatch one admin request (path must already be stripped of any
/// query string and of any mount prefix such as `/admin`). This is the
/// complete admin route table; [`AdminServer`] serves it at the root
/// and `asterix-server` mounts it under `/admin/*`.
pub fn admin_response(db: &Instance, method: &str, path: &str) -> Response {
    match (method, path) {
        ("GET", "/") => index_response(),
        ("GET", "/health") => health_response(db),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: db.metrics_prometheus(),
            extra_headers: Vec::new(),
        },
        ("GET", "/metrics.json") => {
            Response::raw_json(200, asterix_adm::json::to_string(&db.metrics_snapshot()))
        }
        ("GET", "/queries") => queries_response(db),
        ("GET", "/lsm") => lsm_response(db),
        ("GET", "/slow") => slow_response(db),
        ("GET", "/trace/recovery") => match db.recovery_trace_chrome_json() {
            Some(json) => Response::raw_json(200, json),
            None => Response::error(404, "instance is not durable (no recovery trace)"),
        },
        ("GET", p) if p.starts_with("/trace/") => match p["/trace/".len()..].parse::<u64>() {
            Ok(id) => match db.slow_query_trace_chrome_json(id) {
                Some(json) => Response::raw_json(200, json),
                None => Response::error(404, "query_id not in the slow-query log"),
            },
            Err(_) => Response::error(404, "trace id must be a query_id or 'recovery'"),
        },
        ("POST", p) if p.starts_with("/queries/") && p.ends_with("/cancel") => {
            let id_str = &p["/queries/".len()..p.len() - "/cancel".len()];
            match id_str.parse::<u64>() {
                Ok(id) if db.cancel(id) => Response::json(
                    200,
                    Value::record(vec![
                        ("query_id".into(), Value::Int64(id as i64)),
                        ("cancelled".into(), Value::Boolean(true)),
                    ]),
                ),
                Ok(_) => Response::error(404, "no in-flight query with that id"),
                Err(_) => Response::error(404, "query id must be an integer"),
            }
        }
        // Known paths with the wrong method → 405 (tells scrapers the
        // route exists); everything else → 404.
        (_, "/" | "/health" | "/metrics" | "/metrics.json" | "/queries" | "/lsm" | "/slow") => {
            Response::error(405, "method not allowed")
        }
        (_, p) if p.starts_with("/trace/") => Response::error(405, "method not allowed"),
        (_, p) if p.starts_with("/queries/") && p.ends_with("/cancel") => {
            Response::error(405, "cancel requires POST")
        }
        _ => Response::error(404, "not found"),
    }
}

fn index_response() -> Response {
    let routes = [
        "/health",
        "/metrics",
        "/metrics.json",
        "/queries",
        "/queries/<id>/cancel (POST)",
        "/lsm",
        "/slow",
        "/trace/<id>",
        "/trace/recovery",
    ];
    Response::json(
        200,
        Value::record(vec![(
            "routes".into(),
            Value::OrderedList(routes.iter().map(|r| Value::from(*r)).collect()),
        )]),
    )
}

fn health_response(db: &Instance) -> Response {
    let m = db.metrics();
    let wal_poisoned = db.wal_poisoned();
    let status = if wal_poisoned { "degraded" } else { "ok" };
    let s = &m.gauges.scheduler;
    let d = &m.gauges.durability;
    let body = Value::record(vec![
        ("status".into(), Value::from(status)),
        ("uptime_us".into(), Value::Int64(m.uptime_us as i64)),
        ("telemetry_enabled".into(), Value::Boolean(m.enabled)),
        (
            "running_queries".into(),
            Value::Int64(db.running_queries().len() as i64),
        ),
        (
            "scheduler".into(),
            Value::record(vec![
                ("enabled".into(), Value::Boolean(s.enabled)),
                ("workers".into(), Value::Int64(s.workers as i64)),
                ("busy_workers".into(), Value::Int64(s.busy_workers as i64)),
                ("inflight".into(), Value::Int64(s.inflight as i64)),
                ("queued".into(), Value::Int64(s.queued as i64)),
                (
                    "rejected_queue_full".into(),
                    Value::Int64(s.rejected_queue_full as i64),
                ),
            ]),
        ),
        (
            "durability".into(),
            Value::record(vec![
                ("enabled".into(), Value::Boolean(d.enabled)),
                ("wal_poisoned".into(), Value::Boolean(wal_poisoned)),
                (
                    "replayed_records".into(),
                    Value::Int64(d.replayed_records as i64),
                ),
                ("recovery_us".into(), Value::Int64(d.recovery_us as i64)),
                (
                    "wal_live_bytes".into(),
                    Value::Int64(d.wal_live_bytes as i64),
                ),
            ]),
        ),
    ]);
    Response::json(200, body)
}

fn running_query_to_json(q: &RunningQuery) -> Value {
    Value::record(vec![
        ("query_id".into(), Value::Int64(q.query_id as i64)),
        ("state".into(), Value::from(q.state.as_str())),
        ("class".into(), Value::from(q.class.name())),
        (
            "elapsed_us".into(),
            Value::Int64(q.elapsed.as_micros() as i64),
        ),
        ("query".into(), Value::from(q.query.as_str())),
        (
            "tuples_out".into(),
            Value::Int64(q.total_tuples_out() as i64),
        ),
        (
            "operators".into(),
            Value::OrderedList(
                q.operators
                    .iter()
                    .map(|o| {
                        Value::record(vec![
                            ("op".into(), Value::Int64(o.op as i64)),
                            ("name".into(), Value::from(o.name)),
                            ("tuples_in".into(), Value::Int64(o.tuples_in as i64)),
                            ("tuples_out".into(), Value::Int64(o.tuples_out as i64)),
                            (
                                "partitions_started".into(),
                                Value::Int64(o.partitions_started as i64),
                            ),
                            (
                                "partitions_finished".into(),
                                Value::Int64(o.partitions_finished as i64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn queries_response(db: &Instance) -> Response {
    let queries = db.running_queries();
    Response::json(
        200,
        Value::record(vec![
            ("count".into(), Value::Int64(queries.len() as i64)),
            (
                "queries".into(),
                Value::OrderedList(queries.iter().map(running_query_to_json).collect()),
            ),
        ]),
    )
}

fn lsm_response(db: &Instance) -> Response {
    let m = db.metrics();
    let g = &m.gauges;
    let d = &g.durability;
    let datasets = g
        .datasets
        .iter()
        .map(|ds| {
            Value::record(vec![
                ("dataset".into(), Value::from(ds.dataset.as_str())),
                (
                    "indexes".into(),
                    Value::OrderedList(
                        ds.indexes
                            .iter()
                            .map(|i| {
                                Value::record(vec![
                                    ("name".into(), Value::from(i.name.as_str())),
                                    ("components".into(), Value::Int64(i.components as i64)),
                                    ("size_bytes".into(), Value::Int64(i.size_bytes as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let body = Value::record(vec![
        ("lsm_flushes".into(), Value::Int64(g.lsm_flushes as i64)),
        ("lsm_merges".into(), Value::Int64(g.lsm_merges as i64)),
        ("datasets".into(), Value::OrderedList(datasets)),
        (
            "wal".into(),
            Value::record(vec![
                ("enabled".into(), Value::Boolean(d.enabled)),
                ("appends".into(), Value::Int64(d.wal_appends as i64)),
                ("bytes_appended".into(), Value::Int64(d.wal_bytes as i64)),
                ("live_bytes".into(), Value::Int64(d.wal_live_bytes as i64)),
                ("fsyncs".into(), Value::Int64(d.wal_fsyncs as i64)),
                (
                    "group_commits".into(),
                    Value::Int64(d.wal_group_commits as i64),
                ),
            ]),
        ),
        (
            "recovery".into(),
            Value::record(vec![
                (
                    "replayed_records".into(),
                    Value::Int64(d.replayed_records as i64),
                ),
                ("recovery_us".into(), Value::Int64(d.recovery_us as i64)),
            ]),
        ),
    ]);
    Response::json(200, body)
}

fn slow_response(db: &Instance) -> Response {
    let m = db.metrics();
    let entries = m
        .slow_queries
        .iter()
        .map(|s| {
            Value::record(vec![
                ("seq".into(), Value::Int64(s.seq as i64)),
                ("query_id".into(), Value::Int64(s.query_id as i64)),
                ("class".into(), Value::from(s.class.name())),
                ("query".into(), Value::from(s.query.as_str())),
                (
                    "compile_us".into(),
                    Value::Int64(s.compile_time.as_micros() as i64),
                ),
                (
                    "execution_us".into(),
                    Value::Int64(s.execution_time.as_micros() as i64),
                ),
                ("rows".into(), Value::Int64(s.rows as i64)),
                (
                    "trace".into(),
                    Value::from(format!("/trace/{}", s.query_id).as_str()),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        Value::record(vec![
            (
                "threshold_us".into(),
                Value::Int64(m.slow_query_threshold_us as i64),
            ),
            ("captured".into(), Value::Int64(m.slow_captured as i64)),
            ("entries".into(), Value::OrderedList(entries)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreError, InstanceConfig};
    use asterix_adm::record;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::thread;
    use std::time::Duration;

    /// Minimal HTTP/1.1 client: send one request, read the whole
    /// response, return `(status, body)`.
    fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        let req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).to_string();
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn demo_instance() -> Arc<Instance> {
        let db = Instance::new(InstanceConfig::tiny(2));
        db.create_dataset("ARevs", "id").unwrap();
        for i in 0..8i64 {
            db.insert(
                "ARevs",
                record! {"id" => i, "summary" => format!("great product number {i}")},
            )
            .unwrap();
        }
        Arc::new(db)
    }

    #[test]
    fn serves_health_metrics_and_queries() {
        let db = demo_instance();
        db.query("for $t in dataset ARevs return $t.id").unwrap();
        let admin = AdminServer::start(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = admin.local_addr();

        let (status, body) = http(addr, "GET", "/health");
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        assert_eq!(v.field("status").as_str(), Some("ok"));
        assert_eq!(
            v.field_path("durability.wal_poisoned").as_bool(),
            Some(false)
        );

        let (status, prom) = http(addr, "GET", "/metrics");
        assert_eq!(status, 200);
        assert!(prom.contains("# TYPE"));
        assert!(prom.contains("asterix_"));

        let (status, body) = http(addr, "GET", "/metrics.json");
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        assert_eq!(v.field("telemetry_enabled").as_bool(), Some(true));

        // No query in flight right now.
        let (status, body) = http(addr, "GET", "/queries");
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        assert_eq!(v.field("count").as_i64(), Some(0));

        let (status, body) = http(addr, "GET", "/lsm");
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        let datasets = v.field("datasets").as_list().unwrap();
        assert_eq!(datasets[0].field("dataset").as_str(), Some("ARevs"));

        let (status, body) = http(addr, "GET", "/slow");
        assert_eq!(status, 200);
        asterix_adm::json::parse(&body).unwrap();

        let (status, _) = http(addr, "GET", "/");
        assert_eq!(status, 200);
    }

    #[test]
    fn error_paths_404_405_431_and_bad_requests() {
        let db = demo_instance();
        let admin = AdminServer::start(db, "127.0.0.1:0").unwrap();
        let addr = admin.local_addr();

        assert_eq!(http(addr, "GET", "/nope").0, 404);
        assert_eq!(http(addr, "POST", "/metrics").0, 405);
        assert_eq!(http(addr, "GET", "/queries/1/cancel").0, 405);
        // Cancel of an id that is not in flight.
        assert_eq!(http(addr, "POST", "/queries/999/cancel").0, 404);
        assert_eq!(http(addr, "POST", "/queries/abc/cancel").0, 404);
        // Trace of an id not in the slow log; bogus trace id.
        assert_eq!(http(addr, "GET", "/trace/12345").0, 404);
        assert_eq!(http(addr, "GET", "/trace/xyz").0, 404);
        // In-memory instance has no recovery trace.
        assert_eq!(http(addr, "GET", "/trace/recovery").0, 404);

        // Oversized request head → 431. The server stops reading at the
        // cap and may reset the connection with our padding unread, so
        // both the write and the tail of the read tolerate errors.
        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!(
            "GET /health HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(2 * 8 * 1024)
        );
        let _ = stream.write_all(huge.as_bytes());
        let mut raw = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
            }
        }
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 431"));

        // Garbage request line → 400.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn concurrent_clients_all_succeed() {
        let db = demo_instance();
        let admin = AdminServer::start(db, "127.0.0.1:0").unwrap();
        let addr = admin.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                thread::spawn(move || {
                    let path = match i % 4 {
                        0 => "/health",
                        1 => "/metrics",
                        2 => "/metrics.json",
                        _ => "/queries",
                    };
                    for _ in 0..5 {
                        let (status, body) = http(addr, "GET", path);
                        assert_eq!(status, 200);
                        assert!(!body.is_empty());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// The acceptance path: an in-flight query shows up in `/queries`
    /// with non-zero live operator progress, and `POST
    /// /queries/<id>/cancel` terminates it with a cancelled outcome.
    #[test]
    fn queries_route_sees_in_flight_query_and_cancel_terminates_it() {
        let db = Arc::new(Instance::new(InstanceConfig::tiny(2)));
        db.create_dataset("Big", "id").unwrap();
        for i in 0..1500i64 {
            db.insert(
                "Big",
                record! {
                    "id" => i,
                    "summary" => format!("review text number {i} with shared words {}", i % 7)
                },
            )
            .unwrap();
        }
        let admin = AdminServer::start(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = admin.local_addr();

        // A similarity self-join with no index: a nested-loop pass over
        // 1500×1500 pairs, long enough to observe and cancel.
        let runner = {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                db.query(
                    r#"
                    for $a in dataset Big
                    for $b in dataset Big
                    where similarity-jaccard(word-tokens($a.summary),
                                             word-tokens($b.summary)) >= 0.95
                    return $a.id
                "#,
                )
            })
        };

        // Poll until the query is visible with live progress.
        let mut seen = None;
        for _ in 0..2000 {
            let (status, body) = http(addr, "GET", "/queries");
            assert_eq!(status, 200);
            let v = asterix_adm::json::parse(&body).unwrap();
            let queries = v.field("queries").as_list().unwrap();
            if let Some(q) = queries
                .iter()
                .find(|q| q.field("state").as_str() == Some("running"))
            {
                if q.field("tuples_out").as_i64().unwrap_or(0) > 0 {
                    seen = Some(q.field("query_id").as_i64().unwrap());
                    break;
                }
            }
            thread::sleep(Duration::from_millis(2));
        }
        let query_id = seen.expect("in-flight query never showed live progress in /queries");

        let (status, body) = http(addr, "POST", &format!("/queries/{query_id}/cancel"));
        assert_eq!(status, 200);
        let v = asterix_adm::json::parse(&body).unwrap();
        assert_eq!(v.field("cancelled").as_bool(), Some(true));

        match runner.join().unwrap() {
            Err(CoreError::Cancelled) => {}
            other => panic!("expected CoreError::Cancelled, got {other:?}"),
        }
        // The registry forgets the query once it finishes.
        let (_, body) = http(addr, "GET", "/queries");
        let v = asterix_adm::json::parse(&body).unwrap();
        assert_eq!(v.field("count").as_i64(), Some(0));
    }

    /// `QueryResult::trace_chrome_json` emits valid trace-event JSON:
    /// a `traceEvents` list of complete (`"ph": "X"`) events whose
    /// `pid` is the query id.
    #[test]
    fn trace_chrome_json_is_valid_trace_event_json() {
        let db = demo_instance();
        let r = db.query("for $t in dataset ARevs return $t.id").unwrap();
        assert!(r.query_id >= 1);
        let v = asterix_adm::json::parse(&r.trace_chrome_json()).unwrap();
        assert_eq!(v.field("displayTimeUnit").as_str(), Some("ms"));
        let events = v.field("traceEvents").as_list().unwrap();
        assert!(!events.is_empty(), "telemetry-on query must emit spans");
        for e in events {
            assert_eq!(e.field("ph").as_str(), Some("X"));
            assert_eq!(e.field("pid").as_i64(), Some(r.query_id as i64));
            assert!(e.field("ts").as_i64().is_some());
            assert!(e.field("dur").as_i64().is_some());
            assert!(e.field("name").as_str().is_some());
        }
        // The span set includes the execute phase.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.field("name").as_str())
            .collect();
        assert!(names.contains(&"execute"), "names: {names:?}");
    }
}
